//! Leaf normal form and the ordering extraction of Chapter 3.
//!
//! Chapter 3 of the thesis proves that elimination orderings are a complete
//! search space for generalized hypertree width. The proof is constructive
//! and this module implements it:
//!
//! 1. [`to_leaf_normal_form`] — Algorithm *Transform Leaf Normal Form*
//!    (Fig. 3.1): normalize any tree decomposition so that its leaves are
//!    exactly the hyperedges and inner labels are minimal (Theorem 1:
//!    every normalized bag is contained in an original bag).
//! 2. [`ordering_from_lnf`] — Lemma 13: ordering vertices by the depth of
//!    the deepest common ancestor of their leaves (deepest eliminated
//!    first) produces bags contained in the normalized bags.
//! 3. [`ordering_from_td`] — the composition: from any tree decomposition
//!    of `H`, an ordering whose bucket-elimination bags each fit inside
//!    some original bag, hence `width(σ, H) ≤` the width of any GHD on
//!    that tree (Theorems 2–3).

use htd_hypergraph::{Hypergraph, Vertex, VertexSet};

use crate::ordering::EliminationOrdering;
use crate::tree_decomposition::{NodeId, TreeDecomposition};

/// A tree decomposition in leaf normal form plus its leaf mapping:
/// `leaf_of_edge[e]` is the node holding exactly hyperedge `e`.
#[derive(Clone, Debug)]
pub struct LeafNormalForm {
    /// The normalized decomposition.
    pub td: TreeDecomposition,
    /// For each hyperedge, its leaf node.
    pub leaf_of_edge: Vec<NodeId>,
}

/// Transforms `td` into leaf normal form for `h` (Fig. 3.1).
///
/// Guarantees (Theorem 1):
/// * one-to-one mapping between hyperedges and leaves, `χ(leaf(e)) = e`;
/// * an inner node carries vertex `Y` iff it lies on a path between two
///   leaves carrying `Y`;
/// * every produced bag is a subset of some original bag.
pub fn to_leaf_normal_form(h: &Hypergraph, td: &TreeDecomposition) -> LeafNormalForm {
    let n_orig = td.num_nodes();
    let mut bags: Vec<VertexSet> = td.bags().to_vec();
    let mut parent: Vec<Option<NodeId>> = (0..n_orig).map(|p| td.parent(p)).collect();

    // Step 2: attach one fresh leaf per hyperedge under a covering node.
    let mut leaf_of_edge = Vec::with_capacity(h.num_edges() as usize);
    for e in 0..h.num_edges() {
        let scope = h.edge(e);
        let host = (0..n_orig)
            .find(|&p| scope.is_subset(&bags[p]))
            .expect("td must cover every hyperedge");
        leaf_of_edge.push(bags.len());
        bags.push(scope.clone());
        parent.push(Some(host));
    }

    // Step 3: repeatedly delete unmapped leaves (original nodes that became
    // leaves and are not edge-leaves).
    let total = bags.len();
    let mut alive = vec![true; total];
    let mut child_count = vec![0usize; total];
    for &q in parent.iter().flatten() {
        child_count[q] += 1;
    }
    let is_edge_leaf = |p: usize| p >= n_orig;
    let mut queue: Vec<usize> = (0..total)
        .filter(|&p| child_count[p] == 0 && !is_edge_leaf(p))
        .collect();
    while let Some(p) = queue.pop() {
        // never delete the last remaining node
        if alive.iter().filter(|&&a| a).count() == 1 {
            break;
        }
        alive[p] = false;
        if let Some(q) = parent[p] {
            child_count[q] -= 1;
            if child_count[q] == 0 && !is_edge_leaf(q) && alive[q] {
                queue.push(q);
            }
        }
    }

    // Compact into a new tree. The root may have been deleted if it became
    // an unmapped leaf; re-root at any alive node whose parent chain leads
    // to dead nodes. Parent of an alive node = nearest alive ancestor.
    let mut new_id = vec![usize::MAX; total];
    let mut out_bags = Vec::new();
    for p in 0..total {
        if alive[p] {
            new_id[p] = out_bags.len();
            out_bags.push(bags[p].clone());
        }
    }
    let mut out_parent: Vec<Option<NodeId>> = vec![None; out_bags.len()];
    let mut root_seen = false;
    for p in 0..total {
        if !alive[p] {
            continue;
        }
        let mut q = parent[p];
        while let Some(qq) = q {
            if alive[qq] {
                break;
            }
            q = parent[qq];
        }
        match q {
            Some(qq) => out_parent[new_id[p]] = Some(new_id[qq]),
            None => {
                if root_seen {
                    // should not happen: the original tree had one root and
                    // deletions keep connectivity; defensive re-rooting
                    out_parent[new_id[p]] = Some(0);
                } else {
                    root_seen = true;
                }
            }
        }
    }
    let leaf_of_edge: Vec<NodeId> = leaf_of_edge.into_iter().map(|p| new_id[p]).collect();

    // Step 4: restrict inner labels to Steiner trees of their leaves.
    // For each vertex Y: keep Y at an inner node iff the node lies on a
    // path between two leaves containing Y.
    let td_tmp =
        TreeDecomposition::new(out_bags.clone(), out_parent.clone()).expect("lnf keeps tree shape");
    let depth = node_depths(&td_tmp);
    let nv = h.num_vertices();
    let mut keep: Vec<VertexSet> = (0..out_bags.len()).map(|_| VertexSet::new(nv)).collect();
    for y in 0..nv {
        let leaves: Vec<NodeId> = leaf_of_edge
            .iter()
            .copied()
            .filter(|&l| out_bags[l].contains(y))
            .collect();
        if leaves.is_empty() {
            continue;
        }
        // The union of leaf-to-leaf paths is the minimal subtree spanning
        // the leaves: every leaf walked up to the common LCA.
        let mut anchor = leaves[0];
        for &l in &leaves[1..] {
            anchor = lca(&td_tmp, &depth, anchor, l);
        }
        let mut in_steiner = vec![false; out_bags.len()];
        for &l in &leaves {
            let mut p = l;
            loop {
                if in_steiner[p] {
                    break;
                }
                in_steiner[p] = true;
                if p == anchor {
                    break;
                }
                p = td_tmp.parent(p).expect("anchor is an ancestor");
            }
        }
        for (p, &ins) in in_steiner.iter().enumerate() {
            if ins {
                keep[p].insert(y);
            }
        }
    }
    // leaves keep their exact edge label; inner nodes get the restriction
    let mut final_bags = out_bags;
    let leaf_set: std::collections::HashSet<NodeId> = leaf_of_edge.iter().copied().collect();
    for p in 0..final_bags.len() {
        if !leaf_set.contains(&p) {
            final_bags[p] = keep[p].clone();
        }
    }
    let td = TreeDecomposition::new(final_bags, out_parent).expect("lnf keeps tree shape");
    LeafNormalForm { td, leaf_of_edge }
}

/// Depth of every node (root = 0).
fn node_depths(td: &TreeDecomposition) -> Vec<u32> {
    let mut depth = vec![0u32; td.num_nodes()];
    for p in td.topological_order() {
        if let Some(q) = td.parent(p) {
            depth[p] = depth[q] + 1;
        }
    }
    depth
}

/// Extracts an elimination ordering from a leaf normal form (Lemma 13):
/// vertex `v` is ranked by `depth(dca(v))`, the depth of the deepest
/// common ancestor of the leaves containing `v`; **deeper vertices are
/// eliminated first** (the thesis's `depth(y) < depth(x) ⇒ y <_σ x`, with
/// σ's tail eliminated first). Vertices in no hyperedge come first.
pub fn ordering_from_lnf(h: &Hypergraph, lnf: &LeafNormalForm) -> EliminationOrdering {
    let depth = node_depths(&lnf.td);
    let nv = h.num_vertices();
    let mut rank: Vec<(u32, Vertex)> = Vec::with_capacity(nv as usize);
    for v in 0..nv {
        let leaves: Vec<NodeId> = h
            .incident_edges(v)
            .iter()
            .map(|&e| lnf.leaf_of_edge[e as usize])
            .collect();
        let d = match leaves.split_first() {
            None => u32::MAX, // isolated vertex: eliminate first
            Some((&first, rest)) => {
                let mut dca = first;
                for &l in rest {
                    dca = lca(&lnf.td, &depth, dca, l);
                }
                depth[dca]
            }
        };
        rank.push((d, v));
    }
    // deepest dca first; ties by vertex id for determinism
    rank.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    EliminationOrdering::new_unchecked(rank.into_iter().map(|(_, v)| v).collect())
}

fn lca(td: &TreeDecomposition, depth: &[u32], mut a: NodeId, mut b: NodeId) -> NodeId {
    while depth[a] > depth[b] {
        a = td.parent(a).unwrap();
    }
    while depth[b] > depth[a] {
        b = td.parent(b).unwrap();
    }
    while a != b {
        a = td.parent(a).unwrap();
        b = td.parent(b).unwrap();
    }
    a
}

/// From any tree decomposition of `h`, an ordering whose elimination bags
/// are each contained in some bag of `td` (Theorem 2). Consequently
/// evaluating this ordering with exact covers yields a GHD width no larger
/// than that of any GHD over `td`.
pub fn ordering_from_td(h: &Hypergraph, td: &TreeDecomposition) -> EliminationOrdering {
    let lnf = to_leaf_normal_form(h, td);
    ordering_from_lnf(h, &lnf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::{td_of_hypergraph, vertex_elimination};
    use crate::ordering::{CoverStrategy, GhwEvaluator, TwEvaluator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn thesis_hypergraph() -> Hypergraph {
        Hypergraph::new(6, vec![vec![0, 1, 2], vec![0, 4, 5], vec![2, 3, 4]])
    }

    fn vs(cap: u32, items: &[u32]) -> VertexSet {
        VertexSet::from_iter_with_capacity(cap, items.iter().copied())
    }

    fn thesis_td() -> TreeDecomposition {
        TreeDecomposition::new(
            vec![
                vs(6, &[0, 2, 4]),
                vs(6, &[0, 1, 2]),
                vs(6, &[2, 3, 4]),
                vs(6, &[0, 4, 5]),
            ],
            vec![None, Some(0), Some(0), Some(0)],
        )
        .unwrap()
    }

    #[test]
    fn lnf_leaves_are_exactly_the_hyperedges() {
        let h = thesis_hypergraph();
        let td = thesis_td();
        let lnf = to_leaf_normal_form(&h, &td);
        lnf.td.validate(&h).unwrap();
        assert_eq!(lnf.leaf_of_edge.len(), 3);
        for e in 0..h.num_edges() {
            let l = lnf.leaf_of_edge[e as usize];
            assert_eq!(lnf.td.bag(l).to_vec(), h.edge(e).to_vec());
            assert!(lnf.td.children(l).is_empty(), "leaf {l} has children");
        }
        // every leaf is an edge leaf (one-to-one)
        let leaves = lnf.td.leaves();
        assert_eq!(leaves.len(), 3);
    }

    #[test]
    fn lnf_bags_contained_in_original_bags() {
        let h = thesis_hypergraph();
        let td = thesis_td();
        let lnf = to_leaf_normal_form(&h, &td);
        for p in 0..lnf.td.num_nodes() {
            let contained = (0..td.num_nodes()).any(|q| lnf.td.bag(p).is_subset(td.bag(q)));
            assert!(contained, "lnf bag {p} not inside any original bag");
        }
    }

    #[test]
    fn lnf_inner_label_condition() {
        // Inner node carries Y iff it lies on a path between two Y-leaves.
        let h = thesis_hypergraph();
        let lnf = to_leaf_normal_form(&h, &thesis_td());
        let leaves: Vec<NodeId> = lnf.leaf_of_edge.clone();
        for p in 0..lnf.td.num_nodes() {
            if leaves.contains(&p) {
                continue;
            }
            for y in 0..h.num_vertices() {
                let y_leaves: Vec<NodeId> = leaves
                    .iter()
                    .copied()
                    .filter(|&l| lnf.td.bag(l).contains(y))
                    .collect();
                let on_path = y_leaves.len() >= 2 && {
                    // p on path between two leaves iff removing p separates
                    // at least two of them: test all pairs via LCA walks
                    let depth = super::node_depths(&lnf.td);
                    let mut found = false;
                    'outer: for (i, &a) in y_leaves.iter().enumerate() {
                        for &b in &y_leaves[i + 1..] {
                            // path a..b passes p?
                            let l = super::lca(&lnf.td, &depth, a, b);
                            let passes = |mut x: NodeId| loop {
                                if x == p {
                                    return true;
                                }
                                if x == l {
                                    return false;
                                }
                                x = lnf.td.parent(x).unwrap();
                            };
                            if passes(a) || passes(b) || l == p {
                                found = true;
                                break 'outer;
                            }
                        }
                    }
                    found
                };
                assert_eq!(
                    lnf.td.bag(p).contains(y),
                    on_path,
                    "node {p} vertex {y}: label/path mismatch"
                );
            }
        }
    }

    #[test]
    fn ordering_from_td_bags_fit_inside_original_bags() {
        // Lemma 13: every clique of the derived ordering is contained in a
        // bag of the original decomposition.
        let mut rng = StdRng::seed_from_u64(99);
        for seed in 0..20u64 {
            let h = htd_hypergraph::gen::random_uniform(8, 8, 3, seed);
            // build some arbitrary (non-optimal) decomposition first
            let base = EliminationOrdering::random(8, &mut rng);
            let td = td_of_hypergraph(&h, &base);
            let sigma = ordering_from_td(&h, &td);
            let derived = td_of_hypergraph(&h, &sigma);
            for p in 0..derived.num_nodes() {
                let ok = (0..td.num_nodes()).any(|q| derived.bag(p).is_subset(td.bag(q)));
                assert!(ok, "seed {seed}: derived bag {p} escapes original bags");
            }
        }
    }

    #[test]
    fn derived_ordering_never_worse_in_width() {
        // Theorem 2 consequence for tree decompositions: width(σ) ≤ width(td)
        let mut rng = StdRng::seed_from_u64(5);
        for seed in 0..20u64 {
            let g = htd_hypergraph::gen::random_gnp(9, 0.4, seed);
            let h = Hypergraph::from_graph(&g);
            let base = EliminationOrdering::random(9, &mut rng);
            let td = vertex_elimination(&g, &base);
            let sigma = ordering_from_td(&h, &td);
            let mut ev = TwEvaluator::new(&g);
            assert!(
                ev.width(sigma.as_slice()) <= td.width(),
                "seed {seed}: derived ordering widened"
            );
        }
    }

    #[test]
    fn derived_ordering_never_worse_in_ghw_width() {
        // Theorem 2 for GHDs: exact-cover width of σ ≤ any GHD width on td.
        let mut rng = StdRng::seed_from_u64(31);
        for seed in 0..15u64 {
            let h = htd_hypergraph::gen::random_uniform(8, 9, 3, seed);
            if !h.covers_all_vertices() {
                continue;
            }
            let base = EliminationOrdering::random(8, &mut rng);
            let td = td_of_hypergraph(&h, &base);
            let ghd = crate::bucket::cover_decomposition(&h, &td, CoverStrategy::Exact).unwrap();
            let sigma = ordering_from_td(&h, &td);
            let mut ev = GhwEvaluator::new(&h, CoverStrategy::Exact);
            let w = ev.width(sigma.as_slice()).unwrap();
            assert!(w <= ghd.width(), "seed {seed}: {w} > {}", ghd.width());
        }
    }

    #[test]
    fn single_node_td_normalizes() {
        let h = thesis_hypergraph();
        let td = TreeDecomposition::trivial(6);
        let lnf = to_leaf_normal_form(&h, &td);
        lnf.td.validate(&h).unwrap();
        let sigma = ordering_from_lnf(&h, &lnf);
        assert_eq!(sigma.len(), 6);
    }
}
