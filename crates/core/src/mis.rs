//! Maximum (weight) independent set by dynamic programming over a nice
//! tree decomposition — the textbook `O(2^w · n)` payoff of small width.
//!
//! Each nice node keeps a table from "bag subset that is independent and
//! intersects the chosen set exactly here" to the best weight achievable
//! in the subtree. Introduce extends tables, forget maximizes out, join
//! adds (subtracting the double-counted bag part).

use std::collections::HashMap;

use htd_hypergraph::{Graph, VertexSet};

use crate::nice::{NiceNodeKind, NiceTreeDecomposition};

/// Maximum-weight independent set of `g` using a nice tree decomposition
/// of it. `weights[v]` is vertex `v`'s weight (use all-ones for maximum
/// cardinality). Returns the best total weight.
///
/// Runs in `O(2^w)` per node — only use with decompositions of small
/// width.
pub fn max_weight_independent_set(g: &Graph, nice: &NiceTreeDecomposition, weights: &[i64]) -> i64 {
    assert_eq!(g.num_vertices() as usize, weights.len());
    let td = &nice.tree;
    let order = td.topological_order();
    // per-node table: chosen-subset-of-bag (as sorted vec of blocks) → best
    let mut tables: Vec<HashMap<Vec<u64>, i64>> = vec![HashMap::new(); td.num_nodes()];
    for &p in order.iter().rev() {
        let table = match &nice.kinds[p] {
            NiceNodeKind::Leaf => {
                let mut t = HashMap::new();
                t.insert(VertexSet::new(g.num_vertices()).blocks().to_vec(), 0);
                t
            }
            NiceNodeKind::Introduce { vertex } => {
                let child = td.children(p)[0];
                let mut t = HashMap::new();
                for (key, &val) in &tables[child] {
                    let chosen = set_from_blocks(key, g.num_vertices());
                    // not taking the vertex: same chosen set
                    merge_max(&mut t, chosen.blocks().to_vec(), val);
                    // taking it: must stay independent inside the bag
                    if chosen.is_disjoint(g.neighbors(*vertex)) {
                        let mut with_v = chosen.clone();
                        with_v.insert(*vertex);
                        merge_max(
                            &mut t,
                            with_v.blocks().to_vec(),
                            val + weights[*vertex as usize],
                        );
                    }
                }
                t
            }
            NiceNodeKind::Forget { vertex } => {
                let child = td.children(p)[0];
                let mut t = HashMap::new();
                for (key, &val) in &tables[child] {
                    let mut chosen = set_from_blocks(key, g.num_vertices());
                    chosen.remove(*vertex);
                    merge_max(&mut t, chosen.blocks().to_vec(), val);
                }
                t
            }
            NiceNodeKind::Join => {
                let (a, b) = (td.children(p)[0], td.children(p)[1]);
                let mut t = HashMap::new();
                for (key, &va) in &tables[a] {
                    if let Some(&vb) = tables[b].get(key) {
                        // both subtrees agree on the bag part; its weight is
                        // counted twice
                        let chosen = set_from_blocks(key, g.num_vertices());
                        let bag_weight: i64 = chosen.iter().map(|v| weights[v as usize]).sum();
                        merge_max(&mut t, key.clone(), va + vb - bag_weight);
                    }
                }
                t
            }
        };
        tables[p] = table;
        // children tables are dead now; drop them to bound memory
        for &c in td.children(p) {
            tables[c] = HashMap::new();
        }
    }
    // root bag is empty: single entry
    *tables[td.root()]
        .get(VertexSet::new(g.num_vertices()).blocks())
        .expect("root table has the empty entry")
}

fn merge_max(t: &mut HashMap<Vec<u64>, i64>, key: Vec<u64>, val: i64) {
    t.entry(key)
        .and_modify(|v| {
            if val > *v {
                *v = val;
            }
        })
        .or_insert(val);
}

fn set_from_blocks(blocks: &[u64], cap: u32) -> VertexSet {
    let mut s = VertexSet::new(cap);
    for (i, &b) in blocks.iter().enumerate() {
        let mut m = b;
        while m != 0 {
            let bit = m.trailing_zeros();
            m &= m - 1;
            s.insert((i * 64) as u32 + bit);
        }
    }
    s
}

/// Maximum-cardinality independent set: all weights 1.
pub fn max_independent_set(g: &Graph, nice: &NiceTreeDecomposition) -> u32 {
    let weights = vec![1i64; g.num_vertices() as usize];
    max_weight_independent_set(g, nice, &weights) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::vertex_elimination;
    use crate::nice::NiceTreeDecomposition;
    use crate::ordering::EliminationOrdering;
    use htd_hypergraph::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn nice_of(g: &Graph) -> NiceTreeDecomposition {
        let n = g.num_vertices();
        let td = vertex_elimination(g, &EliminationOrdering::identity(n));
        NiceTreeDecomposition::from_td(&td, n)
    }

    /// O(2^n) brute force for cross-checking.
    fn brute_force_mis(g: &Graph, weights: &[i64]) -> i64 {
        let n = g.num_vertices();
        let mut best = 0i64;
        for mask in 0u32..(1 << n) {
            let mut ok = true;
            let mut w = 0i64;
            for v in 0..n {
                if mask & (1 << v) == 0 {
                    continue;
                }
                w += weights[v as usize];
                for u in v + 1..n {
                    if mask & (1 << u) != 0 && g.has_edge(v, u) {
                        ok = false;
                    }
                }
            }
            if ok && w > best {
                best = w;
            }
        }
        best
    }

    #[test]
    fn known_families() {
        // path P5: MIS = 3; cycle C6: 3; K5: 1; empty graph: n
        assert_eq!(
            max_independent_set(&gen::path_graph(5), &nice_of(&gen::path_graph(5))),
            3
        );
        assert_eq!(
            max_independent_set(&gen::cycle_graph(6), &nice_of(&gen::cycle_graph(6))),
            3
        );
        assert_eq!(
            max_independent_set(&gen::complete_graph(5), &nice_of(&gen::complete_graph(5))),
            1
        );
        let empty = Graph::new(7);
        assert_eq!(max_independent_set(&empty, &nice_of(&empty)), 7);
        // 4x4 grid: independent set of 8 (checkerboard)
        let grid = gen::grid_graph(4, 4);
        assert_eq!(max_independent_set(&grid, &nice_of(&grid)), 8);
    }

    #[test]
    fn matches_brute_force_with_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        use rand::Rng;
        for seed in 0..12u64 {
            let g = gen::random_gnp(10, 0.35, seed);
            let weights: Vec<i64> = (0..10).map(|_| rng.gen_range(0..20)).collect();
            let got = max_weight_independent_set(&g, &nice_of(&g), &weights);
            let want = brute_force_mis(&g, &weights);
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn zero_weights_give_zero() {
        let g = gen::cycle_graph(5);
        let w = vec![0i64; 5];
        assert_eq!(max_weight_independent_set(&g, &nice_of(&g), &w), 0);
    }
}
