//! Tree decompositions and generalized hypertree decompositions.
//!
//! This crate is the primary contribution of the workspace: the
//! decomposition structures themselves, their validity checkers, and the
//! elimination-ordering machinery that every heuristic and exact algorithm
//! in the workspace searches over.
//!
//! * [`TreeDecomposition`] / [`GeneralizedHypertreeDecomposition`] — the
//!   two decomposition types with full condition validators (thesis
//!   Definitions 11 and 13) and width accessors.
//! * [`bucket`] — bucket elimination and vertex elimination: an
//!   [`ordering::EliminationOrdering`] plus a hypergraph yields a tree
//!   decomposition (Fig. 2.10/2.12), and with a set-cover step a
//!   generalized hypertree decomposition (§2.5.2).
//! * [`ordering`] — fast width evaluation of orderings, the fitness
//!   function of the genetic algorithms and the cost function of the
//!   searches (Fig. 6.2 and 7.1).
//! * [`leaf_normal_form`] — the constructive side of Chapter 3: every tree
//!   decomposition can be normalized so that an elimination ordering read
//!   off deepest-common-ancestor depths reproduces (or beats) its width,
//!   which is why orderings are a complete search space for both `tw` and
//!   `ghw` (Theorems 1–3).
//! * [`join_tree`] — GYO reduction, α-acyclicity and join trees of acyclic
//!   hypergraphs (§2.2.3).

#![warn(missing_docs)]

pub mod bucket;
pub mod dot;
pub mod error;
pub mod fractional;
pub mod ghd;
pub mod join_tree;
pub mod json;
pub mod leaf_normal_form;
pub mod mis;
pub mod nice;
pub mod ordering;
pub mod pace;
pub mod tree_decomposition;

pub use error::HtdError;
pub use fractional::FhwEvaluator;
pub use ghd::GeneralizedHypertreeDecomposition;
pub use json::Json;
pub use ordering::{CoverStrategy, EliminationOrdering, GhwEvaluator, TwEvaluator};
pub use tree_decomposition::TreeDecomposition;
