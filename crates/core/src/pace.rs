//! PACE-challenge `.td` format for tree decompositions.
//!
//! The community-standard interchange format:
//!
//! ```text
//! c a comment
//! s td <num_bags> <max_bag_size> <num_vertices>
//! b 1 1 2 3
//! b 2 2 3 4
//! 1 2
//! ```
//!
//! Bag ids and vertices are 1-based; the lines after the bags are the
//! edges of the decomposition tree. Bag 1 becomes the root on parsing.

use std::fmt::Write as _;

use htd_hypergraph::VertexSet;

use crate::tree_decomposition::TreeDecomposition;

/// Errors of the `.td` parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TdParseError {
    /// Missing or malformed `s td …` header.
    MissingHeader,
    /// A line could not be interpreted.
    BadLine(String),
    /// A bag id or vertex id is out of the declared range.
    OutOfRange(String),
    /// The bag edges do not form a tree.
    NotATree,
}

impl std::fmt::Display for TdParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TdParseError::MissingHeader => write!(f, "missing 's td' header"),
            TdParseError::BadLine(l) => write!(f, "unparseable line {l:?}"),
            TdParseError::OutOfRange(x) => write!(f, "id out of range: {x}"),
            TdParseError::NotATree => write!(f, "bag edges do not form a tree"),
        }
    }
}

impl std::error::Error for TdParseError {}

/// Writes a tree decomposition in PACE `.td` format for a graph on
/// `num_vertices` vertices.
pub fn write_td(td: &TreeDecomposition, num_vertices: u32) -> String {
    let mut out = String::new();
    let max_bag = td.bags().iter().map(|b| b.len()).max().unwrap_or(0);
    let _ = writeln!(out, "s td {} {} {}", td.num_nodes(), max_bag, num_vertices);
    for p in 0..td.num_nodes() {
        let verts: Vec<String> = td.bag(p).iter().map(|v| (v + 1).to_string()).collect();
        let _ = writeln!(out, "b {} {}", p + 1, verts.join(" "));
    }
    for p in 0..td.num_nodes() {
        if let Some(q) = td.parent(p) {
            let _ = writeln!(out, "{} {}", q + 1, p + 1);
        }
    }
    out
}

/// Parses a PACE `.td` file. Bag 1 becomes the root.
pub fn parse_td(text: &str) -> Result<TreeDecomposition, TdParseError> {
    let mut num_bags = 0usize;
    let mut num_vertices = 0u32;
    let mut bags: Vec<Option<VertexSet>> = Vec::new();
    let mut tree_edges: Vec<(usize, usize)> = Vec::new();
    let mut seen_header = false;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("s td") {
            let nums: Vec<u32> = rest
                .split_whitespace()
                .map(|t| t.parse().map_err(|_| TdParseError::MissingHeader))
                .collect::<Result<_, _>>()?;
            if nums.len() != 3 {
                return Err(TdParseError::MissingHeader);
            }
            num_bags = nums[0] as usize;
            num_vertices = nums[2];
            bags = vec![None; num_bags];
            seen_header = true;
            continue;
        }
        if !seen_header {
            return Err(TdParseError::MissingHeader);
        }
        if let Some(rest) = line.strip_prefix("b ") {
            let mut it = rest.split_whitespace();
            let id: usize = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| TdParseError::BadLine(line.to_string()))?;
            if id == 0 || id > num_bags {
                return Err(TdParseError::OutOfRange(id.to_string()));
            }
            let mut bag = VertexSet::new(num_vertices);
            for tok in it {
                let v: u32 = tok
                    .parse()
                    .map_err(|_| TdParseError::BadLine(line.to_string()))?;
                if v == 0 || v > num_vertices {
                    return Err(TdParseError::OutOfRange(v.to_string()));
                }
                bag.insert(v - 1);
            }
            bags[id - 1] = Some(bag);
        } else {
            let mut it = line.split_whitespace();
            let a: usize = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| TdParseError::BadLine(line.to_string()))?;
            let b: usize = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| TdParseError::BadLine(line.to_string()))?;
            if a == 0 || b == 0 || a > num_bags || b > num_bags {
                return Err(TdParseError::OutOfRange(format!("{a} or {b}")));
            }
            tree_edges.push((a - 1, b - 1));
        }
    }
    if !seen_header || num_bags == 0 {
        return Err(TdParseError::MissingHeader);
    }
    let bags: Vec<VertexSet> = bags
        .into_iter()
        .enumerate()
        .map(|(i, b)| b.ok_or(TdParseError::OutOfRange(format!("bag {} missing", i + 1))))
        .collect::<Result<_, _>>()?;
    // orient edges away from bag 0 by BFS
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); num_bags];
    for &(a, b) in &tree_edges {
        adj[a].push(b);
        adj[b].push(a);
    }
    let mut parent: Vec<Option<usize>> = vec![None; num_bags];
    let mut seen = vec![false; num_bags];
    let mut queue = std::collections::VecDeque::from([0usize]);
    seen[0] = true;
    while let Some(p) = queue.pop_front() {
        for &q in &adj[p] {
            if !seen[q] {
                seen[q] = true;
                parent[q] = Some(p);
                queue.push_back(q);
            }
        }
    }
    if seen.iter().any(|&s| !s) {
        return Err(TdParseError::NotATree);
    }
    TreeDecomposition::new(bags, parent).map_err(|_| TdParseError::NotATree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::vertex_elimination;
    use crate::ordering::EliminationOrdering;
    use htd_hypergraph::gen;

    #[test]
    fn roundtrip_preserves_structure() {
        let g = gen::grid_graph(3, 3);
        let td = vertex_elimination(&g, &EliminationOrdering::identity(9));
        let text = write_td(&td, 9);
        let parsed = parse_td(&text).unwrap();
        assert_eq!(parsed.num_nodes(), td.num_nodes());
        assert_eq!(parsed.width(), td.width());
        parsed.validate_graph(&g).unwrap();
    }

    #[test]
    fn parses_the_format_example() {
        let text = "c example\ns td 2 3 4\nb 1 1 2 3\nb 2 2 3 4\n1 2\n";
        let td = parse_td(text).unwrap();
        assert_eq!(td.num_nodes(), 2);
        assert_eq!(td.width(), 2);
        assert_eq!(td.bag(0).to_vec(), vec![0, 1, 2]);
        assert_eq!(td.parent(1), Some(0));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(matches!(
            parse_td("b 1 1\n"),
            Err(TdParseError::MissingHeader)
        ));
        assert!(matches!(
            parse_td("s td 1 1 2\nb 1 9\n"),
            Err(TdParseError::OutOfRange(_))
        ));
        // two bags, no connecting edge: not a tree
        assert!(matches!(
            parse_td("s td 2 1 2\nb 1 1\nb 2 2\n"),
            Err(TdParseError::NotATree)
        ));
        // missing bag
        assert!(matches!(
            parse_td("s td 2 1 2\nb 1 1\n1 2\n"),
            Err(TdParseError::OutOfRange(_))
        ));
    }

    #[test]
    fn empty_bags_are_legal() {
        let text = "s td 1 0 3\nb 1\n";
        let td = parse_td(text).unwrap();
        assert_eq!(td.num_nodes(), 1);
        assert!(td.bag(0).is_empty());
    }
}
