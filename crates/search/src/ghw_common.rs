//! Shared machinery of the generalized-hypertree-width searches.

use std::sync::Arc;

use htd_hypergraph::{EliminationGraph, Hypergraph, Vertex, VertexSet};
use htd_setcover::exact::{CoverResult, ExactCover};
use htd_setcover::CoverCache;
use rand::rngs::StdRng;

use crate::bb_tw::alive_graph;

/// Hypergraph context shared by BB-ghw and A*-ghw: edge scopes, incidence,
/// a memoized exact-cover oracle and the per-node lower bound.
///
/// The cover memo is a concurrent [`CoverCache`]: a context created with
/// [`GhwContext::with_cache`] shares its memo with every other evaluation
/// holding the same cache (portfolio workers, the A* sibling search, the
/// GA fitness loop), so a bag's exact cover is solved once per run rather
/// than once per engine.
pub(crate) struct GhwContext {
    pub edges: Vec<VertexSet>,
    pub incident: Vec<Vec<u32>>,
    pub rank: u32,
    /// bag (bitset blocks) → exact minimum cover size, shared across a run
    cache: Arc<CoverCache>,
}

impl GhwContext {
    #[allow(dead_code)] // convenience constructor for tests and callers without a shared cache
    pub fn new(h: &Hypergraph) -> Self {
        Self::with_cache(h, Arc::new(CoverCache::new()))
    }

    /// A context whose exact-cover memo is the shared `cache`. The cache
    /// must only ever see bags of this hypergraph (exact strategy).
    pub fn with_cache(h: &Hypergraph, cache: Arc<CoverCache>) -> Self {
        GhwContext {
            edges: h.edges().to_vec(),
            incident: (0..h.num_vertices())
                .map(|v| h.incident_edges(v).to_vec())
                .collect(),
            rank: h.rank(),
            cache,
        }
    }

    /// Exact minimum cover of `bag` by hyperedges, memoized.
    /// Returns `None` for uncoverable bags.
    pub fn cover_exact(&mut self, bag: &VertexSet) -> Option<u32> {
        if bag.is_empty() {
            return Some(0);
        }
        self.cache.get_or_insert_with(bag.blocks(), || {
            // candidates: edges touching the bag
            let mut cands: Vec<VertexSet> = Vec::new();
            let mut stamp = vec![false; self.edges.len()];
            for v in bag.iter() {
                for &e in &self.incident[v as usize] {
                    if !stamp[e as usize] {
                        stamp[e as usize] = true;
                        cands.push(self.edges[e as usize].clone());
                    }
                }
            }
            match ExactCover::new(&cands).cover(bag) {
                CoverResult::Optimal(c) => Some(c.len() as u32),
                CoverResult::Truncated(c) => Some(c.len() as u32), // unbudgeted: unreachable
                CoverResult::Uncoverable => None,
            }
        })
    }

    /// Greedy cover of `bag` — used for the PR1-style achievable bound on
    /// the whole alive set, where an exact cover would be exponential in
    /// the set size and only an *upper* bound is needed.
    pub fn cover_greedy(&self, bag: &VertexSet) -> Option<u32> {
        if bag.is_empty() {
            return Some(0);
        }
        let mut cands: Vec<&VertexSet> = Vec::new();
        let mut stamp = vec![false; self.edges.len()];
        for v in bag.iter() {
            for &e in &self.incident[v as usize] {
                if !stamp[e as usize] {
                    stamp[e as usize] = true;
                    cands.push(&self.edges[e as usize]);
                }
            }
        }
        let mut uncovered = bag.clone();
        let mut count = 0u32;
        while !uncovered.is_empty() {
            let best = cands
                .iter()
                .map(|e| e.intersection_len(&uncovered))
                .enumerate()
                .max_by_key(|&(_, gain)| gain)?;
            if best.1 == 0 {
                return None;
            }
            uncovered.difference_with(cands[best.0]);
            count += 1;
        }
        Some(count)
    }

    /// The ghw-simplicial reduction: a vertex whose closed neighborhood is
    /// contained in a single hyperedge may be eliminated immediately (its
    /// bag costs 1 and removing it cannot raise the optimum).
    pub fn find_ghw_reducible(&self, eg: &EliminationGraph) -> Option<Vertex> {
        eg.alive().iter().find(|&v| {
            let bag = eg.bag(v);
            self.incident[v as usize]
                .iter()
                .any(|&e| bag.is_subset(&self.edges[e as usize]))
        })
    }

    /// Per-node lower bound on the cover width of any completion: some
    /// future bag has at least `tw_lb(G') + 1` vertices (the completion is
    /// a tree decomposition of the current graph) and covering `s` vertices
    /// needs `⌈s / rank⌉` edges (§8.1).
    pub fn node_lower_bound(&self, eg: &EliminationGraph, rng: &mut StdRng) -> u32 {
        if eg.num_alive() == 0 {
            return 0;
        }
        let sub = alive_graph(eg);
        let tw_lb = htd_heuristics::lower::minor_min_width(&sub, rng);
        htd_setcover::ksc_lower_bound(tw_lb + 1, self.rank)
    }

    /// Swap rule for ghw searches: only the **non-adjacent** case of PR2 is
    /// used — swapping two non-adjacent consecutive eliminations produces
    /// the identical bag *sets*, hence identical cover widths. (The
    /// adjacent case of PR2 only preserves bag cardinalities, which is
    /// enough for treewidth but not for cover width.)
    pub fn swappable_ghw(eg: &EliminationGraph, v: Vertex, w: Vertex) -> bool {
        !eg.has_edge(v, w)
    }
}
