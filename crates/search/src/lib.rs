//! Exact search algorithms for treewidth and generalized hypertree width.
//!
//! Four algorithms, all searching the space of elimination orderings:
//!
//! * [`bb_tw`] — depth-first branch and bound for treewidth
//!   (the QuickBB / BB-tw scheme of thesis §4.4);
//! * [`astar_tw`] — best-first A* for treewidth (thesis Fig. 5.1);
//! * [`bb_ghw`] — branch and bound for generalized hypertree width
//!   (thesis Fig. 8.3), sound and complete by Theorem 3;
//! * [`astar_ghw`] — A* for generalized hypertree width (thesis Fig. 9.1).
//! * [`detk`] — det-k-decomp, the canonical backtracking algorithm for
//!   *hypertree* decompositions (`hw`), included as the literature
//!   baseline satisfying `ghw ≤ hw`.
//!
//! All four share [`SearchConfig`] (budgets and pruning toggles) and report
//! a [`SearchOutcome`] with anytime lower/upper bounds: interrupted runs
//! still return valid bounds, exactly as the thesis's one-hour-limit runs
//! report the `f`-value of the last visited state as a lower bound (§5.3).

#![warn(missing_docs)]

pub mod astar_ghw;
pub mod astar_tw;
pub mod bb_ghw;
pub mod bb_tw;
pub mod config;
pub mod detk;
pub mod dp_tw;
pub mod parallel;
pub(crate) mod ghw_common;
pub mod pruning;

pub use astar_ghw::astar_ghw;
pub use astar_tw::astar_tw;
pub use bb_ghw::bb_ghw;
pub use bb_tw::bb_tw;
pub use config::{SearchConfig, SearchOutcome, SearchStats};
pub use detk::{det_k_decomp, hypertree_width};
pub use dp_tw::dp_treewidth;
pub use parallel::bb_tw_parallel;
