//! Exact search algorithms for treewidth and generalized hypertree width.
//!
//! Four algorithms, all searching the space of elimination orderings:
//!
//! * [`bb_tw`] — depth-first branch and bound for treewidth
//!   (the QuickBB / BB-tw scheme of thesis §4.4);
//! * [`astar_tw`] — best-first A* for treewidth (thesis Fig. 5.1);
//! * [`bb_ghw`] — branch and bound for generalized hypertree width
//!   (thesis Fig. 8.3), sound and complete by Theorem 3;
//! * [`astar_ghw`] — A* for generalized hypertree width (thesis Fig. 9.1).
//! * [`detk`] — det-k-decomp, the canonical backtracking algorithm for
//!   *hypertree* decompositions (`hw`), included as the literature
//!   baseline satisfying `ghw ≤ hw`.
//!
//! All four share [`SearchConfig`] (budgets and pruning toggles) and report
//! a [`SearchOutcome`] with anytime lower/upper bounds: interrupted runs
//! still return valid bounds, exactly as the thesis's one-hour-limit runs
//! report the `f`-value of the last visited state as a lower bound (§5.3).
//!
//! The preferred entry point is the unified API in [`portfolio`]: build a
//! [`Problem`], pick a [`SearchConfig`], call [`solve`], read an
//! [`Outcome`]. With `num_threads > 1` it runs all engines concurrently
//! against a shared [`Incumbent`]. The per-engine functions above remain
//! available as modules; their old crate-root re-exports are deprecated.

#![warn(missing_docs)]

pub mod astar_ghw;
pub mod astar_tw;
pub mod balsep;
pub mod bb_ghw;
pub mod bb_tw;
pub mod config;
pub mod detk;
pub mod dp_tw;
pub(crate) mod ghw_common;
pub mod incumbent;
pub mod parallel;
pub mod portfolio;
pub mod pruning;
pub mod registry;

pub use config::{Engine, SearchConfig, SearchOutcome, SearchStats};
pub use detk::{det_k_decomp, hypertree_width};
pub use dp_tw::{dp_treewidth, dp_treewidth_budgeted};
pub use incumbent::Incumbent;
pub use parallel::bb_tw_parallel;
pub use portfolio::{solve, EngineReport, Objective, Outcome, Problem};
pub use registry::{
    engine_specs, engines_from_names, register_engine, registered_engine_names, EngineContext,
    EngineSpec,
};

use htd_hypergraph::{Graph, Hypergraph};

// Deprecated per-engine entry points. These shadow the module names in the
// value namespace only, so `crate::bb_tw::bb_tw` paths keep working.

/// Deprecated alias for [`bb_tw::bb_tw`]; prefer [`solve`].
#[deprecated(
    since = "0.2.0",
    note = "use htd_search::solve with Problem::treewidth"
)]
pub fn bb_tw(g: &Graph, cfg: &SearchConfig) -> SearchOutcome {
    bb_tw::bb_tw(g, cfg)
}

/// Deprecated alias for [`astar_tw::astar_tw`]; prefer [`solve`].
#[deprecated(
    since = "0.2.0",
    note = "use htd_search::solve with Problem::treewidth"
)]
pub fn astar_tw(g: &Graph, cfg: &SearchConfig) -> SearchOutcome {
    astar_tw::astar_tw(g, cfg)
}

/// Deprecated alias for [`bb_ghw::bb_ghw`]; prefer [`solve`].
#[deprecated(since = "0.2.0", note = "use htd_search::solve with Problem::ghw")]
pub fn bb_ghw(h: &Hypergraph, cfg: &SearchConfig) -> Option<SearchOutcome> {
    bb_ghw::bb_ghw(h, cfg)
}

/// Deprecated alias for [`astar_ghw::astar_ghw`]; prefer [`solve`].
#[deprecated(since = "0.2.0", note = "use htd_search::solve with Problem::ghw")]
pub fn astar_ghw(h: &Hypergraph, cfg: &SearchConfig) -> Option<SearchOutcome> {
    astar_ghw::astar_ghw(h, cfg)
}
