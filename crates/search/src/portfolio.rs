//! The anytime portfolio solver and the unified solver API.
//!
//! One entry point — [`solve`] — replaces the four per-engine functions:
//! a [`Problem`] names the instance and the objective (`tw`, `ghw` or
//! `hw`), a [`SearchConfig`] carries budgets and the thread count, and the
//! result is always an [`Outcome`] with certified anytime bounds.
//!
//! With `num_threads > 1` the solver launches a **portfolio**: heuristic
//! upper-bound, lower-bound, branch-and-bound, A* and (optionally) GA/SA
//! workers run concurrently on scoped threads against one shared
//! [`Incumbent`]. Every bound any worker proves immediately tightens every
//! other worker's pruning; the first exact proof — or the wall-clock
//! budget — cancels the whole run cooperatively. All ghw workers share one
//! concurrent [`CoverCache`](htd_setcover::CoverCache) per covering
//! strategy, so a bag's set cover is solved once per run rather than once
//! per engine.
//!
//! This is the thesis's systems chapters in one place: the searches
//! (Chapters 4–9), the heuristics feeding them initial bounds, and the
//! GA (Chapters 6–7) demoted from standalone experiment to incumbent
//! supplier.

use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use htd_core::error::HtdError;
use htd_core::json::Json;
use htd_core::ordering::{CoverStrategy, EliminationOrdering, GhwEvaluator};
use htd_ga::engine::GaParams;
use htd_ga::sa::SaParams;
use htd_hypergraph::{Graph, Hypergraph};
use htd_setcover::CoverCache;
use htd_trace::{registry, Event};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::{SearchConfig, SearchStats};
use crate::incumbent::{offer_traced, raise_traced, Incumbent};
use crate::registry::{Engine, EngineContext, EngineSpec};

/// What to minimize.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Objective {
    /// Treewidth of a graph (or of a hypergraph's primal graph).
    Treewidth,
    /// Generalized hypertree width (Definition 13).
    GeneralizedHypertreeWidth,
    /// Hypertree width (adds the descendant condition; `ghw ≤ hw`).
    HypertreeWidth,
}

impl Objective {
    /// The short name used in CLI arguments and JSON (`tw`/`ghw`/`hw`).
    pub fn name(self) -> &'static str {
        match self {
            Objective::Treewidth => "tw",
            Objective::GeneralizedHypertreeWidth => "ghw",
            Objective::HypertreeWidth => "hw",
        }
    }

    /// Parses a short name.
    pub fn from_name(s: &str) -> Option<Objective> {
        match s {
            "tw" => Some(Objective::Treewidth),
            "ghw" => Some(Objective::GeneralizedHypertreeWidth),
            "hw" => Some(Objective::HypertreeWidth),
            _ => None,
        }
    }
}

/// An instance plus an objective: the input of [`solve`].
#[derive(Clone, Debug)]
pub struct Problem {
    objective: Objective,
    /// The graph searched over (for ghw/hw: the primal graph).
    graph: Graph,
    /// Present for hypergraph objectives (ghw / hw) and for treewidth of
    /// a hypergraph's primal graph.
    hypergraph: Option<Hypergraph>,
}

impl Problem {
    /// Treewidth of a graph.
    pub fn treewidth(graph: Graph) -> Self {
        Problem {
            objective: Objective::Treewidth,
            graph,
            hypergraph: None,
        }
    }

    /// Treewidth of a hypergraph's primal graph.
    pub fn treewidth_of_hypergraph(h: Hypergraph) -> Self {
        Problem {
            objective: Objective::Treewidth,
            graph: h.primal_graph(),
            hypergraph: Some(h),
        }
    }

    /// Generalized hypertree width of a hypergraph.
    pub fn ghw(h: Hypergraph) -> Self {
        Problem {
            objective: Objective::GeneralizedHypertreeWidth,
            graph: h.primal_graph(),
            hypergraph: Some(h),
        }
    }

    /// Hypertree width of a hypergraph.
    pub fn hw(h: Hypergraph) -> Self {
        Problem {
            objective: Objective::HypertreeWidth,
            graph: h.primal_graph(),
            hypergraph: Some(h),
        }
    }

    /// The objective.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// The graph searched over (for ghw/hw: the primal graph).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The hypergraph, when the problem has one.
    pub fn hypergraph(&self) -> Option<&Hypergraph> {
        self.hypergraph.as_ref()
    }

    /// Checks the semantic requirements of the objective.
    pub fn validate(&self) -> Result<(), HtdError> {
        match self.objective {
            Objective::Treewidth => Ok(()),
            Objective::GeneralizedHypertreeWidth | Objective::HypertreeWidth => {
                let h = self.hypergraph.as_ref().ok_or_else(|| {
                    HtdError::Invalid(format!("{} needs a hypergraph", self.objective.name()))
                })?;
                if !h.covers_all_vertices() {
                    return Err(HtdError::Invalid(
                        "some vertex lies in no hyperedge: no decomposition exists".into(),
                    ));
                }
                Ok(())
            }
        }
    }
}

/// What one engine contributed to a solve.
#[derive(Clone, Debug)]
pub struct EngineReport {
    /// The engine.
    pub engine: Engine,
    /// Lower bound this engine proved on its own.
    pub lower: u32,
    /// Upper bound this engine achieved on its own (`u32::MAX` = none).
    pub upper: u32,
    /// Whether this engine finished with an exactness proof.
    pub exact: bool,
    /// Whether this engine panicked and was quarantined: its slot
    /// contributed nothing, but the portfolio carried on without it.
    pub panicked: bool,
    /// Its search counters.
    pub stats: SearchStats,
}

/// The unified result of [`solve`]: certified anytime bounds, a witness,
/// and per-engine accounting.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// The objective solved.
    pub objective: Objective,
    /// Proven lower bound.
    pub lower: u32,
    /// Achieved upper bound.
    pub upper: u32,
    /// `true` iff `lower == upper` was proven within budget.
    pub exact: bool,
    /// An elimination ordering achieving `upper` (absent for `hw`, whose
    /// witness is a decomposition tree, not an ordering).
    pub witness: Option<EliminationOrdering>,
    /// Total nodes expanded across every engine.
    pub nodes: u64,
    /// Wall-clock time of the whole solve.
    pub elapsed: Duration,
    /// Per-engine accounting, in launch order.
    pub per_engine: Vec<EngineReport>,
    /// The engine whose offer produced the final upper bound, when known
    /// (portfolio runs attribute every accepted offer).
    pub winner: Option<Engine>,
    /// Time from solve start to the first accepted upper bound.
    pub time_to_first_upper: Option<Duration>,
    /// Time from solve start to the upper bound that ended up best.
    pub time_to_best_upper: Option<Duration>,
    /// Exact-cover cache hits during this solve (ghw objectives; 0 for tw).
    pub cover_cache_hits: u64,
    /// Exact-cover cache misses during this solve.
    pub cover_cache_misses: u64,
    /// `true` when the memory budget was exhausted mid-run: the bounds
    /// are still certified, but the search was truncated by the governor
    /// rather than by its node/time budget. Degraded results never claim
    /// exactness they didn't prove before the truncation.
    pub degraded: bool,
    /// Lineup engines that never got a worker slot (fewer threads than
    /// engines, or an engine that does not support the objective). They
    /// contributed nothing — a run that looks oddly narrow was not a
    /// silent truncation, it is recorded here and in the trace stream.
    pub skipped_engines: Vec<Engine>,
}

impl Outcome {
    /// The width if proven exact.
    pub fn exact_width(&self) -> Option<u32> {
        self.exact.then_some(self.upper)
    }

    /// The documented JSON schema, one object per solve:
    ///
    /// ```json
    /// {"objective":"tw","lower":18,"upper":18,"exact":true,
    ///  "witness":[3,1,0,2],"nodes":4212,"elapsed_ms":10.3,
    ///  "engines":[{"engine":"branch_bound","lower":18,"upper":18,
    ///              "exact":true,"expanded":4212,"generated":9121,
    ///              "pruned":380,"max_queue":0,"elapsed_ms":10.1}]}
    /// ```
    ///
    /// `witness` is omitted when absent; `upper` of an engine that never
    /// found one is omitted likewise.
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("objective".into(), Json::Str(self.objective.name().into())),
            ("lower".into(), Json::Num(self.lower as f64)),
            ("upper".into(), Json::Num(self.upper as f64)),
            ("exact".into(), Json::Bool(self.exact)),
        ];
        if self.degraded {
            members.push(("degraded".into(), Json::Bool(true)));
        }
        if let Some(w) = &self.witness {
            members.push((
                "witness".into(),
                Json::Arr(w.as_slice().iter().map(|&v| Json::Num(v as f64)).collect()),
            ));
        }
        members.push(("nodes".into(), Json::Num(self.nodes as f64)));
        members.push((
            "elapsed_ms".into(),
            Json::Num(self.elapsed.as_secs_f64() * 1e3),
        ));
        members.push((
            "engines".into(),
            Json::Arr(self.per_engine.iter().map(engine_report_json).collect()),
        ));
        if !self.skipped_engines.is_empty() {
            members.push((
                "skipped_engines".into(),
                Json::Arr(
                    self.skipped_engines
                        .iter()
                        .map(|e| Json::Str(e.name().into()))
                        .collect(),
                ),
            ));
        }
        let mut ts = Vec::new();
        if let Some(w) = self.winner {
            ts.push(("winner".into(), Json::Str(w.name().into())));
        }
        if let Some(t) = self.time_to_first_upper {
            ts.push((
                "time_to_first_upper_ms".into(),
                Json::Num(t.as_secs_f64() * 1e3),
            ));
        }
        if let Some(t) = self.time_to_best_upper {
            ts.push((
                "time_to_best_upper_ms".into(),
                Json::Num(t.as_secs_f64() * 1e3),
            ));
        }
        ts.push(("expansions".into(), Json::Num(self.nodes as f64)));
        ts.push((
            "pruned".into(),
            Json::Num(self.per_engine.iter().map(|r| r.stats.pruned).sum::<u64>() as f64),
        ));
        ts.push((
            "cover_cache".into(),
            Json::Obj(vec![
                ("hits".into(), Json::Num(self.cover_cache_hits as f64)),
                ("misses".into(), Json::Num(self.cover_cache_misses as f64)),
            ]),
        ));
        members.push(("trace_summary".into(), Json::Obj(ts)));
        Json::Obj(members)
    }

    /// Parses a document produced by [`Outcome::to_json`].
    pub fn from_json(doc: &Json) -> Result<Outcome, HtdError> {
        let field = |k: &str| {
            doc.get(k)
                .ok_or_else(|| HtdError::Parse(format!("outcome json missing '{k}'")))
        };
        let objective = Objective::from_name(field("objective")?.as_str().unwrap_or(""))
            .ok_or_else(|| HtdError::Parse("bad objective".into()))?;
        let num = |k: &str| -> Result<u64, HtdError> {
            field(k)?
                .as_u64()
                .ok_or_else(|| HtdError::Parse(format!("'{k}' is not a number")))
        };
        let witness = match doc.get("witness") {
            None => None,
            Some(w) => {
                let items = w
                    .as_arr()
                    .ok_or_else(|| HtdError::Parse("witness is not an array".into()))?;
                let order: Option<Vec<u32>> =
                    items.iter().map(|v| v.as_u64().map(|x| x as u32)).collect();
                Some(EliminationOrdering::new_unchecked(order.ok_or_else(
                    || HtdError::Parse("witness holds a non-integer".into()),
                )?))
            }
        };
        let per_engine = match doc.get("engines") {
            None => Vec::new(),
            Some(engines) => engines
                .as_arr()
                .ok_or_else(|| HtdError::Parse("engines is not an array".into()))?
                .iter()
                .map(engine_report_from_json)
                .collect::<Result<Vec<_>, _>>()?,
        };
        let ts = doc.get("trace_summary");
        let ts_ms = |k: &str| {
            ts.and_then(|t| t.get(k))
                .and_then(|v| v.as_f64())
                .map(|m| Duration::from_secs_f64(m.max(0.0) / 1e3))
        };
        let cover = |k: &str| {
            ts.and_then(|t| t.get("cover_cache"))
                .and_then(|c| c.get(k))
                .and_then(|v| v.as_u64())
                .unwrap_or(0)
        };
        Ok(Outcome {
            objective,
            lower: num("lower")? as u32,
            upper: num("upper")? as u32,
            exact: field("exact")?
                .as_bool()
                .ok_or_else(|| HtdError::Parse("'exact' is not a bool".into()))?,
            witness,
            nodes: num("nodes")?,
            elapsed: Duration::from_secs_f64(
                field("elapsed_ms")?
                    .as_f64()
                    .ok_or_else(|| HtdError::Parse("'elapsed_ms' is not a number".into()))?
                    .max(0.0)
                    / 1e3,
            ),
            per_engine,
            winner: ts
                .and_then(|t| t.get("winner"))
                .and_then(|v| v.as_str())
                .and_then(Engine::from_name),
            time_to_first_upper: ts_ms("time_to_first_upper_ms"),
            time_to_best_upper: ts_ms("time_to_best_upper_ms"),
            cover_cache_hits: cover("hits"),
            cover_cache_misses: cover("misses"),
            // absent in pre-resilience documents: default to not degraded
            degraded: doc
                .get("degraded")
                .and_then(|v| v.as_bool())
                .unwrap_or(false),
            // absent in pre-registry documents: default to none skipped
            skipped_engines: doc
                .get("skipped_engines")
                .and_then(|v| v.as_arr())
                .map(|items| {
                    items
                        .iter()
                        .filter_map(|v| v.as_str().and_then(Engine::from_name))
                        .collect()
                })
                .unwrap_or_default(),
        })
    }
}

fn engine_report_json(r: &EngineReport) -> Json {
    let mut members = vec![
        ("engine".into(), Json::Str(r.engine.name().into())),
        ("lower".into(), Json::Num(r.lower as f64)),
    ];
    if r.upper != u32::MAX {
        members.push(("upper".into(), Json::Num(r.upper as f64)));
    }
    members.push(("exact".into(), Json::Bool(r.exact)));
    if r.panicked {
        members.push(("panicked".into(), Json::Bool(true)));
    }
    members.push(("expanded".into(), Json::Num(r.stats.expanded as f64)));
    members.push(("generated".into(), Json::Num(r.stats.generated as f64)));
    members.push(("pruned".into(), Json::Num(r.stats.pruned as f64)));
    members.push(("max_queue".into(), Json::Num(r.stats.max_queue as f64)));
    members.push((
        "elapsed_ms".into(),
        Json::Num(r.stats.elapsed.as_secs_f64() * 1e3),
    ));
    Json::Obj(members)
}

fn engine_report_from_json(doc: &Json) -> Result<EngineReport, HtdError> {
    let engine = Engine::from_name(
        doc.get("engine")
            .and_then(|v| v.as_str())
            .unwrap_or_default(),
    )
    .ok_or_else(|| HtdError::Parse("bad engine name".into()))?;
    let num = |k: &str| doc.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
    Ok(EngineReport {
        engine,
        lower: num("lower") as u32,
        upper: doc
            .get("upper")
            .and_then(|v| v.as_u64())
            .map(|x| x as u32)
            .unwrap_or(u32::MAX),
        exact: doc.get("exact").and_then(|v| v.as_bool()).unwrap_or(false),
        panicked: doc
            .get("panicked")
            .and_then(|v| v.as_bool())
            .unwrap_or(false),
        stats: SearchStats {
            expanded: num("expanded"),
            generated: num("generated"),
            pruned: num("pruned"),
            max_queue: num("max_queue") as usize,
            elapsed: Duration::from_secs_f64(
                doc.get("elapsed_ms")
                    .and_then(|v| v.as_f64())
                    .unwrap_or(0.0)
                    .max(0.0)
                    / 1e3,
            ),
        },
    })
}

/// Solves a [`Problem`] under a [`SearchConfig`].
///
/// `cfg.num_threads <= 1` runs the strongest sequential engine for the
/// objective (branch and bound; det-k-decomp for `hw`). More threads run
/// the anytime portfolio described in the module docs. Either way the
/// returned bounds are certified: `lower ≤ width ≤ upper`, with
/// `exact` iff the gap closed within budget.
pub fn solve(problem: &Problem, cfg: &SearchConfig) -> Result<Outcome, HtdError> {
    problem.validate()?;
    let start = Instant::now();
    cfg.tracer.emit_with(|| Event::SolveStarted {
        objective: problem.objective.name(),
        vertices: problem.graph().num_vertices() as usize,
        edges: problem
            .hypergraph()
            .map(|h| h.num_edges() as usize)
            .unwrap_or_else(|| problem.graph().num_edges()),
    });
    let mut outcome = match problem.objective {
        Objective::Treewidth => solve_portfolio(problem, cfg),
        Objective::GeneralizedHypertreeWidth => solve_portfolio(problem, cfg),
        Objective::HypertreeWidth => solve_hw(problem, cfg),
    }?;
    outcome.elapsed = start.elapsed();
    if let Some(w) = outcome.winner {
        registry()
            .labeled_counter("htd_solver_wins", "engine", w.name())
            .inc();
    }
    cfg.tracer.emit_with(|| Event::SolveFinished {
        lower: outcome.lower,
        upper: (outcome.upper != u32::MAX).then_some(outcome.upper),
        exact: outcome.exact,
        winner: outcome.winner.map(Engine::name),
        expanded: outcome.nodes,
    });
    cfg.tracer.flush();
    Ok(outcome)
}

/// Picks the engines that get a worker slot and the ones that don't.
///
/// The lineup is first filtered to engines whose registered spec supports
/// the objective; if more remain than the portfolio has threads, the
/// registry's claim order decides who wins a slot (externally registered
/// engines without a better claim keep their lineup position at the back).
/// Whatever falls off is *returned*, not dropped: the caller records it in
/// the trace stream and the outcome's diagnostics.
fn pick_engines(cfg: &SearchConfig, objective: Objective) -> (Vec<Engine>, Vec<Engine>) {
    let lineup = cfg.engines.clone().unwrap_or_else(Engine::default_lineup);
    let (supported, mut skipped): (Vec<Engine>, Vec<Engine>) = lineup
        .into_iter()
        .partition(|e| e.spec().is_some_and(|s| s.supports(objective)));
    let slots = cfg.num_threads.max(1);
    if supported.len() <= slots {
        return (supported, skipped);
    }
    let claim = crate::registry::claim_order();
    let rank = |e: &Engine| claim.iter().position(|c| c == e).unwrap_or(usize::MAX);
    let mut picked = supported;
    picked.sort_by_key(rank);
    let dropped = picked.split_off(slots);
    skipped.extend(dropped);
    (picked, skipped)
}

fn solve_portfolio(problem: &Problem, cfg: &SearchConfig) -> Result<Outcome, HtdError> {
    // Zero wall-clock budget: don't launch engines at all (the watchdog
    // would have to race them down). Return the cheap heuristic incumbent
    // immediately, never claiming exactness.
    if cfg.time_limit.is_some_and(|d| d.is_zero()) {
        return Ok(zero_budget_outcome(problem, cfg));
    }
    let (engines, skipped) = pick_engines(cfg, problem.objective);
    if !skipped.is_empty() {
        registry()
            .counter("htd_engines_skipped_total")
            .add(skipped.len() as u64);
        cfg.tracer.emit_with(|| Event::EnginesSkipped {
            engines: skipped
                .iter()
                .map(|e| e.name())
                .collect::<Vec<_>>()
                .join(","),
            slots: cfg.num_threads.max(1) as u64,
        });
    }
    // resolved once, outside the worker threads: pick_engines only returns
    // engines whose spec is registered
    let specs: Vec<Arc<dyn EngineSpec>> = engines
        .iter()
        .map(|e| e.spec().expect("picked engines are registered"))
        .collect();
    let inc = cfg.incumbent();
    // one cover cache per covering strategy: exact for the searches,
    // greedy for GA/SA fitness (their sizes differ, so they never share).
    // Run-private caches charge the run's memory budget; a caller-shared
    // cache is long-lived and governed by whoever owns it.
    let private_cache = || match &cfg.memory_budget {
        Some(m) => Arc::new(CoverCache::with_budget(Arc::clone(m))),
        None => Arc::new(CoverCache::new()),
    };
    let exact_cache = cfg.cover_cache.clone().unwrap_or_else(private_cache);
    let greedy_cache = private_cache();

    let worker_cfg = SearchConfig {
        shared: Some(Arc::clone(&inc)),
        cover_cache: Some(Arc::clone(&exact_cache)),
        num_threads: 1,
        ..cfg.clone()
    };

    let start = Instant::now();
    let done = AtomicBool::new(false);
    let (cover_h0, cover_m0) = (exact_cache.hits(), exact_cache.misses());
    let reports: Vec<EngineReport> = crossbeam::thread::scope(|scope| {
        // deadline watchdog: engines that only poll the cancel flag at
        // coarse boundaries (GA batches) still stop within ~5ms of it
        if let Some(limit) = cfg.time_limit {
            let inc = &inc;
            let done = &done;
            scope.spawn(move |_| {
                let deadline = start + limit;
                while !done.load(AtomicOrdering::Acquire) && !inc.is_cancelled() {
                    if Instant::now() >= deadline {
                        inc.cancel();
                        registry().counter("htd_deadline_cancellations_total").inc();
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            });
        }
        let handles: Vec<_> = engines
            .iter()
            .zip(&specs)
            .enumerate()
            .map(|(i, (&engine, spec))| {
                let worker_cfg = &worker_cfg;
                let inc = &inc;
                let greedy_cache = &greedy_cache;
                let pool_threads = cfg.num_threads.max(1);
                scope.spawn(move |_| {
                    let mut cfg_i = worker_cfg.clone();
                    cfg_i.seed = worker_cfg.seed.wrapping_add((i as u64) << 40);
                    let who = engine.name();
                    htd_trace::set_worker(who);
                    cfg_i.tracer.emit(Event::WorkerStarted { worker: who });
                    let wstart = Instant::now();
                    // Quarantine: a panicking engine (a bug, or an injected
                    // fault) loses only its own slot — the shared incumbent
                    // keeps every bound it offered before dying, and the
                    // siblings keep searching.
                    let quarantined = htd_resilience::quarantined(|| {
                        if let Some(f) = &cfg_i.fault {
                            if f.take_panic() {
                                panic!("injected fault: worker panic");
                            }
                        }
                        let ctx = EngineContext {
                            problem,
                            cfg: &cfg_i,
                            inc,
                            greedy_cache,
                            pool_threads,
                        };
                        spec.run(&ctx)
                    });
                    let report = match quarantined {
                        Ok(report) => report,
                        Err(message) => {
                            registry().counter("htd_worker_panics_total").inc();
                            cfg_i.tracer.emit_with(|| Event::WorkerPanicked {
                                worker: who,
                                message,
                            });
                            let mut r = panicked_report(engine);
                            r.stats.elapsed = wstart.elapsed();
                            return r;
                        }
                    };
                    // a worker that returns without its own exactness proof
                    // while the run is cancelled was cut short from outside
                    // (deadline watchdog or a sibling's proof)
                    let cancelled = inc.is_cancelled() && !report.exact;
                    cfg_i.tracer.emit_with(|| {
                        let elapsed_us = wstart.elapsed().as_micros() as u64;
                        let upper = (report.upper != u32::MAX).then_some(report.upper);
                        if cancelled {
                            Event::WorkerCancelled {
                                worker: who,
                                lower: report.lower,
                                upper,
                                expanded: report.stats.expanded,
                                elapsed_us,
                            }
                        } else {
                            Event::WorkerFinished {
                                worker: who,
                                lower: report.lower,
                                upper,
                                exact: report.exact,
                                expanded: report.stats.expanded,
                                elapsed_us,
                            }
                        }
                    });
                    report
                })
            })
            .collect();
        // The quarantine above means worker threads never unwind, but a
        // join failure still must not take down the portfolio: a lost
        // slot degrades to a panicked report.
        let reports = engines
            .iter()
            .zip(handles)
            .map(|(&engine, h)| {
                h.join().unwrap_or_else(|_| {
                    registry().counter("htd_worker_panics_total").inc();
                    panicked_report(engine)
                })
            })
            .collect();
        done.store(true, AtomicOrdering::Release);
        reports
    })
    // scope errors only if an unjoined thread (the watchdog) panicked;
    // its work is advisory, so fall back to the incumbent's bounds
    .unwrap_or_default();

    let exact = inc.is_exact() || reports.iter().any(|r| r.exact);
    if exact {
        inc.mark_exact();
    }
    // The degradation marker: the governor truncated at least one
    // engine's search, so a non-exact interval may be looser than the
    // node/time budget alone would have produced.
    let degraded = cfg.memory_budget.as_ref().is_some_and(|m| m.exceeded());
    // this solve's cover-cache traffic (the cache may be shared/long-lived)
    let cover_cache_hits = exact_cache.hits().saturating_sub(cover_h0);
    let cover_cache_misses = exact_cache.misses().saturating_sub(cover_m0);
    if cover_cache_hits + cover_cache_misses > 0 {
        let reg = registry();
        reg.counter("htd_cover_cache_hits_total")
            .add(cover_cache_hits);
        reg.counter("htd_cover_cache_misses_total")
            .add(cover_cache_misses);
        cfg.tracer.emit_with(|| Event::CacheStats {
            cache: "cover_exact",
            hits: cover_cache_hits,
            misses: cover_cache_misses,
            entries: exact_cache.len() as u64,
        });
    }
    let upper = inc.upper();
    Ok(Outcome {
        objective: problem.objective,
        lower: if exact { upper } else { inc.lower().min(upper) },
        upper,
        exact,
        witness: inc.best_order().map(EliminationOrdering::new_unchecked),
        nodes: reports.iter().map(|r| r.stats.expanded).sum(),
        elapsed: start.elapsed(),
        per_engine: reports,
        winner: inc.winner().and_then(Engine::from_name),
        time_to_first_upper: inc.time_to_first_upper(),
        time_to_best_upper: inc.time_to_best_upper(),
        cover_cache_hits,
        cover_cache_misses,
        degraded,
        skipped_engines: skipped,
    })
}

/// The report of a quarantined worker: an empty contribution, flagged.
fn panicked_report(engine: Engine) -> EngineReport {
    EngineReport {
        engine,
        lower: 0,
        upper: u32::MAX,
        exact: false,
        panicked: true,
        stats: SearchStats::default(),
    }
}

/// The `--time 0` fast path: one greedy upper bound (min-fill; greedy
/// covers for ghw — sound and far cheaper than exact ones) plus one
/// lower-bound round, reported as a non-exact anytime interval.
fn zero_budget_outcome(problem: &Problem, cfg: &SearchConfig) -> Outcome {
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let g = problem.graph();
    let ho = htd_heuristics::upper::min_fill(g, &mut rng);
    let (upper, witness) = match problem.objective {
        Objective::Treewidth => (ho.width, Some(ho.ordering)),
        _ => {
            let h = problem.hypergraph().expect("validated");
            let mut ev = GhwEvaluator::new(h, CoverStrategy::Greedy);
            match ev.width(ho.ordering.as_slice()) {
                Some(w) => (w, Some(ho.ordering)),
                None => (u32::MAX, None),
            }
        }
    };
    let lower = match problem.objective {
        Objective::Treewidth => htd_heuristics::combined_lower_bound(g, &mut rng),
        _ => htd_heuristics::ghw_lower_bound(problem.hypergraph().expect("validated"), &mut rng),
    };
    let report = EngineReport {
        engine: Engine::Heuristic,
        lower,
        upper,
        exact: false,
        panicked: false,
        stats: SearchStats {
            generated: 1,
            elapsed: start.elapsed(),
            ..SearchStats::default()
        },
    };
    Outcome {
        objective: problem.objective,
        lower: lower.min(upper),
        upper,
        exact: false,
        witness,
        nodes: 0,
        elapsed: start.elapsed(),
        per_engine: vec![report],
        winner: (upper != u32::MAX).then_some(Engine::Heuristic),
        time_to_first_upper: None,
        time_to_best_upper: None,
        cover_cache_hits: 0,
        cover_cache_misses: 0,
        degraded: false,
        skipped_engines: Vec::new(),
    }
}

/// A fresh, empty report for `engine`.
pub(crate) fn blank_report(engine: Engine) -> EngineReport {
    EngineReport {
        engine,
        lower: 0,
        upper: u32::MAX,
        exact: false,
        panicked: false,
        stats: SearchStats::default(),
    }
}

// ---------------------------------------------------------------------
// Built-in engine runners. These are the `run` entries of the registry's
// builtin table (`crate::registry`): the portfolio never matches on an
// engine, it just calls the registered spec.

/// Branch and bound (tw or ghw by the problem's objective).
pub(crate) fn run_branch_bound_spec(ctx: &EngineContext<'_>) -> EngineReport {
    let start = Instant::now();
    let out = match ctx.problem.objective {
        Objective::GeneralizedHypertreeWidth => {
            crate::bb_ghw::bb_ghw(ctx.problem.hypergraph().expect("validated"), ctx.cfg)
                .expect("validated: coverable")
        }
        _ => crate::bb_tw::bb_tw(ctx.problem.graph(), ctx.cfg),
    };
    let mut report = blank_report(Engine::BranchBound);
    report.lower = out.lower;
    report.upper = out.upper;
    report.exact = out.exact;
    report.stats = out.stats;
    report.stats.elapsed = start.elapsed();
    report
}

/// A* (tw or ghw by the problem's objective).
pub(crate) fn run_astar_spec(ctx: &EngineContext<'_>) -> EngineReport {
    let start = Instant::now();
    let out = match ctx.problem.objective {
        Objective::GeneralizedHypertreeWidth => {
            crate::astar_ghw::astar_ghw(ctx.problem.hypergraph().expect("validated"), ctx.cfg)
                .expect("validated: coverable")
        }
        _ => crate::astar_tw::astar_tw(ctx.problem.graph(), ctx.cfg),
    };
    let mut report = blank_report(Engine::AStar);
    report.lower = out.lower;
    report.upper = out.upper;
    report.exact = out.exact;
    report.stats = out.stats;
    report.stats.elapsed = start.elapsed();
    report
}

/// Greedy + ILS upper-bound worker.
pub(crate) fn run_heuristic_spec(ctx: &EngineContext<'_>) -> EngineReport {
    let start = Instant::now();
    let mut report = blank_report(Engine::Heuristic);
    run_heuristic(ctx.problem, ctx.cfg, ctx.inc, &mut report);
    report.stats.elapsed = start.elapsed();
    report
}

/// Dedicated lower-bound worker.
pub(crate) fn run_lower_bound_spec(ctx: &EngineContext<'_>) -> EngineReport {
    let start = Instant::now();
    let mut report = blank_report(Engine::LowerBound);
    run_lower_bound(ctx.problem, ctx.cfg, ctx.inc, &mut report);
    report.stats.elapsed = start.elapsed();
    report
}

/// GA upper-bound worker.
pub(crate) fn run_genetic_spec(ctx: &EngineContext<'_>) -> EngineReport {
    let start = Instant::now();
    let mut report = blank_report(Engine::Genetic);
    run_genetic(ctx.problem, ctx.cfg, ctx.inc, ctx.greedy_cache, &mut report);
    report.stats.elapsed = start.elapsed();
    report
}

/// SA upper-bound worker.
pub(crate) fn run_annealing_spec(ctx: &EngineContext<'_>) -> EngineReport {
    let start = Instant::now();
    let mut report = blank_report(Engine::Annealing);
    run_annealing(ctx.problem, ctx.cfg, ctx.inc, &mut report);
    report.stats.elapsed = start.elapsed();
    report
}

/// Upper-bound heuristics: greedy orderings, then iterated local search
/// rounds with fresh seeds, each offered to the incumbent.
fn run_heuristic(
    problem: &Problem,
    cfg: &SearchConfig,
    inc: &Arc<Incumbent>,
    report: &mut EngineReport,
) {
    use htd_heuristics::{improve_ordering_until, upper, IlsParams};
    let g = problem.graph();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let ghw_ev = || {
        let h = problem.hypergraph().expect("validated");
        GhwEvaluator::with_cache(
            h,
            CoverStrategy::Exact,
            cfg.cover_cache
                .clone()
                .unwrap_or_else(|| Arc::new(CoverCache::new())),
        )
    };
    let offer = |ordering: &EliminationOrdering,
                 tw_width: u32,
                 ev: &mut Option<GhwEvaluator>,
                 report: &mut EngineReport| {
        let width = match problem.objective {
            Objective::Treewidth => tw_width,
            _ => match ev
                .as_mut()
                .expect("ghw evaluator")
                .width(ordering.as_slice())
            {
                Some(w) => w,
                None => return,
            },
        };
        report.upper = report.upper.min(width);
        offer_traced(inc, &cfg.tracer, "heuristic", width, ordering.as_slice());
        report.stats.generated += 1;
    };
    let mut ev = (problem.objective != Objective::Treewidth).then(ghw_ev);
    let seeds: Vec<_> = [
        upper::min_fill(g, &mut rng),
        upper::min_degree(g, &mut rng),
        upper::max_cardinality_search(g, &mut rng),
    ]
    .into_iter()
    .collect();
    for ho in &seeds {
        offer(&ho.ordering, ho.width, &mut ev, report);
    }
    // ILS rounds (treewidth only — the ILS objective is bag size): keep
    // improving from the greedy seeds until cancelled or out of rounds
    if problem.objective == Objective::Treewidth {
        let params = IlsParams::default();
        for round in 0..8u64 {
            if inc.is_cancelled() {
                break;
            }
            if round > 0 {
                cfg.tracer.emit(Event::RestartTriggered {
                    worker: "heuristic",
                    round: round as u32,
                });
            }
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ (round << 16) | 1);
            let start = &seeds[(round as usize) % seeds.len()].ordering;
            // a single ILS pass can outlast the deadline on dense graphs,
            // so the cancel flag is polled inside the pass, not just here
            let (ordering, width) =
                improve_ordering_until(g, start, &params, &|| inc.is_cancelled(), &mut rng);
            offer(&ordering, width, &mut ev, report);
        }
    }
}

/// Lower-bound worker: randomized minor-based bounds over several seeds.
fn run_lower_bound(
    problem: &Problem,
    cfg: &SearchConfig,
    inc: &Arc<Incumbent>,
    report: &mut EngineReport,
) {
    for round in 0..4u64 {
        if inc.is_cancelled() {
            break;
        }
        if round > 0 {
            cfg.tracer.emit(Event::RestartTriggered {
                worker: "lower_bound",
                round: round as u32,
            });
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ (round << 8) | 3);
        let lb = match problem.objective {
            Objective::Treewidth => htd_heuristics::combined_lower_bound(problem.graph(), &mut rng),
            _ => {
                htd_heuristics::ghw_lower_bound(problem.hypergraph().expect("validated"), &mut rng)
            }
        };
        report.lower = report.lower.max(lb);
        raise_traced(inc, &cfg.tracer, "lower_bound", lb);
        report.stats.generated += 1;
    }
}

/// GA worker: small-generation batches with fresh seeds, each batch's best
/// offered to the incumbent, until cancelled or out of batches.
fn run_genetic(
    problem: &Problem,
    cfg: &SearchConfig,
    inc: &Arc<Incumbent>,
    greedy_cache: &Arc<CoverCache>,
    report: &mut EngineReport,
) {
    let params = GaParams {
        population: 48,
        generations: 30,
        ..GaParams::default()
    };
    for batch in 0..16u64 {
        if inc.is_cancelled() {
            break;
        }
        if batch > 0 {
            cfg.tracer.emit(Event::RestartTriggered {
                worker: "genetic",
                round: batch as u32,
            });
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ (batch << 24) | 5);
        match problem.objective {
            Objective::Treewidth => {
                let r = htd_ga::ga_tw(problem.graph(), &params, &mut rng);
                report.upper = report.upper.min(r.width);
                offer_traced(inc, &cfg.tracer, "genetic", r.width, r.ordering.as_slice());
                report.stats.generated += r.inner.evaluations;
            }
            _ => {
                let h = problem.hypergraph().expect("validated");
                // greedy covers: still sound upper bounds, far cheaper
                if let Some(r) = htd_ga::ga_ghw_cached(
                    h,
                    &params,
                    CoverStrategy::Greedy,
                    Arc::clone(greedy_cache),
                    &mut rng,
                ) {
                    report.upper = report.upper.min(r.width);
                    offer_traced(inc, &cfg.tracer, "genetic", r.width, r.ordering.as_slice());
                    report.stats.generated += r.inner.evaluations;
                }
            }
        }
    }
}

/// SA worker: a few annealing runs with fresh seeds.
fn run_annealing(
    problem: &Problem,
    cfg: &SearchConfig,
    inc: &Arc<Incumbent>,
    report: &mut EngineReport,
) {
    let params = SaParams::default();
    for round in 0..8u64 {
        if inc.is_cancelled() {
            break;
        }
        if round > 0 {
            cfg.tracer.emit(Event::RestartTriggered {
                worker: "annealing",
                round: round as u32,
            });
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ (round << 32) | 7);
        match problem.objective {
            Objective::Treewidth => {
                let (ordering, width) = htd_ga::sa::sa_tw(problem.graph(), &params, &mut rng);
                report.upper = report.upper.min(width);
                offer_traced(inc, &cfg.tracer, "annealing", width, ordering.as_slice());
            }
            _ => {
                let h = problem.hypergraph().expect("validated");
                if let Some((ordering, width)) = htd_ga::sa::sa_ghw(h, &params, &mut rng) {
                    report.upper = report.upper.min(width);
                    offer_traced(inc, &cfg.tracer, "annealing", width, ordering.as_slice());
                }
            }
        }
        report.stats.generated += 1;
    }
}

/// `hw` runs det-k-decomp sequentially (its witness is a decomposition
/// tree, not an ordering, and it has no anytime interior). The ghw lower
/// bound primes the iteration since `ghw ≤ hw`.
fn solve_hw(problem: &Problem, cfg: &SearchConfig) -> Result<Outcome, HtdError> {
    let h = problem.hypergraph().expect("validated");
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let lb = if h.num_vertices() == 0 {
        0
    } else {
        htd_heuristics::ghw_lower_bound(h, &mut rng).max(1)
    };
    let (width, _hd) = crate::detk::hypertree_width(h, lb)
        .ok_or_else(|| HtdError::Invalid("no hypertree decomposition exists".into()))?;
    Ok(Outcome {
        objective: Objective::HypertreeWidth,
        lower: width,
        upper: width,
        exact: true,
        witness: None,
        nodes: 0,
        elapsed: start.elapsed(),
        per_engine: vec![EngineReport {
            engine: Engine::BranchBound,
            lower: width,
            upper: width,
            exact: true,
            panicked: false,
            stats: SearchStats::default(),
        }],
        winner: None,
        time_to_first_upper: None,
        time_to_best_upper: None,
        cover_cache_hits: 0,
        cover_cache_misses: 0,
        degraded: false,
        skipped_engines: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use htd_core::ordering::TwEvaluator;
    use htd_hypergraph::gen;

    #[test]
    fn tw_sequential_matches_bb() {
        let g = gen::grid_graph(4, 4);
        let out = solve(&Problem::treewidth(g.clone()), &SearchConfig::default()).unwrap();
        assert_eq!(out.exact_width(), Some(4));
        let mut ev = TwEvaluator::new(&g);
        assert!(ev.width(out.witness.unwrap().as_slice()) <= 4);
    }

    #[test]
    fn tw_portfolio_agrees_with_sequential() {
        for seed in 0..4u64 {
            let g = gen::random_gnp(10, 0.35, seed);
            let seq = solve(&Problem::treewidth(g.clone()), &SearchConfig::default()).unwrap();
            let par = solve(
                &Problem::treewidth(g.clone()),
                &SearchConfig::default().with_threads(4),
            )
            .unwrap();
            assert!(par.exact, "seed {seed}");
            assert_eq!(par.upper, seq.upper, "seed {seed}");
            assert!(!par.per_engine.is_empty());
        }
    }

    #[test]
    fn ghw_portfolio_agrees_with_sequential() {
        let th = Hypergraph::new(6, vec![vec![0, 1, 2], vec![0, 4, 5], vec![2, 3, 4]]);
        let seq = solve(&Problem::ghw(th.clone()), &SearchConfig::default()).unwrap();
        let par = solve(&Problem::ghw(th), &SearchConfig::default().with_threads(4)).unwrap();
        assert_eq!(seq.exact_width(), Some(2));
        assert_eq!(par.exact_width(), Some(2));
    }

    #[test]
    fn hw_solves_exactly() {
        let c = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![2, 0]]);
        let out = solve(&Problem::hw(c), &SearchConfig::default()).unwrap();
        assert_eq!(out.exact_width(), Some(2));
        assert!(out.witness.is_none());
    }

    #[test]
    fn uncoverable_is_invalid() {
        let h = Hypergraph::new(3, vec![vec![0, 1]]);
        let err = solve(&Problem::ghw(h), &SearchConfig::default()).unwrap_err();
        assert!(matches!(err, HtdError::Invalid(_)));
    }

    #[test]
    fn outcome_round_trips_through_json() {
        let g = gen::queen_graph(4);
        let out = solve(
            &Problem::treewidth(g),
            &SearchConfig::default().with_threads(2),
        )
        .unwrap();
        let doc = out.to_json().to_string();
        let back = Outcome::from_json(&Json::parse(&doc).unwrap()).unwrap();
        assert_eq!(back.lower, out.lower);
        assert_eq!(back.upper, out.upper);
        assert_eq!(back.exact, out.exact);
        assert_eq!(
            back.witness.map(|w| w.into_vec()),
            out.witness.map(|w| w.into_vec())
        );
        assert_eq!(back.per_engine.len(), out.per_engine.len());
        for (a, b) in back.per_engine.iter().zip(&out.per_engine) {
            assert_eq!(a.engine, b.engine);
            assert_eq!(a.stats.expanded, b.stats.expanded);
        }
    }

    #[test]
    fn zero_time_budget_returns_heuristic_incumbent_immediately() {
        let g = gen::queen_graph(6);
        let started = std::time::Instant::now();
        let out = solve(
            &Problem::treewidth(g.clone()),
            &SearchConfig::default().with_time_limit(Duration::from_millis(0)),
        )
        .unwrap();
        // immediately = no engines launched, just greedy bounds; generous
        // wall-clock guard so the test never flakes under load
        assert!(started.elapsed() < Duration::from_secs(5));
        assert!(!out.exact, "zero budget must never claim exactness");
        assert!(out.upper < u32::MAX, "heuristic incumbent present");
        assert!(out.lower <= out.upper);
        assert!(out.witness.is_some());
        assert_eq!(out.nodes, 0, "no search nodes under a zero budget");
        // same contract for ghw, with greedy covers
        let th = Hypergraph::new(6, vec![vec![0, 1, 2], vec![0, 4, 5], vec![2, 3, 4]]);
        let out = solve(
            &Problem::ghw(th),
            &SearchConfig::default()
                .with_time_limit(Duration::from_millis(0))
                .with_threads(4),
        )
        .unwrap();
        assert!(!out.exact);
        assert!(out.upper < u32::MAX);
        assert!(out.lower <= out.upper);
    }

    #[test]
    fn injected_worker_panic_is_quarantined() {
        use htd_resilience::InjectedFaults;
        let g = gen::random_gnp(10, 0.35, 3);
        let out = solve(
            &Problem::treewidth(g.clone()),
            &SearchConfig::default()
                .with_threads(4)
                .with_faults(InjectedFaults::with_panics(1)),
        )
        .unwrap();
        assert_eq!(
            out.per_engine.iter().filter(|r| r.panicked).count(),
            1,
            "exactly one worker claims the injected panic"
        );
        // the survivors still close the gap on a 10-vertex instance
        let clean = solve(&Problem::treewidth(g), &SearchConfig::default()).unwrap();
        assert!(out.exact, "portfolio survives a quarantined worker");
        assert_eq!(out.upper, clean.upper);
        // panicked engines round-trip through JSON
        let doc = out.to_json().to_string();
        let back = Outcome::from_json(&Json::parse(&doc).unwrap()).unwrap();
        assert_eq!(back.per_engine.iter().filter(|r| r.panicked).count(), 1);
    }

    #[test]
    fn exhausted_memory_budget_degrades_but_stays_sound() {
        let g = gen::queen_graph(5);
        // a budget far below what A*'s open/closed sets need
        let cfg = SearchConfig::default()
            .with_threads(2)
            .with_engines(vec![Engine::Heuristic, Engine::AStar])
            .with_memory_budget(2_000);
        let out = solve(&Problem::treewidth(g.clone()), &cfg).unwrap();
        assert!(out.degraded, "tiny budget must mark the outcome degraded");
        assert!(out.lower <= out.upper);
        let clean = solve(&Problem::treewidth(g), &SearchConfig::default()).unwrap();
        assert!(out.lower <= clean.upper && out.upper >= clean.upper);
        // degraded flag round-trips
        let doc = out.to_json().to_string();
        let back = Outcome::from_json(&Json::parse(&doc).unwrap()).unwrap();
        assert!(back.degraded);
        // a generous budget does not degrade
        let roomy = solve(
            &Problem::treewidth(gen::cycle_graph(8)),
            &SearchConfig::default().with_memory_budget(1 << 30),
        )
        .unwrap();
        assert!(!roomy.degraded);
        assert!(roomy.exact);
    }

    #[test]
    fn engine_selection_is_honored() {
        let g = gen::cycle_graph(8);
        let out = solve(
            &Problem::treewidth(g),
            &SearchConfig::default()
                .with_threads(2)
                .with_engines(vec![Engine::Heuristic, Engine::LowerBound]),
        )
        .unwrap();
        assert_eq!(out.per_engine.len(), 2);
        assert!(out.lower <= 2 && out.upper >= 2);
    }
}
