//! Shared search configuration, budgets and outcome reporting.

use std::time::{Duration, Instant};

use htd_core::ordering::EliminationOrdering;

/// Toggles and budgets shared by all four searches.
///
/// The pruning toggles exist both because they are the thesis's knobs and
/// because the ablation benches measure each rule's contribution.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// Maximum number of expanded nodes before giving up (anytime result).
    pub max_nodes: u64,
    /// Optional wall-clock limit.
    pub time_limit: Option<Duration>,
    /// Apply pruning rule 2 (adjacent-swap symmetry breaking, §4.4.5).
    pub use_pr2: bool,
    /// Apply simplicial / strongly-almost-simplicial reductions (§4.4.3).
    pub use_reductions: bool,
    /// A* only: detect duplicate eliminated-vertex sets and keep the best.
    pub use_duplicate_detection: bool,
    /// Seed for the randomized bound heuristics.
    pub seed: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            max_nodes: 10_000_000,
            time_limit: None,
            use_pr2: true,
            use_reductions: true,
            use_duplicate_detection: true,
            seed: 0x5EED,
        }
    }
}

impl SearchConfig {
    /// A configuration with a small node budget, for quick anytime runs.
    pub fn budgeted(max_nodes: u64) -> Self {
        SearchConfig {
            max_nodes,
            ..SearchConfig::default()
        }
    }

    /// Disables every optional pruning rule (for ablations / baselines).
    pub fn without_pruning(mut self) -> Self {
        self.use_pr2 = false;
        self.use_reductions = false;
        self.use_duplicate_detection = false;
        self
    }
}

/// Counters reported by every search.
#[derive(Clone, Debug, Default)]
pub struct SearchStats {
    /// Nodes expanded (states visited).
    pub expanded: u64,
    /// Nodes generated (states evaluated and queued/recursed).
    pub generated: u64,
    /// Nodes discarded by pruning rules.
    pub pruned: u64,
    /// Peak size of the A* priority queue (0 for depth-first searches).
    pub max_queue: usize,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

/// The anytime result of a search: a certified interval on the width.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// Proven lower bound.
    pub lower: u32,
    /// Achieved upper bound (a decomposition of this width exists).
    pub upper: u32,
    /// `true` iff `lower == upper` was proven before the budget ran out.
    pub exact: bool,
    /// An ordering achieving `upper`, when one was constructed.
    pub ordering: Option<EliminationOrdering>,
    /// Search counters.
    pub stats: SearchStats,
}

impl SearchOutcome {
    /// The width if proven exact.
    pub fn exact_width(&self) -> Option<u32> {
        self.exact.then_some(self.upper)
    }
}

/// Internal deadline/budget tracker.
#[derive(Debug)]
pub(crate) struct Budget {
    start: Instant,
    deadline: Option<Instant>,
    max_nodes: u64,
    pub(crate) expanded: u64,
}

impl Budget {
    pub(crate) fn new(cfg: &SearchConfig) -> Self {
        let start = Instant::now();
        Budget {
            start,
            deadline: cfg.time_limit.map(|d| start + d),
            max_nodes: cfg.max_nodes,
            expanded: 0,
        }
    }

    /// Counts one expansion; `true` while within budget. The time check is
    /// amortized (every 256 expansions).
    #[inline]
    pub(crate) fn tick(&mut self) -> bool {
        self.expanded += 1;
        if self.expanded > self.max_nodes {
            return false;
        }
        if self.expanded & 0xFF == 0 {
            if let Some(d) = self.deadline {
                if Instant::now() > d {
                    return false;
                }
            }
        }
        true
    }

    pub(crate) fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_node_limit() {
        let cfg = SearchConfig::budgeted(3);
        let mut b = Budget::new(&cfg);
        assert!(b.tick());
        assert!(b.tick());
        assert!(b.tick());
        assert!(!b.tick());
    }

    #[test]
    fn budget_time_limit() {
        let cfg = SearchConfig {
            time_limit: Some(Duration::from_millis(0)),
            ..SearchConfig::default()
        };
        let mut b = Budget::new(&cfg);
        // the amortized check fires at expansion 256
        let mut stopped = false;
        for _ in 0..1000 {
            if !b.tick() {
                stopped = true;
                break;
            }
        }
        assert!(stopped);
    }

    #[test]
    fn without_pruning_clears_toggles() {
        let cfg = SearchConfig::default().without_pruning();
        assert!(!cfg.use_pr2 && !cfg.use_reductions && !cfg.use_duplicate_detection);
    }
}
