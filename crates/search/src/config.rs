//! Shared search configuration, budgets and outcome reporting.

use std::sync::Arc;
use std::time::{Duration, Instant};

use htd_core::ordering::EliminationOrdering;
use htd_resilience::{InjectedFaults, MemoryBudget};
use htd_setcover::CoverCache;
use htd_trace::{metrics::Counter, registry, Event, Tracer};

use crate::incumbent::Incumbent;

// The engines a portfolio run may launch now live in the open registry;
// the handle is re-exported here so `htd_search::config::Engine` (and the
// crate-root re-export) keep resolving for existing callers.
pub use crate::registry::Engine;

/// Toggles and budgets shared by all searches.
///
/// The pruning toggles exist both because they are the thesis's knobs and
/// because the ablation benches measure each rule's contribution.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// Maximum number of expanded nodes before giving up (anytime result).
    pub max_nodes: u64,
    /// Optional wall-clock limit.
    pub time_limit: Option<Duration>,
    /// Apply pruning rule 2 (adjacent-swap symmetry breaking, §4.4.5).
    pub use_pr2: bool,
    /// Apply simplicial / strongly-almost-simplicial reductions (§4.4.3).
    pub use_reductions: bool,
    /// A* only: detect duplicate eliminated-vertex sets and keep the best.
    pub use_duplicate_detection: bool,
    /// Seed for the randomized bound heuristics.
    pub seed: u64,
    /// Worker threads for portfolio / parallel runs (1 = sequential).
    pub num_threads: usize,
    /// Engines the portfolio launches; `None` = the default lineup.
    pub engines: Option<Vec<Engine>>,
    /// Shared bounds + cancellation. Engines given the same incumbent
    /// prune against each other's bounds; `None` = a private incumbent.
    pub shared: Option<Arc<Incumbent>>,
    /// Shared bag → exact-cover-size memo for ghw evaluations; `None` = a
    /// private memo per engine.
    pub cover_cache: Option<Arc<CoverCache>>,
    /// Event tracer. Defaults to the disabled tracer, whose emit path is
    /// a single branch — instrumentation is always compiled in.
    pub tracer: Arc<Tracer>,
    /// Shared memory budget for the memory-hungry structures (A* open /
    /// closed sets, Held–Karp tables, the cover cache). `None` = no
    /// governor. Once exceeded, anytime engines return their best bounds
    /// (a *degraded* outcome) and all-or-nothing engines refuse upfront
    /// with `HtdError::ResourceExhausted`.
    pub memory_budget: Option<Arc<MemoryBudget>>,
    /// Fault-injection trigger: portfolio workers that claim a pending
    /// fault panic inside their quarantined region. Test/chaos only;
    /// `None` (the default) everywhere else.
    pub fault: Option<Arc<InjectedFaults>>,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            max_nodes: 10_000_000,
            time_limit: None,
            use_pr2: true,
            use_reductions: true,
            use_duplicate_detection: true,
            seed: 0x5EED,
            num_threads: 1,
            engines: None,
            shared: None,
            cover_cache: None,
            tracer: Tracer::disabled(),
            memory_budget: None,
            fault: None,
        }
    }
}

impl SearchConfig {
    /// A configuration with a small node budget, for quick anytime runs.
    pub fn budgeted(max_nodes: u64) -> Self {
        SearchConfig {
            max_nodes,
            ..SearchConfig::default()
        }
    }

    /// The default portfolio preset: every engine, one worker per
    /// available core (capped at 8 — the lineup isn't longer).
    pub fn portfolio() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(4);
        SearchConfig::default().with_threads(threads)
    }

    /// Sets the wall-clock limit.
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Sets the node budget.
    pub fn with_max_nodes(mut self, max_nodes: u64) -> Self {
        self.max_nodes = max_nodes;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread count for portfolio / parallel runs.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.num_threads = threads.max(1);
        self
    }

    /// Restricts the portfolio to the given engines.
    pub fn with_engines(mut self, engines: Vec<Engine>) -> Self {
        self.engines = Some(engines);
        self
    }

    /// Attaches an event tracer (see `htd_trace::Tracer::new`).
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = tracer;
        self
    }

    /// Caps the run's tracked memory at `bytes` (a fresh shared budget).
    pub fn with_memory_budget(mut self, bytes: u64) -> Self {
        self.memory_budget = Some(MemoryBudget::new(bytes));
        self
    }

    /// Arms fault injection: workers that claim a pending fault panic.
    pub fn with_faults(mut self, faults: Arc<InjectedFaults>) -> Self {
        self.fault = Some(faults);
        self
    }

    /// Disables every optional pruning rule (for ablations / baselines).
    pub fn without_pruning(mut self) -> Self {
        self.use_pr2 = false;
        self.use_reductions = false;
        self.use_duplicate_detection = false;
        self
    }

    /// The incumbent this run publishes to: the shared one if set, else a
    /// fresh private one. Engines always work against an incumbent, so the
    /// sequential and portfolio code paths are identical.
    pub(crate) fn incumbent(&self) -> Arc<Incumbent> {
        self.shared
            .clone()
            .unwrap_or_else(|| Arc::new(Incumbent::new()))
    }
}

/// Counters reported by every search.
#[derive(Clone, Debug, Default)]
pub struct SearchStats {
    /// Nodes expanded (states visited).
    pub expanded: u64,
    /// Nodes generated (states evaluated and queued/recursed).
    pub generated: u64,
    /// Nodes discarded by pruning rules.
    pub pruned: u64,
    /// Peak size of the A* priority queue (0 for depth-first searches).
    pub max_queue: usize,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

/// The anytime result of a search: a certified interval on the width.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// Proven lower bound.
    pub lower: u32,
    /// Achieved upper bound (a decomposition of this width exists).
    pub upper: u32,
    /// `true` iff `lower == upper` was proven before the budget ran out.
    pub exact: bool,
    /// An ordering achieving `upper`, when one was constructed.
    pub ordering: Option<EliminationOrdering>,
    /// Search counters.
    pub stats: SearchStats,
}

impl SearchOutcome {
    /// The width if proven exact.
    pub fn exact_width(&self) -> Option<u32> {
        self.exact.then_some(self.upper)
    }
}

/// Expansions are reported to the metric registry and trace stream in
/// batches of this size, so the per-tick overhead is a local increment.
const EXPANSION_BATCH: u64 = 4096;

/// Internal deadline/budget tracker.
///
/// Also the cancellation observer: when the run has a shared incumbent,
/// every tick checks its flag, so a worker stops within one node expansion
/// of another worker's exact proof (or the portfolio's deadline).
///
/// And the expansion reporter: every [`EXPANSION_BATCH`] ticks it adds the
/// batch to the global expansion counters and (when tracing) emits one
/// `NodeExpanded` event; `Drop` flushes the remainder, so totals are exact
/// however the search exits.
#[derive(Debug)]
pub(crate) struct Budget {
    start: Instant,
    deadline: Option<Instant>,
    max_nodes: u64,
    cancel: Option<Arc<Incumbent>>,
    mem: Option<Arc<MemoryBudget>>,
    mem_abort_reported: bool,
    pub(crate) expanded: u64,
    flushed: u64,
    label: &'static str,
    tracer: Arc<Tracer>,
    total_counter: &'static Counter,
    engine_counter: &'static Counter,
}

impl Budget {
    pub(crate) fn new(cfg: &SearchConfig, label: &'static str) -> Self {
        let start = Instant::now();
        Budget {
            start,
            deadline: cfg.time_limit.map(|d| start + d),
            max_nodes: cfg.max_nodes,
            cancel: cfg.shared.clone(),
            mem: cfg.memory_budget.clone(),
            mem_abort_reported: false,
            expanded: 0,
            flushed: 0,
            label,
            tracer: Arc::clone(&cfg.tracer),
            // Resolved once here; each flush is then two relaxed adds.
            total_counter: registry().counter("htd_solver_expansions_total"),
            engine_counter: registry().labeled_counter("htd_solver_expansions", "engine", label),
        }
    }

    /// Counts one expansion; `true` while within budget and not cancelled.
    /// The time check is amortized (every 256 expansions); the cancel check
    /// is a single relaxed load and runs every tick.
    #[inline]
    pub(crate) fn tick(&mut self) -> bool {
        self.expanded += 1;
        if self.expanded & (EXPANSION_BATCH - 1) == 0 {
            self.flush_expansions();
        }
        if self.expanded > self.max_nodes {
            return false;
        }
        if let Some(inc) = &self.cancel {
            if inc.is_cancelled() {
                return false;
            }
        }
        if let Some(m) = &self.mem {
            if m.exceeded() {
                self.report_mem_abort();
                return false;
            }
        }
        if self.expanded & 0xFF == 0 {
            if let Some(d) = self.deadline {
                if Instant::now() > d {
                    return false;
                }
            }
        }
        true
    }

    /// Charges `bytes` of retained search state (an open-queue node, a
    /// `seen`-map entry, a DP row) against the shared memory budget.
    /// `true` while within budget — or always, when no budget is set.
    /// A failed charge makes every subsequent [`Budget::tick`] fail, so
    /// engines that only check `tick` still degrade promptly.
    #[inline]
    pub(crate) fn charge(&mut self, bytes: u64) -> bool {
        match &self.mem {
            None => true,
            Some(m) => {
                if m.charge(bytes) {
                    true
                } else {
                    self.report_mem_abort();
                    false
                }
            }
        }
    }

    /// `true` once the shared memory budget has been exceeded — the
    /// engine's result is degraded (bounds are valid; exactness is not
    /// claimable from an exhausted search).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn mem_exceeded(&self) -> bool {
        self.mem.as_ref().is_some_and(|m| m.exceeded())
    }

    /// Counts the budget abort once per engine, however often the
    /// exceeded latch is observed afterwards.
    #[cold]
    fn report_mem_abort(&mut self) {
        if self.mem_abort_reported {
            return;
        }
        self.mem_abort_reported = true;
        registry().counter("htd_mem_budget_aborts_total").add(1);
    }

    #[cold]
    fn flush_expansions(&mut self) {
        let batch = self.expanded - self.flushed;
        if batch == 0 {
            return;
        }
        self.flushed = self.expanded;
        self.total_counter.add(batch);
        self.engine_counter.add(batch);
        let label = self.label;
        self.tracer.emit_with(|| Event::NodeExpanded {
            worker: label,
            count: batch,
        });
    }

    pub(crate) fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Drop for Budget {
    fn drop(&mut self) {
        self.flush_expansions();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_node_limit() {
        let cfg = SearchConfig::budgeted(3);
        let mut b = Budget::new(&cfg, "test");
        assert!(b.tick());
        assert!(b.tick());
        assert!(b.tick());
        assert!(!b.tick());
    }

    #[test]
    fn budget_time_limit() {
        let cfg = SearchConfig::default().with_time_limit(Duration::from_millis(0));
        let mut b = Budget::new(&cfg, "test");
        // the amortized check fires at expansion 256
        let mut stopped = false;
        for _ in 0..1000 {
            if !b.tick() {
                stopped = true;
                break;
            }
        }
        assert!(stopped);
    }

    #[test]
    fn budget_observes_cancellation() {
        let inc = Arc::new(Incumbent::new());
        let cfg = SearchConfig {
            shared: Some(Arc::clone(&inc)),
            ..SearchConfig::default()
        };
        let mut b = Budget::new(&cfg, "test");
        assert!(b.tick());
        inc.cancel();
        assert!(!b.tick(), "cancel observed on the very next tick");
    }

    #[test]
    fn memory_budget_failure_degrades_ticks() {
        let cfg = SearchConfig::default().with_memory_budget(100);
        let mut b = Budget::new(&cfg, "test");
        assert!(b.charge(60));
        assert!(b.tick());
        assert!(!b.charge(60), "160 > 100");
        assert!(b.mem_exceeded());
        assert!(!b.tick(), "exceeded budget fails every later tick");
        // no budget configured: charges are free
        let mut free = Budget::new(&SearchConfig::default(), "test");
        assert!(free.charge(u64::MAX));
        assert!(!free.mem_exceeded());
    }

    #[test]
    fn without_pruning_clears_toggles() {
        let cfg = SearchConfig::default().without_pruning();
        assert!(!cfg.use_pr2 && !cfg.use_reductions && !cfg.use_duplicate_detection);
    }

    #[test]
    fn builders_compose() {
        let cfg = SearchConfig::budgeted(100)
            .with_time_limit(Duration::from_secs(1))
            .with_seed(7)
            .with_threads(3);
        assert_eq!(cfg.max_nodes, 100);
        assert_eq!(cfg.time_limit, Some(Duration::from_secs(1)));
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.num_threads, 3);
        assert!(SearchConfig::portfolio().num_threads >= 1);
        assert_eq!(cfg.with_threads(0).num_threads, 1);
    }
}
