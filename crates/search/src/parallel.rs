//! Parallel branch and bound for treewidth.
//!
//! The depth-first search of [`bb_tw`](crate::bb_tw) parallelizes at the
//! root: each first-eliminated vertex spawns an independent subtree, and
//! all workers share one [`Incumbent`], so a good solution found by one
//! immediately tightens every other worker's pruning. Workers never block
//! each other (the ordering behind the incumbent is guarded separately
//! from the atomic bound), so this is the textbook shared-bound parallel
//! B&B — and the same `Incumbent` type the portfolio solver uses across
//! heterogeneous engines.

use std::sync::Arc;

use htd_core::ordering::{EliminationOrdering, TwEvaluator};
use htd_heuristics::{lower::minor_min_width, reduce, upper::min_fill};
use htd_hypergraph::{EliminationGraph, Graph, Vertex};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::bb_tw::alive_graph;
use crate::config::{Budget, SearchConfig, SearchOutcome, SearchStats};
use crate::incumbent::{offer_traced, raise_traced, Incumbent};

const WHO: &str = "parallel_bb";

/// Parallel BB-tw across `threads` workers. Semantics match
/// [`bb_tw`](crate::bb_tw): exact within budget (the node budget applies
/// per worker), anytime bounds otherwise. The PR2 toggle is ignored here —
/// its sibling-branch bookkeeping does not cross worker boundaries — so
/// workers prune with PR1, reductions and the shared incumbent only.
pub fn bb_tw_parallel(g: &Graph, cfg: &SearchConfig, threads: usize) -> SearchOutcome {
    let n = g.num_vertices();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    if n == 0 || threads <= 1 {
        return crate::bb_tw::bb_tw(g, cfg);
    }
    let inc = cfg.incumbent();
    let lb0 = htd_heuristics::combined_lower_bound(g, &mut rng);
    let h0 = min_fill(g, &mut rng);
    offer_traced(&inc, &cfg.tracer, WHO, h0.width, h0.ordering.as_slice());
    raise_traced(&inc, &cfg.tracer, WHO, lb0);
    if lb0 >= inc.upper() {
        let upper = inc.upper();
        inc.mark_exact();
        return SearchOutcome {
            lower: upper,
            upper,
            exact: true,
            ordering: inc.best_order().map(EliminationOrdering::new_unchecked),
            stats: SearchStats::default(),
        };
    }

    // each worker's budget must observe the shared incumbent's cancel flag
    let worker_cfg = SearchConfig {
        shared: Some(Arc::clone(&inc)),
        ..cfg.clone()
    };

    // root children: reduction-forced single child or all vertices
    let base = EliminationGraph::new(g);
    let roots: Vec<Vertex> = if cfg.use_reductions {
        match reduce::find_reducible(&base, lb0) {
            Some(v) => vec![v],
            None => (0..n).collect(),
        }
    } else {
        (0..n).collect()
    };
    // round-robin chunks so heavy subtrees spread across workers
    let chunks: Vec<Vec<Vertex>> = (0..threads)
        .map(|t| {
            roots
                .iter()
                .copied()
                .skip(t)
                .step_by(threads)
                .collect::<Vec<_>>()
        })
        .filter(|c| !c.is_empty())
        .collect();

    let start = std::time::Instant::now();
    let results: Vec<(bool, SearchStats)> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .enumerate()
            .map(|(t, chunk)| {
                let inc = &inc;
                let worker_cfg = &worker_cfg;
                scope.spawn(move |_| worker(g, worker_cfg, lb0, chunk, t as u64, inc))
            })
            .collect();
        handles
            .into_iter()
            // a panicked worker abandons its subtrees: its chunk counts as
            // not-completed, so exactness is never claimed past the hole
            .map(|h| h.join().unwrap_or((false, SearchStats::default())))
            .collect()
    })
    .unwrap_or_default();

    // empty results = the scope itself failed: nothing completed
    let exact = (!results.is_empty() && results.iter().all(|(done, _)| *done)) || inc.is_exact();
    let mut stats = SearchStats::default();
    for (_, s) in &results {
        stats.expanded += s.expanded;
        stats.generated += s.generated;
        stats.pruned += s.pruned;
    }
    stats.elapsed = start.elapsed();
    if exact {
        inc.mark_exact();
    }
    let upper = inc.upper();
    let order = inc.best_order().unwrap_or_default();
    // the recorded ordering may be a PR1-completed prefix; re-evaluate to
    // confirm it achieves the bound
    debug_assert!({
        let mut ev = TwEvaluator::new(g);
        ev.width(&order) <= upper
    });
    SearchOutcome {
        lower: if exact { upper } else { inc.lower().min(upper) },
        upper,
        exact,
        ordering: Some(EliminationOrdering::new_unchecked(order)),
        stats,
    }
}

/// One worker: depth-first over its root subset with the shared incumbent.
fn worker(
    g: &Graph,
    cfg: &SearchConfig,
    lb0: u32,
    roots: &[Vertex],
    salt: u64,
    inc: &Incumbent,
) -> (bool, SearchStats) {
    let mut stats = SearchStats::default();
    let mut budget = Budget::new(cfg, "parallel_bb");
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (salt << 32));
    let mut eg = EliminationGraph::new(g);
    let mut order: Vec<Vertex> = Vec::new();
    let mut completed = true;
    for &v in roots {
        let d = eg.degree(v);
        let mark = eg.log_len();
        eg.eliminate(v);
        order.push(v);
        completed &= dfs(
            cfg,
            lb0,
            &mut eg,
            d,
            &mut order,
            inc,
            &mut budget,
            &mut rng,
            &mut stats,
        );
        order.pop();
        eg.undo_to(mark);
        if !completed {
            break;
        }
    }
    stats.expanded = budget.expanded;
    (completed, stats)
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    cfg: &SearchConfig,
    lb0: u32,
    eg: &mut EliminationGraph,
    g_width: u32,
    order: &mut Vec<Vertex>,
    inc: &Incumbent,
    budget: &mut Budget,
    rng: &mut StdRng,
    stats: &mut SearchStats,
) -> bool {
    if !budget.tick() {
        return false;
    }
    let remaining = eg.num_alive();
    if remaining == 0 {
        offer_traced(inc, &cfg.tracer, WHO, g_width, order);
        return true;
    }
    let w = g_width.max(remaining - 1);
    if w < inc.upper() {
        let mut o = order.clone();
        o.extend(eg.alive().iter());
        offer_traced(inc, &cfg.tracer, WHO, w, &o);
    }
    if remaining - 1 <= g_width {
        return true;
    }
    // h_sub bounds the alive subgraph's treewidth; pruning may also use
    // g_width and lb0, but the almost-simplicial rule may not (they bound
    // the completion, not the subgraph)
    let h_sub = minor_min_width(&alive_graph(eg), rng);
    if g_width.max(h_sub).max(lb0) >= inc.upper() {
        stats.pruned += 1;
        return true;
    }
    let children: Vec<Vertex> = if cfg.use_reductions {
        match reduce::find_reducible(eg, h_sub) {
            Some(v) => vec![v],
            None => eg.alive().to_vec(),
        }
    } else {
        eg.alive().to_vec()
    };
    let mut completed = true;
    for v in children {
        let d = eg.degree(v);
        let child_g = g_width.max(d);
        if child_g >= inc.upper() {
            stats.pruned += 1;
            continue;
        }
        let mark = eg.log_len();
        eg.eliminate(v);
        order.push(v);
        stats.generated += 1;
        completed &= dfs(cfg, lb0, eg, child_g, order, inc, budget, rng, stats);
        order.pop();
        eg.undo_to(mark);
        if !completed {
            break;
        }
    }
    completed
}

#[cfg(test)]
mod tests {
    use super::*;
    use htd_hypergraph::gen;

    #[test]
    fn matches_sequential_on_random_graphs() {
        for seed in 0..8u64 {
            let g = gen::random_gnp(10, 0.35, seed);
            let cfg = SearchConfig::default();
            let seq = crate::bb_tw::bb_tw(&g, &cfg);
            for threads in [2usize, 4] {
                let par = bb_tw_parallel(&g, &cfg, threads);
                assert!(par.exact, "seed {seed} threads {threads}");
                assert_eq!(par.upper, seq.upper, "seed {seed} threads {threads}");
            }
        }
    }

    #[test]
    fn queen5_parallel() {
        let g = gen::queen_graph(5);
        let out = bb_tw_parallel(&g, &SearchConfig::default(), 4);
        assert!(out.exact);
        assert_eq!(out.upper, 18);
        // the reported ordering achieves the bound
        let mut ev = TwEvaluator::new(&g);
        assert!(ev.width(out.ordering.unwrap().as_slice()) <= 18);
    }

    #[test]
    fn single_thread_delegates() {
        let g = gen::cycle_graph(8);
        let out = bb_tw_parallel(&g, &SearchConfig::default(), 1);
        assert!(out.exact);
        assert_eq!(out.upper, 2);
    }

    #[test]
    fn budget_exhaustion_still_bounds() {
        let g = gen::queen_graph(6);
        let out = bb_tw_parallel(&g, &SearchConfig::budgeted(30), 4);
        assert!(out.lower <= 25 && out.upper >= 25);
    }

    #[test]
    fn external_cancellation_stops_workers() {
        use std::time::{Duration, Instant};
        let g = gen::queen_graph(7);
        let inc = Arc::new(Incumbent::new());
        let cfg = SearchConfig {
            shared: Some(Arc::clone(&inc)),
            ..SearchConfig::default()
        };
        let t0 = Instant::now();
        crossbeam::thread::scope(|scope| {
            let handle = scope.spawn(|_| bb_tw_parallel(&g, &cfg, 4));
            std::thread::sleep(Duration::from_millis(50));
            inc.cancel();
            let out = handle.join().expect("solver");
            assert!(out.lower <= out.upper);
        })
        .expect("scope");
        assert!(
            t0.elapsed() < Duration::from_millis(50 + 500),
            "workers did not stop promptly: {:?}",
            t0.elapsed()
        );
    }
}
