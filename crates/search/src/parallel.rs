//! Parallel branch and bound for treewidth.
//!
//! The depth-first search of [`bb_tw`](crate::bb_tw) parallelizes at the
//! root: each first-eliminated vertex spawns an independent subtree, and
//! the incumbent upper bound is shared through an atomic so a good
//! solution found by one worker immediately tightens every other worker's
//! pruning. Workers never block each other (the ordering behind the
//! incumbent is folded in afterwards), so this is the textbook
//! shared-bound parallel B&B.

use std::sync::atomic::{AtomicU32, Ordering};

use htd_core::ordering::{EliminationOrdering, TwEvaluator};
use htd_heuristics::{lower::minor_min_width, reduce, upper::min_fill};
use htd_hypergraph::{EliminationGraph, Graph, Vertex};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::bb_tw::alive_graph;
use crate::config::{Budget, SearchConfig, SearchOutcome, SearchStats};

/// Parallel BB-tw across `threads` workers. Semantics match
/// [`bb_tw`](crate::bb_tw): exact within budget (the node budget applies
/// per worker), anytime bounds otherwise. The PR2 toggle is ignored here —
/// its sibling-branch bookkeeping does not cross worker boundaries — so
/// workers prune with PR1, reductions and the shared incumbent only.
pub fn bb_tw_parallel(g: &Graph, cfg: &SearchConfig, threads: usize) -> SearchOutcome {
    let n = g.num_vertices();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    if n == 0 || threads <= 1 {
        return crate::bb_tw(g, cfg);
    }
    let lb0 = htd_heuristics::combined_lower_bound(g, &mut rng);
    let h0 = min_fill(g, &mut rng);
    if lb0 >= h0.width {
        return SearchOutcome {
            lower: h0.width,
            upper: h0.width,
            exact: true,
            ordering: Some(h0.ordering),
            stats: SearchStats::default(),
        };
    }
    let best = AtomicU32::new(h0.width);
    let best_order: Mutex<Vec<Vertex>> = Mutex::new(h0.ordering.clone().into_vec());

    // root children: reduction-forced single child or all vertices
    let base = EliminationGraph::new(g);
    let roots: Vec<Vertex> = if cfg.use_reductions {
        match reduce::find_reducible(&base, lb0) {
            Some(v) => vec![v],
            None => (0..n).collect(),
        }
    } else {
        (0..n).collect()
    };
    // round-robin chunks so heavy subtrees spread across workers
    let chunks: Vec<Vec<Vertex>> = (0..threads)
        .map(|t| {
            roots
                .iter()
                .copied()
                .skip(t)
                .step_by(threads)
                .collect::<Vec<_>>()
        })
        .filter(|c| !c.is_empty())
        .collect();

    let start = std::time::Instant::now();
    let results: Vec<(bool, SearchStats)> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .enumerate()
            .map(|(t, chunk)| {
                let best = &best;
                let best_order = &best_order;
                scope.spawn(move |_| {
                    worker(g, cfg, lb0, chunk, t as u64, best, best_order)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker")).collect()
    })
    .expect("scope");

    let exact = results.iter().all(|(done, _)| *done);
    let mut stats = SearchStats::default();
    for (_, s) in &results {
        stats.expanded += s.expanded;
        stats.generated += s.generated;
        stats.pruned += s.pruned;
    }
    stats.elapsed = start.elapsed();
    let upper = best.load(Ordering::SeqCst);
    let order = best_order.into_inner();
    // the recorded ordering may be a PR1-completed prefix; re-evaluate to
    // confirm it achieves the bound
    debug_assert!({
        let mut ev = TwEvaluator::new(g);
        ev.width(&order) <= upper
    });
    SearchOutcome {
        lower: if exact { upper } else { lb0 },
        upper,
        exact,
        ordering: Some(EliminationOrdering::new_unchecked(order)),
        stats,
    }
}

/// One worker: depth-first over its root subset with the shared incumbent.
fn worker(
    g: &Graph,
    cfg: &SearchConfig,
    lb0: u32,
    roots: &[Vertex],
    salt: u64,
    best: &AtomicU32,
    best_order: &Mutex<Vec<Vertex>>,
) -> (bool, SearchStats) {
    let mut stats = SearchStats::default();
    let mut budget = Budget::new(cfg);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (salt << 32));
    let mut eg = EliminationGraph::new(g);
    let mut order: Vec<Vertex> = Vec::new();
    let mut completed = true;
    for &v in roots {
        let d = eg.degree(v);
        let mark = eg.log_len();
        eg.eliminate(v);
        order.push(v);
        completed &= dfs(
            g, cfg, lb0, &mut eg, d, &mut order, best, best_order, &mut budget, &mut rng,
            &mut stats,
        );
        order.pop();
        eg.undo_to(mark);
        if !completed {
            break;
        }
    }
    stats.expanded = budget.expanded;
    (completed, stats)
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    g: &Graph,
    cfg: &SearchConfig,
    lb0: u32,
    eg: &mut EliminationGraph,
    g_width: u32,
    order: &mut Vec<Vertex>,
    best: &AtomicU32,
    best_order: &Mutex<Vec<Vertex>>,
    budget: &mut Budget,
    rng: &mut StdRng,
    stats: &mut SearchStats,
) -> bool {
    if !budget.tick() {
        return false;
    }
    let remaining = eg.num_alive();
    let record = |width: u32, order: &[Vertex], eg: &EliminationGraph| {
        // CAS-min on the shared incumbent
        let mut cur = best.load(Ordering::SeqCst);
        while width < cur {
            match best.compare_exchange(cur, width, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => {
                    let mut o = order.to_vec();
                    o.extend(eg.alive().iter());
                    *best_order.lock() = o;
                    break;
                }
                Err(now) => cur = now,
            }
        }
    };
    if remaining == 0 {
        record(g_width, order, eg);
        return true;
    }
    let w = g_width.max(remaining - 1);
    record(w, order, eg);
    if remaining - 1 <= g_width {
        return true;
    }
    let h = minor_min_width(&alive_graph(eg), rng).max(lb0);
    if g_width.max(h) >= best.load(Ordering::SeqCst) {
        stats.pruned += 1;
        return true;
    }
    let children: Vec<Vertex> = if cfg.use_reductions {
        match reduce::find_reducible(eg, g_width.max(h)) {
            Some(v) => vec![v],
            None => eg.alive().to_vec(),
        }
    } else {
        eg.alive().to_vec()
    };
    let mut completed = true;
    for v in children {
        let d = eg.degree(v);
        let child_g = g_width.max(d);
        if child_g >= best.load(Ordering::SeqCst) {
            stats.pruned += 1;
            continue;
        }
        let mark = eg.log_len();
        eg.eliminate(v);
        order.push(v);
        stats.generated += 1;
        completed &= dfs(
            g, cfg, lb0, eg, child_g, order, best, best_order, budget, rng, stats,
        );
        order.pop();
        eg.undo_to(mark);
        if !completed {
            break;
        }
    }
    completed
}

#[cfg(test)]
mod tests {
    use super::*;
    use htd_hypergraph::gen;

    #[test]
    fn matches_sequential_on_random_graphs() {
        for seed in 0..8u64 {
            let g = gen::random_gnp(10, 0.35, seed);
            let cfg = SearchConfig::default();
            let seq = crate::bb_tw(&g, &cfg);
            for threads in [2usize, 4] {
                let par = bb_tw_parallel(&g, &cfg, threads);
                assert!(par.exact, "seed {seed} threads {threads}");
                assert_eq!(par.upper, seq.upper, "seed {seed} threads {threads}");
            }
        }
    }

    #[test]
    fn queen5_parallel() {
        let g = gen::queen_graph(5);
        let out = bb_tw_parallel(&g, &SearchConfig::default(), 4);
        assert!(out.exact);
        assert_eq!(out.upper, 18);
        // the reported ordering achieves the bound
        let mut ev = TwEvaluator::new(&g);
        assert!(ev.width(out.ordering.unwrap().as_slice()) <= 18);
    }

    #[test]
    fn single_thread_delegates() {
        let g = gen::cycle_graph(8);
        let out = bb_tw_parallel(&g, &SearchConfig::default(), 1);
        assert!(out.exact);
        assert_eq!(out.upper, 2);
    }

    #[test]
    fn budget_exhaustion_still_bounds() {
        let g = gen::queen_graph(6);
        let out = bb_tw_parallel(&g, &SearchConfig::budgeted(30), 4);
        assert!(out.lower <= 25 && out.upper >= 25);
    }
}
