//! The shared anytime state of a solver run.
//!
//! An [`Incumbent`] holds the best proven lower bound, the best achieved
//! upper bound with an ordering witnessing it, and a cooperative
//! cancellation flag. Every engine works against an incumbent — a run of a
//! single sequential engine gets a private one, while the portfolio hands
//! the same `Arc<Incumbent>` to all its workers, so a bound found by one
//! immediately tightens every other worker's pruning (the textbook
//! shared-bound parallel branch and bound).
//!
//! The moment `lower == upper` the optimum is proven: the incumbent marks
//! itself exact and trips the cancellation flag, which every engine's
//! budget check observes, so the first exact proof stops the whole run.
//!
//! Bounds are monotone (lower only rises, upper only falls) and an
//! incumbent must only be shared between engines optimizing the **same
//! objective** on the **same instance** — tw and ghw widths are not
//! comparable.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use htd_hypergraph::Vertex;
use htd_trace::{Event, Tracer};
use parking_lot::Mutex;

/// Sentinel for "no upper bound arrived yet" in the timestamp atomics.
const NEVER: u64 = u64::MAX;

/// Shared bounds + witness + cancellation for one solver run.
pub struct Incumbent {
    lower: AtomicU32,
    upper: AtomicU32,
    exact: AtomicBool,
    cancelled: AtomicBool,
    /// (width, witness ordering, attributed engine) — kept together under
    /// one lock so the stored ordering always matches the stored width
    /// even when two improvements race (the atomic `upper` alone cannot
    /// guarantee that). The engine label is `""` for unattributed offers.
    best: Mutex<(u32, Vec<Vertex>, &'static str)>,
    /// When this incumbent was created; anchors the convergence timestamps.
    created: Instant,
    /// Microseconds from `created` to the first accepted upper bound.
    first_upper_us: AtomicU64,
    /// Microseconds from `created` to the latest accepted upper bound.
    best_upper_us: AtomicU64,
}

impl Default for Incumbent {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Incumbent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Incumbent")
            .field("lower", &self.lower())
            .field("upper", &self.upper())
            .field("exact", &self.is_exact())
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

impl Incumbent {
    /// A fresh incumbent: bounds `[0, ∞)`, no witness, not cancelled.
    pub fn new() -> Self {
        Incumbent {
            lower: AtomicU32::new(0),
            upper: AtomicU32::new(u32::MAX),
            exact: AtomicBool::new(false),
            cancelled: AtomicBool::new(false),
            best: Mutex::new((u32::MAX, Vec::new(), "")),
            created: Instant::now(),
            first_upper_us: AtomicU64::new(NEVER),
            best_upper_us: AtomicU64::new(NEVER),
        }
    }

    /// Current proven lower bound.
    #[inline]
    pub fn lower(&self) -> u32 {
        self.lower.load(Ordering::Acquire)
    }

    /// Current achieved upper bound (`u32::MAX` until a witness arrives).
    #[inline]
    pub fn upper(&self) -> u32 {
        self.upper.load(Ordering::Acquire)
    }

    /// Both bounds at once.
    pub fn bounds(&self) -> (u32, u32) {
        (self.lower(), self.upper())
    }

    /// Offers an achieved width with its witness ordering, unattributed.
    /// Returns `true` iff this improved the incumbent.
    pub fn offer_upper(&self, width: u32, order: &[Vertex]) -> bool {
        self.offer_upper_as(width, order, "")
    }

    /// Offers an achieved width with its witness ordering, attributed to
    /// the engine named `who` (see `Engine::name`). Returns `true` iff
    /// this improved the incumbent. Proving `lower == upper` marks the
    /// run exact and cancels it.
    pub fn offer_upper_as(&self, width: u32, order: &[Vertex], who: &'static str) -> bool {
        let mut cur = self.upper.load(Ordering::Acquire);
        loop {
            if width >= cur {
                return false;
            }
            match self
                .upper
                .compare_exchange(cur, width, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
        let now_us = self.created.elapsed().as_micros() as u64;
        self.first_upper_us.fetch_min(now_us, Ordering::AcqRel);
        {
            let mut best = self.best.lock();
            if width < best.0 {
                best.0 = width;
                best.1.clear();
                best.1.extend_from_slice(order);
                best.2 = who;
                self.best_upper_us.store(now_us, Ordering::Release);
            }
        }
        self.check_closed();
        true
    }

    /// Raises the proven lower bound. Returns `true` iff it rose. Proving
    /// `lower == upper` marks the run exact and cancels it.
    pub fn raise_lower(&self, lb: u32) -> bool {
        let mut cur = self.lower.load(Ordering::Acquire);
        loop {
            if lb <= cur {
                return false;
            }
            match self
                .lower
                .compare_exchange(cur, lb, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
        self.check_closed();
        true
    }

    #[inline]
    fn check_closed(&self) {
        let upper = self.upper();
        if upper != u32::MAX && self.lower() >= upper {
            self.mark_exact();
        }
    }

    /// Declares the current upper bound optimal (e.g. a branch and bound
    /// exhausted its tree). Sets `lower = upper`, marks exact, cancels.
    pub fn mark_exact(&self) {
        let upper = self.upper();
        if upper != u32::MAX {
            // raise lower to meet upper without recursing through raise_lower
            self.lower.fetch_max(upper, Ordering::AcqRel);
        }
        self.exact.store(true, Ordering::Release);
        self.cancel();
    }

    /// `true` once some engine proved the optimum.
    #[inline]
    pub fn is_exact(&self) -> bool {
        self.exact.load(Ordering::Acquire)
    }

    /// Requests cooperative cancellation: every budget check observes this.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// `true` once cancellation was requested (deadline, or exact proof).
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// The witness ordering of the current upper bound, if any arrived.
    pub fn best_order(&self) -> Option<Vec<Vertex>> {
        let best = self.best.lock();
        (best.0 != u32::MAX).then(|| best.1.clone())
    }

    /// The engine whose offer produced the current upper bound, if any
    /// arrived and the offer was attributed (`None` for unattributed).
    pub fn winner(&self) -> Option<&'static str> {
        let best = self.best.lock();
        (best.0 != u32::MAX && !best.2.is_empty()).then_some(best.2)
    }

    /// Time from creation to the first accepted upper bound, if any.
    pub fn time_to_first_upper(&self) -> Option<Duration> {
        match self.first_upper_us.load(Ordering::Acquire) {
            NEVER => None,
            us => Some(Duration::from_micros(us)),
        }
    }

    /// Time from creation to the upper bound that ended up best, if any.
    pub fn time_to_best_upper(&self) -> Option<Duration> {
        match self.best_upper_us.load(Ordering::Acquire) {
            NEVER => None,
            us => Some(Duration::from_micros(us)),
        }
    }
}

/// [`Incumbent::offer_upper_as`] plus an `IncumbentImproved` trace event
/// when the offer was accepted. The engines' standard offer path.
pub(crate) fn offer_traced(
    inc: &Incumbent,
    tracer: &Tracer,
    who: &'static str,
    width: u32,
    order: &[Vertex],
) -> bool {
    let improved = inc.offer_upper_as(width, order, who);
    if improved {
        tracer.emit(Event::IncumbentImproved { worker: who, width });
    }
    improved
}

/// [`Incumbent::raise_lower`] plus a `BoundTightened` trace event when the
/// bound actually rose.
pub(crate) fn raise_traced(inc: &Incumbent, tracer: &Tracer, who: &'static str, lb: u32) -> bool {
    let rose = inc.raise_lower(lb);
    if rose {
        tracer.emit(Event::BoundTightened {
            worker: who,
            lower: lb,
        });
    }
    rose
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bounds_are_monotone() {
        let inc = Incumbent::new();
        assert_eq!(inc.bounds(), (0, u32::MAX));
        assert!(inc.offer_upper(10, &[0, 1, 2]));
        assert!(!inc.offer_upper(12, &[9]), "worse upper rejected");
        assert!(inc.offer_upper(7, &[2, 1, 0]));
        assert_eq!(inc.upper(), 7);
        assert_eq!(inc.best_order().unwrap(), vec![2, 1, 0]);
        assert!(inc.raise_lower(3));
        assert!(!inc.raise_lower(2), "weaker lower rejected");
        assert_eq!(inc.bounds(), (3, 7));
        assert!(!inc.is_exact() && !inc.is_cancelled());
    }

    #[test]
    fn meeting_bounds_proves_exact_and_cancels() {
        let inc = Incumbent::new();
        inc.offer_upper(5, &[0]);
        inc.raise_lower(5);
        assert!(inc.is_exact());
        assert!(inc.is_cancelled());
        assert_eq!(inc.bounds(), (5, 5));
    }

    #[test]
    fn mark_exact_closes_the_gap() {
        let inc = Incumbent::new();
        inc.offer_upper(9, &[1]);
        inc.raise_lower(4);
        inc.mark_exact();
        assert_eq!(inc.bounds(), (9, 9));
        assert!(inc.is_exact() && inc.is_cancelled());
    }

    #[test]
    fn attribution_and_convergence_times_track_the_best_offer() {
        let inc = Incumbent::new();
        assert_eq!(inc.winner(), None);
        assert_eq!(inc.time_to_first_upper(), None);
        assert_eq!(inc.time_to_best_upper(), None);
        assert!(inc.offer_upper_as(9, &[0], "heuristic"));
        assert_eq!(inc.winner(), Some("heuristic"));
        let first = inc.time_to_first_upper().unwrap();
        assert!(inc.offer_upper_as(4, &[1], "astar"));
        assert!(!inc.offer_upper_as(6, &[2], "genetic"), "worse offer loses");
        assert_eq!(inc.winner(), Some("astar"));
        assert!(inc.time_to_first_upper().unwrap() <= inc.time_to_best_upper().unwrap());
        assert_eq!(inc.time_to_first_upper().unwrap(), first);
        // unattributed offers win the bound but not the credit
        let inc2 = Incumbent::new();
        inc2.offer_upper(3, &[0]);
        assert_eq!(inc2.winner(), None);
        assert!(inc2.time_to_first_upper().is_some());
    }

    #[test]
    fn lower_alone_never_marks_exact() {
        let inc = Incumbent::new();
        inc.raise_lower(1_000);
        assert!(!inc.is_exact(), "no witness yet");
    }

    #[test]
    fn concurrent_offers_keep_width_and_order_consistent() {
        let inc = Arc::new(Incumbent::new());
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let inc = Arc::clone(&inc);
                s.spawn(move || {
                    for w in (10..200u32).rev() {
                        // each thread's witness encodes the width it offers
                        inc.offer_upper(w + t, &[w + t]);
                    }
                });
            }
        });
        assert_eq!(inc.upper(), 10);
        assert_eq!(inc.best_order().unwrap(), vec![10]);
    }
}
