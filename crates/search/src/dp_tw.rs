//! Dynamic programming over vertex subsets for treewidth (the
//! Bodlaender–Fomin–Koster–Kratsch–Thilikos "BT" recurrence).
//!
//! `opt(S)` — the minimum over orderings eliminating exactly the set `S`
//! first of the maximum degree met — satisfies
//!
//! ```text
//! opt(S) = min over v ∈ S of max( opt(S \ {v}),  |Q(S \ {v}, v)| )
//! ```
//!
//! where `Q(R, v)` is the set of vertices outside `R ∪ {v}` reachable from
//! `v` through `R` — exactly the degree of `v` after eliminating `R`.
//! A breadth-first sweep over subset lattice layers gives the treewidth in
//! `O(2^n · n²)` time and `O(2^n)` space: the exact baseline the
//! branch-and-bound searches are validated against for `n` up to ~20,
//! far beyond the `n ≤ 8` reach of factorial enumeration.

use std::collections::HashMap;

use htd_hypergraph::Graph;

/// Exact treewidth by subset dynamic programming. Practical to `n ≈ 20`.
///
/// ```
/// use htd_search::dp_treewidth;
/// use htd_hypergraph::gen;
/// assert_eq!(dp_treewidth(&gen::cycle_graph(12)), 2);
/// assert_eq!(dp_treewidth(&gen::complete_graph(9)), 8);
/// ```
///
/// # Panics
///
/// Panics when `g` has more than 30 vertices (the table would not fit).
pub fn dp_treewidth(g: &Graph) -> u32 {
    let n = g.num_vertices();
    assert!(n <= 30, "subset DP needs 2^n table entries");
    if n == 0 {
        return 0;
    }
    // adjacency as u32 masks for speed
    let adj: Vec<u32> = (0..n)
        .map(|v| g.neighbors(v).iter().fold(0u32, |m, u| m | (1 << u)))
        .collect();
    let full: u32 = if n == 32 { u32::MAX } else { (1 << n) - 1 };
    // layer-by-layer over subset sizes; opt maps subset -> width
    let mut layer: HashMap<u32, u32> = HashMap::new();
    layer.insert(0, 0);
    let mut states: u64 = 1;
    for _size in 0..n {
        let mut next: HashMap<u32, u32> = HashMap::new();
        for (&s, &w) in &layer {
            let remaining = full & !s;
            let mut m = remaining;
            while m != 0 {
                let v = m.trailing_zeros();
                m &= m - 1;
                let deg = q_degree(&adj, s, v, full);
                let cand = w.max(deg);
                let ns = s | (1 << v);
                match next.get_mut(&ns) {
                    Some(best) => {
                        if cand < *best {
                            *best = cand;
                        }
                    }
                    None => {
                        next.insert(ns, cand);
                    }
                }
            }
        }
        layer = next;
        states += layer.len() as u64;
    }
    htd_trace::registry()
        .counter("htd_dp_tw_states_total")
        .add(states);
    layer[&full]
}

/// `|Q(S, v)|`: neighbors of the component of `v` in `S ∪ {v}` that lie
/// outside `S ∪ {v}` — the degree of `v` once `S` is eliminated.
fn q_degree(adj: &[u32], s: u32, v: u32, full: u32) -> u32 {
    let sv = s | (1 << v);
    // flood from v through S
    let mut comp = 1u32 << v;
    let mut frontier = comp;
    while frontier != 0 {
        let mut reach = 0u32;
        let mut m = frontier;
        while m != 0 {
            let u = m.trailing_zeros();
            m &= m - 1;
            reach |= adj[u as usize];
        }
        frontier = reach & s & !comp;
        comp |= frontier;
    }
    // outside neighbors of the component
    let mut out = 0u32;
    let mut m = comp;
    while m != 0 {
        let u = m.trailing_zeros();
        m &= m - 1;
        out |= adj[u as usize];
    }
    (out & full & !sv).count_ones()
}

#[cfg(test)]
mod tests {
    use super::*;
    use htd_core::ordering::exhaustive_tw;
    use htd_hypergraph::gen;

    #[test]
    fn known_families() {
        assert_eq!(dp_treewidth(&gen::path_graph(10)), 1);
        assert_eq!(dp_treewidth(&gen::cycle_graph(10)), 2);
        assert_eq!(dp_treewidth(&gen::complete_graph(8)), 7);
        assert_eq!(dp_treewidth(&gen::grid_graph(3, 3)), 3);
        assert_eq!(dp_treewidth(&gen::grid_graph(4, 4)), 4);
        assert_eq!(dp_treewidth(&gen::grid_graph(4, 5)), 4);
        assert_eq!(dp_treewidth(&Graph::new(5)), 0);
        assert_eq!(dp_treewidth(&Graph::new(0)), 0);
    }

    #[test]
    fn matches_exhaustive_enumeration() {
        for seed in 0..15u64 {
            let g = gen::random_gnp(8, 0.4, seed);
            assert_eq!(dp_treewidth(&g), exhaustive_tw(&g), "seed {seed}");
        }
    }

    #[test]
    fn matches_branch_and_bound_beyond_exhaustive_reach() {
        use crate::bb_tw::bb_tw;
        use crate::SearchConfig;
        for seed in 0..6u64 {
            let g = gen::random_gnp(14, 0.25, seed);
            let bb = bb_tw(&g, &SearchConfig::default());
            assert!(bb.exact);
            assert_eq!(dp_treewidth(&g), bb.upper, "seed {seed}");
        }
    }

    #[test]
    fn ktrees_have_width_k() {
        for k in 2..5u32 {
            let g = gen::random_ktree(15, k, k as u64 + 7);
            assert_eq!(dp_treewidth(&g), k);
        }
    }

    #[test]
    fn disconnected_graph() {
        // two triangles
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        assert_eq!(dp_treewidth(&g), 2);
    }
}
