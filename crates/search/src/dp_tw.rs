//! Dynamic programming over vertex subsets for treewidth (the
//! Bodlaender–Fomin–Koster–Kratsch–Thilikos "BT" recurrence).
//!
//! `opt(S)` — the minimum over orderings eliminating exactly the set `S`
//! first of the maximum degree met — satisfies
//!
//! ```text
//! opt(S) = min over v ∈ S of max( opt(S \ {v}),  |Q(S \ {v}, v)| )
//! ```
//!
//! where `Q(R, v)` is the set of vertices outside `R ∪ {v}` reachable from
//! `v` through `R` — exactly the degree of `v` after eliminating `R`.
//! A breadth-first sweep over subset lattice layers gives the treewidth in
//! `O(2^n · n²)` time and `O(2^n)` space: the exact baseline the
//! branch-and-bound searches are validated against for `n` up to ~20,
//! far beyond the `n ≤ 8` reach of factorial enumeration.

use std::collections::HashMap;

use htd_core::error::HtdError;
use htd_hypergraph::Graph;

use crate::config::SearchConfig;

/// Exact treewidth by subset dynamic programming. Practical to `n ≈ 20`.
///
/// ```
/// use htd_search::dp_treewidth;
/// use htd_hypergraph::gen;
/// assert_eq!(dp_treewidth(&gen::cycle_graph(12)), 2);
/// assert_eq!(dp_treewidth(&gen::complete_graph(9)), 8);
/// ```
///
/// # Panics
///
/// Panics when `g` has more than 30 vertices (the table would not fit).
pub fn dp_treewidth(g: &Graph) -> u32 {
    let n = g.num_vertices();
    assert!(n <= 30, "subset DP needs 2^n table entries");
    if n == 0 {
        return 0;
    }
    // adjacency as u32 masks for speed
    let adj: Vec<u32> = (0..n)
        .map(|v| g.neighbors(v).iter().fold(0u32, |m, u| m | (1 << u)))
        .collect();
    let full: u32 = if n == 32 { u32::MAX } else { (1 << n) - 1 };
    // layer-by-layer over subset sizes; opt maps subset -> width
    let mut layer: HashMap<u32, u32> = HashMap::new();
    layer.insert(0, 0);
    let mut states: u64 = 1;
    for _size in 0..n {
        let mut next: HashMap<u32, u32> = HashMap::new();
        for (&s, &w) in &layer {
            let remaining = full & !s;
            let mut m = remaining;
            while m != 0 {
                let v = m.trailing_zeros();
                m &= m - 1;
                let deg = q_degree(&adj, s, v, full);
                let cand = w.max(deg);
                let ns = s | (1 << v);
                match next.get_mut(&ns) {
                    Some(best) => {
                        if cand < *best {
                            *best = cand;
                        }
                    }
                    None => {
                        next.insert(ns, cand);
                    }
                }
            }
        }
        layer = next;
        states += layer.len() as u64;
    }
    htd_trace::registry()
        .counter("htd_dp_tw_states_total")
        .add(states);
    layer[&full]
}

/// [`dp_treewidth`] under `cfg.memory_budget`: an all-or-nothing consumer
/// that refuses *upfront* when its table estimate does not fit, instead of
/// dying mid-layer. Without a budget it behaves exactly like
/// [`dp_treewidth`].
///
/// The estimate is the peak of the layered table — the two largest
/// adjacent subset layers, `C(n, ⌊n/2⌋)` entries each at ~16 bytes per
/// hash-map slot. Refusals return [`HtdError::ResourceExhausted`] with
/// the estimate, so callers can report "needs N MiB" and fall back to the
/// anytime engines.
pub fn dp_treewidth_budgeted(g: &Graph, cfg: &SearchConfig) -> Result<u32, HtdError> {
    let n = g.num_vertices();
    if n > 30 {
        return Err(HtdError::ResourceExhausted(format!(
            "subset DP needs 2^{n} table entries; practical only to n = 30"
        )));
    }
    if let Some(budget) = &cfg.memory_budget {
        let estimate = dp_table_estimate(n as usize);
        // charge-then-release keeps the accounting exact even when a
        // concurrent consumer races the reservation
        if !budget.charge(estimate) {
            budget.release(estimate);
            return Err(HtdError::ResourceExhausted(format!(
                "subset DP on {n} vertices needs ~{} MiB of table, over the {} MiB budget",
                estimate >> 20,
                budget.limit() >> 20
            )));
        }
        let w = dp_treewidth(g);
        budget.release(estimate);
        return Ok(w);
    }
    Ok(dp_treewidth(g))
}

/// Peak retained bytes of the layered DP: the two largest adjacent subset
/// layers at ~16 bytes per `u32 → u32` hash-map entry.
fn dp_table_estimate(n: usize) -> u64 {
    // C(n, n/2) without overflow for n ≤ 30
    let mut binom: u64 = 1;
    for k in 0..(n / 2) {
        binom = binom * (n as u64 - k as u64) / (k as u64 + 1);
    }
    2 * binom * 16
}

/// `|Q(S, v)|`: neighbors of the component of `v` in `S ∪ {v}` that lie
/// outside `S ∪ {v}` — the degree of `v` once `S` is eliminated.
fn q_degree(adj: &[u32], s: u32, v: u32, full: u32) -> u32 {
    let sv = s | (1 << v);
    // flood from v through S
    let mut comp = 1u32 << v;
    let mut frontier = comp;
    while frontier != 0 {
        let mut reach = 0u32;
        let mut m = frontier;
        while m != 0 {
            let u = m.trailing_zeros();
            m &= m - 1;
            reach |= adj[u as usize];
        }
        frontier = reach & s & !comp;
        comp |= frontier;
    }
    // outside neighbors of the component
    let mut out = 0u32;
    let mut m = comp;
    while m != 0 {
        let u = m.trailing_zeros();
        m &= m - 1;
        out |= adj[u as usize];
    }
    (out & full & !sv).count_ones()
}

#[cfg(test)]
mod tests {
    use super::*;
    use htd_core::ordering::exhaustive_tw;
    use htd_hypergraph::gen;

    #[test]
    fn known_families() {
        assert_eq!(dp_treewidth(&gen::path_graph(10)), 1);
        assert_eq!(dp_treewidth(&gen::cycle_graph(10)), 2);
        assert_eq!(dp_treewidth(&gen::complete_graph(8)), 7);
        assert_eq!(dp_treewidth(&gen::grid_graph(3, 3)), 3);
        assert_eq!(dp_treewidth(&gen::grid_graph(4, 4)), 4);
        assert_eq!(dp_treewidth(&gen::grid_graph(4, 5)), 4);
        assert_eq!(dp_treewidth(&Graph::new(5)), 0);
        assert_eq!(dp_treewidth(&Graph::new(0)), 0);
    }

    #[test]
    fn matches_exhaustive_enumeration() {
        for seed in 0..15u64 {
            let g = gen::random_gnp(8, 0.4, seed);
            assert_eq!(dp_treewidth(&g), exhaustive_tw(&g), "seed {seed}");
        }
    }

    #[test]
    fn matches_branch_and_bound_beyond_exhaustive_reach() {
        use crate::bb_tw::bb_tw;
        use crate::SearchConfig;
        for seed in 0..6u64 {
            let g = gen::random_gnp(14, 0.25, seed);
            let bb = bb_tw(&g, &SearchConfig::default());
            assert!(bb.exact);
            assert_eq!(dp_treewidth(&g), bb.upper, "seed {seed}");
        }
    }

    #[test]
    fn ktrees_have_width_k() {
        for k in 2..5u32 {
            let g = gen::random_ktree(15, k, k as u64 + 7);
            assert_eq!(dp_treewidth(&g), k);
        }
    }

    #[test]
    fn budgeted_dp_refuses_upfront_and_runs_when_it_fits() {
        let g = gen::grid_graph(4, 4);
        // no budget: same as the plain entry point
        assert_eq!(
            dp_treewidth_budgeted(&g, &SearchConfig::default()).unwrap(),
            4
        );
        // roomy budget: runs, and releases its reservation afterwards
        let cfg = SearchConfig::default().with_memory_budget(64 << 20);
        assert_eq!(dp_treewidth_budgeted(&g, &cfg).unwrap(), 4);
        let b = cfg.memory_budget.as_ref().unwrap();
        assert_eq!(b.used(), 0, "reservation released");
        assert!(!b.exceeded());
        // starved budget: refuses upfront with an estimate, computes nothing
        let tiny = SearchConfig::default().with_memory_budget(1024);
        let err = dp_treewidth_budgeted(&g, &tiny).unwrap_err();
        assert!(matches!(err, HtdError::ResourceExhausted(_)), "{err}");
        // oversize instances refuse rather than panic
        let big = gen::path_graph(31);
        assert!(matches!(
            dp_treewidth_budgeted(&big, &SearchConfig::default()),
            Err(HtdError::ResourceExhausted(_))
        ));
    }

    #[test]
    fn disconnected_graph() {
        // two triangles
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        assert_eq!(dp_treewidth(&g), 2);
    }
}
