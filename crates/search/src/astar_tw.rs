//! A* for treewidth (thesis Fig. 5.1).
//!
//! Best-first search over the elimination-ordering tree. Each state is a
//! partial ordering; `g` is its width so far, `h` a minor-based lower bound
//! on the remaining graph, and `f = max(g, h, parent.f)` — nondecreasing
//! along paths, so the `f` of the last visited state is a valid treewidth
//! lower bound when the budget runs out (§5.3). States with `f ≥ ub` are
//! never queued (memory measure, §5.2.3); the graph of the visited state is
//! rebuilt by undoing to the common prefix with the previous state
//! (§5.2.1).

use std::collections::{BinaryHeap, HashMap};
use std::rc::Rc;

use htd_core::ordering::EliminationOrdering;
use htd_heuristics::{lower::minor_min_width, reduce, upper::min_fill};
use htd_hypergraph::{EliminationGraph, Graph, Vertex, VertexSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::bb_tw::alive_graph;
use crate::config::{Budget, SearchConfig, SearchOutcome, SearchStats};
use crate::incumbent::{offer_traced, raise_traced};
use crate::pruning::{keep_child, swappable};

const WHO: &str = "astar";

/// Reverse-linked elimination path.
struct PathNode {
    v: Vertex,
    parent: Option<Rc<PathNode>>,
}

fn path_to_vec(p: &Option<Rc<PathNode>>) -> Vec<Vertex> {
    let mut out = Vec::new();
    let mut cur = p.clone();
    while let Some(n) = cur {
        out.push(n.v);
        cur = n.parent.clone();
    }
    out.reverse();
    out
}

struct State {
    f: u32,
    g: u32,
    depth: u32,
    seq: u64,
    path: Option<Rc<PathNode>>,
    eliminated: VertexSet,
    /// vertex eliminated to create this state (root: none)
    prev: Option<Vertex>,
    /// vertices that were swappable with `prev` in the parent's graph
    swap_with_prev: VertexSet,
    /// this state was generated as a reduction-forced only child
    forced: bool,
}

impl State {
    /// Min order on f; among equal f prefer deeper states (§5.3), then FIFO.
    fn cmp_key(&self) -> (u32, std::cmp::Reverse<u32>, u64) {
        (self.f, std::cmp::Reverse(self.depth), self.seq)
    }
}
impl PartialEq for State {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_key() == other.cmp_key()
    }
}
impl Eq for State {}
impl PartialOrd for State {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for State {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: reverse for a min-f queue
        other.cmp_key().cmp(&self.cmp_key())
    }
}

/// Computes the treewidth of `graph` with A*. Within budget the result is
/// exact; otherwise `lower` is the largest proven `f` and `upper` the
/// initial min-fill bound (the thesis's anytime behaviour).
///
/// With `cfg.shared` set, the open-list threshold is the shared
/// [`Incumbent`](crate::Incumbent)'s upper bound — states are discarded
/// against bounds found by sibling engines — and the rising min-`f` is
/// published as the run's proven lower bound.
pub fn astar_tw(graph: &Graph, cfg: &SearchConfig) -> SearchOutcome {
    let n = graph.num_vertices();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut stats = SearchStats::default();
    let inc = cfg.incumbent();
    if n == 0 {
        inc.offer_upper(0, &[]);
        inc.mark_exact();
        return SearchOutcome {
            lower: 0,
            upper: 0,
            exact: true,
            ordering: Some(EliminationOrdering::identity(0)),
            stats,
        };
    }
    let lb0 = htd_heuristics::combined_lower_bound(graph, &mut rng);
    let h0 = min_fill(graph, &mut rng);
    offer_traced(&inc, &cfg.tracer, WHO, h0.width, h0.ordering.as_slice());
    raise_traced(&inc, &cfg.tracer, WHO, lb0);
    let finish =
        |lower: u32, upper: u32, exact: bool, order: Option<Vec<Vertex>>, stats: SearchStats| {
            SearchOutcome {
                lower,
                upper,
                exact,
                ordering: order.map(EliminationOrdering::new_unchecked),
                stats,
            }
        };
    if lb0 >= inc.upper() {
        let ub = inc.upper();
        inc.mark_exact();
        return finish(ub, ub, true, inc.best_order(), stats);
    }

    let mut budget = Budget::new(cfg, "astar");
    let mut queue: BinaryHeap<State> = BinaryHeap::new();
    let mut seq = 0u64;
    // duplicate detection: eliminated-set → best g seen
    let mut seen: HashMap<Vec<u64>, u32> = HashMap::new();

    queue.push(State {
        f: lb0,
        g: 0,
        depth: 0,
        seq,
        path: None,
        eliminated: VertexSet::new(n),
        prev: None,
        swap_with_prev: VertexSet::new(n),
        forced: false,
    });

    let mut eg = EliminationGraph::new(graph);
    let mut current_path: Vec<Vertex> = Vec::new();
    let mut global_lb = lb0;

    while let Some(s) = queue.pop() {
        // hot-path span: aggregate-only (no tracer), so the cost stays
        // at two clock reads + a thread-cache hit per expansion
        let _sp_expand = htd_trace::span!("astar.expand");
        let ub = inc.upper();
        if s.f >= ub {
            break; // all open states are ≥ ub: ub is the treewidth
        }
        if !budget.tick() {
            stats.expanded = budget.expanded - 1;
            stats.elapsed = budget.elapsed();
            stats.max_queue = stats.max_queue.max(queue.len());
            // cancellation may itself have been a sibling's exact proof
            let exact = inc.is_exact();
            let upper = inc.upper();
            return finish(
                if exact { upper } else { global_lb.min(upper) },
                upper,
                exact,
                inc.best_order(),
                stats,
            );
        }
        global_lb = global_lb.max(s.f);
        // min over open f is a valid lower bound on min(tw, ub) (§5.3)
        raise_traced(&inc, &cfg.tracer, WHO, global_lb.min(ub));
        // rebuild graph: undo to common prefix, then eliminate the rest
        let target = path_to_vec(&s.path);
        let common = current_path
            .iter()
            .zip(&target)
            .take_while(|(a, b)| a == b)
            .count();
        eg.undo_to(common);
        current_path.truncate(common);
        for &v in &target[common..] {
            eg.eliminate(v);
            current_path.push(v);
        }
        let remaining = eg.num_alive();
        // goal test: every completion stays within width g
        if remaining == 0 || s.g >= remaining - 1 {
            let mut order = target;
            order.extend(eg.alive().iter());
            stats.expanded = budget.expanded;
            stats.elapsed = budget.elapsed();
            stats.max_queue = stats.max_queue.max(queue.len());
            offer_traced(&inc, &cfg.tracer, WHO, s.g, &order);
            inc.mark_exact();
            return finish(s.g, s.g, true, Some(order), stats);
        }
        // children. The almost-simplicial rule needs a lower bound on the
        // *alive subgraph*'s treewidth — s.f also carries g and lb0, which
        // bound the completion, not the subgraph, so recompute locally.
        let _sp_eval = htd_trace::span!("astar.evaluate");
        let (children, forced_child) = if cfg.use_reductions {
            let h_sub = minor_min_width(&alive_graph(&eg), &mut rng);
            match reduce::find_reducible(&eg, h_sub) {
                Some(v) => (vec![v], true),
                None => (eg.alive().to_vec(), false),
            }
        } else {
            (eg.alive().to_vec(), false)
        };
        for v in children {
            if cfg.use_pr2 && !s.forced && !forced_child {
                if let Some(prev) = s.prev {
                    if !keep_child(prev, v, s.swap_with_prev.contains(v)) {
                        stats.pruned += 1;
                        continue;
                    }
                }
            }
            let swap_set = if cfg.use_pr2 {
                let mut set = VertexSet::new(n);
                for u in eg.alive().iter() {
                    if u != v && swappable(&eg, v, u) {
                        set.insert(u);
                    }
                }
                set
            } else {
                VertexSet::new(n)
            };
            let d = eg.degree(v);
            let mark = eg.log_len();
            eg.eliminate(v);
            let t_g = s.g.max(d);
            let t_h = minor_min_width(&alive_graph(&eg), &mut rng).max(lb0);
            let t_f = t_g.max(t_h).max(s.f);
            if t_f < ub {
                let mut eliminated = s.eliminated.clone();
                eliminated.insert(v);
                let dominated = if cfg.use_duplicate_detection {
                    match seen.get_mut(eliminated.blocks()) {
                        Some(best) if *best <= t_g => true,
                        Some(best) => {
                            *best = t_g;
                            false
                        }
                        None => {
                            // account the closed-set entry; a failed charge
                            // latches the budget and the next tick degrades
                            budget.charge((eliminated.blocks().len() * 8 + 48) as u64);
                            seen.insert(eliminated.blocks().to_vec(), t_g);
                            false
                        }
                    }
                } else {
                    false
                };
                if !dominated {
                    // account the open-list node (two bitsets + headers).
                    // Never *drop* a push on failure — the drained-queue
                    // exactness proof needs every child queued; degradation
                    // happens at the next tick instead.
                    budget.charge((eliminated.blocks().len() * 16 + 80) as u64);
                    seq += 1;
                    stats.generated += 1;
                    queue.push(State {
                        f: t_f,
                        g: t_g,
                        depth: s.depth + 1,
                        seq,
                        path: Some(Rc::new(PathNode {
                            v,
                            parent: s.path.clone(),
                        })),
                        eliminated,
                        prev: Some(v),
                        swap_with_prev: swap_set,
                        forced: forced_child,
                    });
                } else {
                    stats.pruned += 1;
                }
            } else {
                stats.pruned += 1;
            }
            eg.undo_to(mark);
        }
        stats.max_queue = stats.max_queue.max(queue.len());
    }
    // queue drained of states below ub: ub is the treewidth
    stats.expanded = budget.expanded;
    stats.elapsed = budget.elapsed();
    inc.mark_exact();
    let ub = inc.upper();
    finish(ub, ub, true, inc.best_order(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use htd_core::ordering::{exhaustive_tw, TwEvaluator};
    use htd_hypergraph::gen;

    fn exact(g: &Graph, cfg: &SearchConfig) -> u32 {
        let out = astar_tw(g, cfg);
        assert!(out.exact, "expected exact");
        let o = out.ordering.as_ref().unwrap();
        let mut ev = TwEvaluator::new(g);
        assert!(ev.width(o.as_slice()) <= out.upper);
        out.upper
    }

    #[test]
    fn known_families() {
        let cfg = SearchConfig::default();
        assert_eq!(exact(&gen::path_graph(8), &cfg), 1);
        assert_eq!(exact(&gen::cycle_graph(9), &cfg), 2);
        assert_eq!(exact(&gen::complete_graph(6), &cfg), 5);
        assert_eq!(exact(&gen::grid_graph(3, 3), &cfg), 3);
        assert_eq!(exact(&gen::grid_graph(4, 4), &cfg), 4);
    }

    #[test]
    fn matches_exhaustive_all_toggle_combinations() {
        for seed in 0..8u64 {
            let g = gen::random_gnp(8, 0.4, seed);
            let truth = exhaustive_tw(&g);
            for pr2 in [false, true] {
                for red in [false, true] {
                    for dup in [false, true] {
                        let cfg = SearchConfig {
                            use_pr2: pr2,
                            use_reductions: red,
                            use_duplicate_detection: dup,
                            ..SearchConfig::default()
                        };
                        assert_eq!(
                            exact(&g, &cfg),
                            truth,
                            "seed {seed} pr2={pr2} red={red} dup={dup}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn queen5_is_18() {
        let out = astar_tw(&gen::queen_graph(5), &SearchConfig::default());
        assert!(out.exact);
        assert_eq!(out.upper, 18);
    }

    #[test]
    fn agrees_with_bb() {
        for seed in 20..28u64 {
            let g = gen::random_gnp(10, 0.3, seed);
            let cfg = SearchConfig::default();
            let a = astar_tw(&g, &cfg);
            let b = crate::bb_tw::bb_tw(&g, &cfg);
            assert!(a.exact && b.exact);
            assert_eq!(a.upper, b.upper, "seed {seed}");
        }
    }

    #[test]
    fn budget_exhaustion_reports_lower_bound() {
        let g = gen::queen_graph(6);
        let out = astar_tw(&g, &SearchConfig::budgeted(30));
        assert!(!out.exact);
        assert!(out.lower <= 25 && out.upper >= 25);
        assert!(out.lower >= 1);
    }

    #[test]
    fn trivial_graphs() {
        let cfg = SearchConfig::default();
        assert_eq!(exact(&Graph::new(3), &cfg), 0);
        assert_eq!(exact(&Graph::from_edges(2, [(0, 1)]), &cfg), 1);
    }
}
