//! A* for generalized hypertree width (thesis Fig. 9.1).
//!
//! The best-first counterpart of [`bb_ghw`](crate::bb_ghw): states are
//! partial orderings, `g` the maximum exact bag-cover so far, `h` the
//! `tw-ksc` bound on the remaining graph and `f = max(g, h, parent.f)`.
//! Like A*-tw, interrupted runs report the largest visited `f` as a proven
//! lower bound — the thesis's Tables 9.1–9.2 obtain several improved ghw
//! lower bounds exactly this way.

use std::collections::{BinaryHeap, HashMap};
use std::rc::Rc;

use htd_core::ordering::EliminationOrdering;
use htd_core::{CoverStrategy, GhwEvaluator};
use htd_heuristics::upper::{min_degree, min_fill};
use htd_hypergraph::{EliminationGraph, Hypergraph, Vertex, VertexSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::{Budget, SearchConfig, SearchOutcome, SearchStats};
use crate::ghw_common::GhwContext;
use crate::incumbent::{offer_traced, raise_traced};
use crate::pruning::keep_child;

const WHO: &str = "astar";

struct PathNode {
    v: Vertex,
    parent: Option<Rc<PathNode>>,
}

fn path_to_vec(p: &Option<Rc<PathNode>>) -> Vec<Vertex> {
    let mut out = Vec::new();
    let mut cur = p.clone();
    while let Some(n) = cur {
        out.push(n.v);
        cur = n.parent.clone();
    }
    out.reverse();
    out
}

struct State {
    f: u32,
    g: u32,
    depth: u32,
    seq: u64,
    path: Option<Rc<PathNode>>,
    eliminated: VertexSet,
    prev: Option<Vertex>,
    swap_with_prev: VertexSet,
    forced: bool,
}

impl State {
    fn cmp_key(&self) -> (u32, std::cmp::Reverse<u32>, u64) {
        (self.f, std::cmp::Reverse(self.depth), self.seq)
    }
}
impl PartialEq for State {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_key() == other.cmp_key()
    }
}
impl Eq for State {}
impl PartialOrd for State {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for State {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.cmp_key().cmp(&self.cmp_key())
    }
}

/// Computes `ghw(h)` with A*. Returns `None` when some vertex lies in no
/// hyperedge. Within budget the result is exact; otherwise `lower` is the
/// largest visited `f`.
///
/// With `cfg.shared` set, the open-list threshold is the shared
/// [`Incumbent`](crate::Incumbent)'s upper bound and the rising min-`f` is
/// published as a proven ghw lower bound; with `cfg.cover_cache` set, bag
/// covers are memoized in the shared cache.
pub fn astar_ghw(h: &Hypergraph, cfg: &SearchConfig) -> Option<SearchOutcome> {
    if !h.covers_all_vertices() {
        return None;
    }
    let n = h.num_vertices();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut stats = SearchStats::default();
    let inc = cfg.incumbent();
    if n == 0 {
        inc.offer_upper(0, &[]);
        inc.mark_exact();
        return Some(SearchOutcome {
            lower: 0,
            upper: 0,
            exact: true,
            ordering: Some(EliminationOrdering::identity(0)),
            stats,
        });
    }
    let cache = cfg.cover_cache.clone().unwrap_or_else(|| {
        std::sync::Arc::new(match &cfg.memory_budget {
            Some(m) => htd_setcover::CoverCache::with_budget(std::sync::Arc::clone(m)),
            None => htd_setcover::CoverCache::new(),
        })
    });
    let g = h.primal_graph();
    let mut ev = GhwEvaluator::with_cache(h, CoverStrategy::Exact, std::sync::Arc::clone(&cache));
    let cands = [
        min_fill(&g, &mut rng).ordering,
        min_degree(&g, &mut rng).ordering,
    ];
    for c in &cands {
        if let Some(w) = ev.width(c.as_slice()) {
            offer_traced(&inc, &cfg.tracer, WHO, w, c.as_slice());
        }
    }
    let lb0 = htd_heuristics::ghw_lower_bound(h, &mut rng);
    raise_traced(&inc, &cfg.tracer, WHO, lb0);
    let finish =
        |lower: u32, upper: u32, exact: bool, order: Option<Vec<Vertex>>, stats: SearchStats| {
            Some(SearchOutcome {
                lower,
                upper,
                exact,
                ordering: order.map(EliminationOrdering::new_unchecked),
                stats,
            })
        };
    if lb0 >= inc.upper() {
        let ub = inc.upper();
        inc.mark_exact();
        return finish(ub, ub, true, inc.best_order(), stats);
    }

    let mut ctx = GhwContext::with_cache(h, cache);
    let mut budget = Budget::new(cfg, "astar");
    let mut queue: BinaryHeap<State> = BinaryHeap::new();
    let mut seen: HashMap<Vec<u64>, u32> = HashMap::new();
    let mut seq = 0u64;
    queue.push(State {
        f: lb0,
        g: 0,
        depth: 0,
        seq,
        path: None,
        eliminated: VertexSet::new(n),
        prev: None,
        swap_with_prev: VertexSet::new(n),
        forced: false,
    });

    let mut eg = EliminationGraph::new(&g);
    let mut current_path: Vec<Vertex> = Vec::new();
    let mut global_lb = lb0;

    while let Some(s) = queue.pop() {
        // aggregate-only hot-path span (see astar_tw)
        let _sp_expand = htd_trace::span!("astar.expand");
        let ub = inc.upper();
        if s.f >= ub {
            break;
        }
        if !budget.tick() {
            stats.expanded = budget.expanded - 1;
            stats.elapsed = budget.elapsed();
            stats.max_queue = stats.max_queue.max(queue.len());
            // cancellation may itself have been a sibling's exact proof
            let exact = inc.is_exact();
            let upper = inc.upper();
            return finish(
                if exact { upper } else { global_lb.min(upper) },
                upper,
                exact,
                inc.best_order(),
                stats,
            );
        }
        global_lb = global_lb.max(s.f);
        // min over open f is a valid lower bound on min(ghw, ub) (§5.3)
        raise_traced(&inc, &cfg.tracer, WHO, global_lb.min(ub));
        let target = path_to_vec(&s.path);
        let common = current_path
            .iter()
            .zip(&target)
            .take_while(|(a, b)| a == b)
            .count();
        eg.undo_to(common);
        current_path.truncate(common);
        for &v in &target[common..] {
            eg.eliminate(v);
            current_path.push(v);
        }
        // goal test: the whole remainder can be covered within width g
        // (greedy suffices: it only has to certify achievability)
        let goal = match ctx.cover_greedy(eg.alive()) {
            Some(c) => c <= s.g || eg.num_alive() == 0,
            None => false,
        };
        if goal {
            let mut order = target;
            order.extend(eg.alive().iter());
            stats.expanded = budget.expanded;
            stats.elapsed = budget.elapsed();
            stats.max_queue = stats.max_queue.max(queue.len());
            offer_traced(&inc, &cfg.tracer, WHO, s.g, &order);
            inc.mark_exact();
            return finish(s.g, s.g, true, Some(order), stats);
        }
        let _sp_eval = htd_trace::span!("astar.evaluate");
        let (children, forced_child) = if cfg.use_reductions {
            match ctx.find_ghw_reducible(&eg) {
                Some(v) => (vec![v], true),
                None => (eg.alive().to_vec(), false),
            }
        } else {
            (eg.alive().to_vec(), false)
        };
        for v in children {
            if cfg.use_pr2 && !s.forced && !forced_child {
                if let Some(prev) = s.prev {
                    if !keep_child(prev, v, s.swap_with_prev.contains(v)) {
                        stats.pruned += 1;
                        continue;
                    }
                }
            }
            let swap_set = if cfg.use_pr2 {
                let mut set = VertexSet::new(n);
                for u in eg.alive().iter() {
                    if u != v && GhwContext::swappable_ghw(&eg, v, u) {
                        set.insert(u);
                    }
                }
                set
            } else {
                VertexSet::new(n)
            };
            let bag = eg.bag(v);
            let Some(bag_cover) = ctx.cover_exact(&bag) else {
                continue;
            };
            let mark = eg.log_len();
            eg.eliminate(v);
            let t_g = s.g.max(bag_cover);
            let t_h = ctx.node_lower_bound(&eg, &mut rng).max(lb0);
            let t_f = t_g.max(t_h).max(s.f);
            if t_f < ub {
                let mut eliminated = s.eliminated.clone();
                eliminated.insert(v);
                let dominated = if cfg.use_duplicate_detection {
                    match seen.get_mut(eliminated.blocks()) {
                        Some(best) if *best <= t_g => true,
                        Some(best) => {
                            *best = t_g;
                            false
                        }
                        None => {
                            // account the closed-set entry; a failed charge
                            // latches the budget and the next tick degrades
                            budget.charge((eliminated.blocks().len() * 8 + 48) as u64);
                            seen.insert(eliminated.blocks().to_vec(), t_g);
                            false
                        }
                    }
                } else {
                    false
                };
                if !dominated {
                    // account the open-list node; never drop a push — the
                    // drained-queue exactness proof needs every child queued
                    budget.charge((eliminated.blocks().len() * 16 + 80) as u64);
                    seq += 1;
                    stats.generated += 1;
                    queue.push(State {
                        f: t_f,
                        g: t_g,
                        depth: s.depth + 1,
                        seq,
                        path: Some(Rc::new(PathNode {
                            v,
                            parent: s.path.clone(),
                        })),
                        eliminated,
                        prev: Some(v),
                        swap_with_prev: swap_set,
                        forced: forced_child,
                    });
                } else {
                    stats.pruned += 1;
                }
            } else {
                stats.pruned += 1;
            }
            eg.undo_to(mark);
        }
        stats.max_queue = stats.max_queue.max(queue.len());
    }
    stats.expanded = budget.expanded;
    stats.elapsed = budget.elapsed();
    inc.mark_exact();
    let ub = inc.upper();
    finish(ub, ub, true, inc.best_order(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use htd_core::ordering::exhaustive_ghw;
    use htd_hypergraph::gen;

    fn exact(h: &Hypergraph, cfg: &SearchConfig) -> u32 {
        let out = astar_ghw(h, cfg).expect("coverable");
        assert!(out.exact, "expected exact");
        let mut ev = GhwEvaluator::new(h, CoverStrategy::Exact);
        let achieved = ev.width(out.ordering.as_ref().unwrap().as_slice()).unwrap();
        assert!(achieved <= out.upper);
        out.upper
    }

    #[test]
    fn known_families() {
        let cfg = SearchConfig::default();
        let th = Hypergraph::new(6, vec![vec![0, 1, 2], vec![0, 4, 5], vec![2, 3, 4]]);
        assert_eq!(exact(&th, &cfg), 2);
        assert_eq!(exact(&gen::clique_hypergraph(6), &cfg), 3);
        let chain = Hypergraph::new(5, vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4]]);
        assert_eq!(exact(&chain, &cfg), 1);
    }

    #[test]
    fn matches_exhaustive_all_toggle_combinations() {
        for seed in 0..8u64 {
            let h = gen::random_uniform(7, 8, 3, seed);
            if !h.covers_all_vertices() {
                continue;
            }
            let truth = exhaustive_ghw(&h).unwrap();
            for pr2 in [false, true] {
                for red in [false, true] {
                    for dup in [false, true] {
                        let cfg = SearchConfig {
                            use_pr2: pr2,
                            use_reductions: red,
                            use_duplicate_detection: dup,
                            ..SearchConfig::default()
                        };
                        assert_eq!(
                            exact(&h, &cfg),
                            truth,
                            "seed {seed} pr2={pr2} red={red} dup={dup}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn agrees_with_bb_ghw() {
        for seed in 10..16u64 {
            let h = gen::random_uniform(8, 9, 3, seed);
            if !h.covers_all_vertices() {
                continue;
            }
            let cfg = SearchConfig::default();
            let a = astar_ghw(&h, &cfg).unwrap();
            let b = crate::bb_ghw::bb_ghw(&h, &cfg).unwrap();
            assert!(a.exact && b.exact);
            assert_eq!(a.upper, b.upper, "seed {seed}");
        }
    }

    #[test]
    fn uncoverable_returns_none() {
        let h = Hypergraph::new(2, vec![vec![0]]);
        assert!(astar_ghw(&h, &SearchConfig::default()).is_none());
    }

    #[test]
    fn budget_exhaustion_reports_bounds() {
        let h = gen::grid2d(6);
        let out = astar_ghw(&h, &SearchConfig::budgeted(10)).unwrap();
        assert!(out.lower <= out.upper);
        assert!(out.lower >= 1);
    }
}
