//! Balanced-separator nested dissection with parallel recursion.
//!
//! The BalancedGo scheme ("Fast Parallel Hypertree Decompositions in
//! Logarithmic Recursion Depth") brought parallelism *inside* a single
//! solve: find a balanced separator, split the instance into the
//! disconnected components it leaves behind, decompose the components in
//! parallel, and hang the component trees under the separator node. Every
//! split keeps each component at most a constant fraction of its part, so
//! the recursion depth is `O(log n)` and the work at each depth spreads
//! across a bounded pool of workers.
//!
//! This engine reproduces that scheme over elimination orderings, the
//! witness format shared by every other engine in the workspace: a nested
//! dissection of the vertex set — components first, their separator last,
//! recursively — *is* an elimination ordering, and evaluating it with the
//! standard evaluators yields a certified upper bound that the incumbent,
//! the `htd-check` oracle and the differential harness all understand
//! unchanged.
//!
//! Separator candidates are BFS layers of the part, optionally widened to
//! a union of few hyperedges by a greedy set cover of the layer
//! ([`htd_setcover::greedy_cover`]) — a separator that few hyperedges
//! cover keeps the ghw of the bags it lands in small. The recursion runs
//! level-synchronously: all parts at one depth split concurrently on a
//! pool bounded by the portfolio's thread budget
//! ([`EngineContext::pool_threads`]); the memory governor and the node
//! budget are observed per worker through the standard [`Budget`], so a
//! truncated run still returns a complete (if coarser) ordering.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use htd_core::ordering::{CoverStrategy, GhwEvaluator, TwEvaluator};
use htd_hypergraph::{Graph, Hypergraph, Vertex, VertexSet};
use htd_setcover::greedy_cover;
use htd_trace::Event;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::{Budget, SearchConfig};
use crate::incumbent::{offer_traced, Incumbent};
use crate::portfolio::{blank_report, EngineReport, Objective};
use crate::registry::{Engine, EngineContext};

const WHO: &str = "balsep";

/// Parts at or below this size are ordered directly with min-fill.
const LEAF_SIZE: u32 = 32;
/// A separator is balanced when every component it leaves keeps at most
/// `ALPHA_NUM/ALPHA_DEN` of the part it split.
const ALPHA_NUM: u32 = 3;
const ALPHA_DEN: u32 = 4;
/// BFS roots tried per part when hunting for a separator.
const ROOTS: usize = 3;
/// Construction rounds (fresh seeds) per engine run.
const ROUNDS: u64 = 4;

/// The registry's `run` entry for the balsep engine.
pub(crate) fn run_spec(ctx: &EngineContext<'_>) -> EngineReport {
    let start = Instant::now();
    let mut report = blank_report(Engine::BalSep);
    let g = ctx.problem.graph();
    let n = g.num_vertices();
    if n == 0 {
        report.stats.elapsed = start.elapsed();
        return report;
    }
    let h = ctx.problem.hypergraph();
    let ghw = ctx.problem.objective() == Objective::GeneralizedHypertreeWidth;
    let expanded = AtomicU64::new(0);
    for round in 0..ROUNDS {
        if ctx.inc.is_cancelled() {
            break;
        }
        if round > 0 {
            ctx.cfg.tracer.emit(Event::RestartTriggered {
                worker: WHO,
                round: round as u32,
            });
        }
        let seed = ctx.cfg.seed ^ (round << 48) | 0xB5;
        let Some(order) = build_ordering(g, h, ctx.cfg, ctx.inc, ctx.pool_threads, seed, &expanded)
        else {
            break; // cancelled mid-construction
        };
        debug_assert_eq!(order.len() as u32, n, "nested dissection is a permutation");
        let width = {
            let _sp = htd_trace::span!("balsep.evaluate", &ctx.cfg.tracer);
            if ghw {
                let mut ev = GhwEvaluator::with_cache(
                    h.expect("validated"),
                    CoverStrategy::Greedy,
                    Arc::clone(ctx.greedy_cache),
                );
                match ev.width(&order) {
                    Some(w) => w,
                    None => continue, // uncoverable bag: validation forbids this
                }
            } else {
                TwEvaluator::new(g).width(&order)
            }
        };
        report.upper = report.upper.min(width);
        offer_traced(ctx.inc, &ctx.cfg.tracer, WHO, width, &order);
        report.stats.generated += 1;
    }
    report.stats.expanded = expanded.load(AtomicOrdering::Relaxed);
    report.stats.elapsed = start.elapsed();
    report
}

/// One node of the dissection tree: its children's vertices are eliminated
/// before `tail` (the node's separator, or a leaf's whole ordering).
struct NodePlan {
    tail: Vec<Vertex>,
    children: Vec<usize>,
}

/// How one part split.
enum Split {
    /// The part is ordered outright (small, budget-exhausted, or no
    /// useful separator exists).
    Leaf(Vec<Vertex>),
    /// The part splits into `comps` around `sep` (empty `sep` = the part
    /// was already disconnected).
    Cut {
        sep: Vec<Vertex>,
        comps: Vec<VertexSet>,
    },
}

/// Builds one nested-dissection elimination ordering, splitting all parts
/// of a recursion level concurrently. Returns `None` when cancelled.
fn build_ordering(
    g: &Graph,
    h: Option<&Hypergraph>,
    cfg: &SearchConfig,
    inc: &Arc<Incumbent>,
    pool_threads: usize,
    seed: u64,
    expanded: &AtomicU64,
) -> Option<Vec<Vertex>> {
    let n = g.num_vertices();
    // each balanced cut shrinks parts by >= 1/4; the slack absorbs
    // unbalanced cuts that still made progress before the cap leafs out
    let max_depth = 2 * (32 - n.leading_zeros()) + 8;
    let mut nodes: Vec<NodePlan> = vec![NodePlan {
        tail: Vec::new(),
        children: Vec::new(),
    }];
    let mut frontier: Vec<(usize, VertexSet, u32)> = vec![(0, VertexSet::full(n), 0)];
    let stop = AtomicBool::new(false);
    while !frontier.is_empty() {
        if inc.is_cancelled() {
            return None;
        }
        // one span per recursion level of the dissection
        let _sp_level = htd_trace::span!("balsep.level", &cfg.tracer);
        let splits = process_level(
            g,
            h,
            cfg,
            pool_threads,
            seed,
            max_depth,
            &frontier,
            &stop,
            expanded,
        );
        let mut next = Vec::new();
        for ((node_id, _alive, depth), split) in frontier.iter().zip(splits) {
            match split {
                Split::Leaf(order) => nodes[*node_id].tail = order,
                Split::Cut { sep, comps } => {
                    nodes[*node_id].tail = sep;
                    for comp in comps {
                        let child = nodes.len();
                        nodes.push(NodePlan {
                            tail: Vec::new(),
                            children: Vec::new(),
                        });
                        nodes[*node_id].children.push(child);
                        next.push((child, comp, depth + 1));
                    }
                }
            }
        }
        frontier = next;
    }
    let mut order = Vec::with_capacity(n as usize);
    assemble(&nodes, 0, &mut order);
    Some(order)
}

/// Post-order walk: a node's components come out before its separator,
/// recursively — the nested-dissection elimination ordering.
fn assemble(nodes: &[NodePlan], idx: usize, out: &mut Vec<Vertex>) {
    for &c in &nodes[idx].children {
        assemble(nodes, c, out);
    }
    out.extend_from_slice(&nodes[idx].tail);
}

/// Splits every part of one recursion level, on up to `pool_threads`
/// workers. Tasks a lost worker leaves behind degrade to trivial leaves,
/// so the level always produces a complete answer.
#[allow(clippy::too_many_arguments)]
fn process_level(
    g: &Graph,
    h: Option<&Hypergraph>,
    cfg: &SearchConfig,
    pool_threads: usize,
    seed: u64,
    max_depth: u32,
    frontier: &[(usize, VertexSet, u32)],
    stop: &AtomicBool,
    expanded: &AtomicU64,
) -> Vec<Split> {
    let workers = pool_threads.min(frontier.len()).max(1);
    if workers == 1 {
        let mut budget = Budget::new(cfg, WHO);
        let splits = frontier
            .iter()
            .map(|task| split_task(g, h, seed, max_depth, task, stop, &mut budget))
            .collect();
        expanded.fetch_add(budget.expanded, AtomicOrdering::Relaxed);
        return splits;
    }
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, Split)>> = Mutex::new(Vec::with_capacity(frontier.len()));
    let _ = crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| {
                htd_trace::set_worker(WHO);
                let mut budget = Budget::new(cfg, WHO);
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, AtomicOrdering::Relaxed);
                    if i >= frontier.len() {
                        break;
                    }
                    local.push((
                        i,
                        split_task(g, h, seed, max_depth, &frontier[i], stop, &mut budget),
                    ));
                }
                expanded.fetch_add(budget.expanded, AtomicOrdering::Relaxed);
                done.lock().expect("level results").extend(local);
            });
        }
    });
    let mut slots: Vec<Option<Split>> = (0..frontier.len()).map(|_| None).collect();
    for (i, split) in done.into_inner().expect("level results") {
        slots[i] = Some(split);
    }
    slots
        .into_iter()
        .enumerate()
        // a slot a panicked worker abandoned still gets a valid ordering
        .map(|(i, s)| s.unwrap_or_else(|| Split::Leaf(frontier[i].1.to_vec())))
        .collect()
}

/// Decides how one part splits: already disconnected → cut on the empty
/// separator; small / capped / out of budget → leaf; otherwise the best
/// separator candidate from BFS layers and their set-cover widenings.
#[allow(clippy::too_many_arguments)]
fn split_task(
    g: &Graph,
    h: Option<&Hypergraph>,
    seed: u64,
    max_depth: u32,
    task: &(usize, VertexSet, u32),
    stop: &AtomicBool,
    budget: &mut Budget,
) -> Split {
    let (node_id, alive, depth) = task;
    if !budget.tick() {
        stop.store(true, AtomicOrdering::Relaxed);
    }
    if stop.load(AtomicOrdering::Relaxed) {
        // out of budget: finish the ordering cheaply, don't search
        return Split::Leaf(alive.to_vec());
    }
    let mut rng = StdRng::seed_from_u64(seed ^ ((*node_id as u64) << 8) | 1);
    let comps = components_within(g, h, alive);
    if comps.len() > 1 {
        return Split::Cut {
            sep: Vec::new(),
            comps,
        };
    }
    if alive.len() <= LEAF_SIZE || *depth >= max_depth {
        return Split::Leaf(leaf_order(g, alive, &mut rng));
    }
    // a new level of parts retains about one bitset per component; charge
    // the expansion before doing it
    let part_bytes = (alive.capacity() as u64 / 8 + 16) * 4;
    if !budget.charge(part_bytes) {
        stop.store(true, AtomicOrdering::Relaxed);
        return Split::Leaf(alive.to_vec());
    }

    // candidate separators: per BFS root, a balanced layer and (when a
    // hypergraph is present) its greedy-cover widening
    let _sp = htd_trace::span!("balsep.search");
    let total = alive.len();
    let av: Vec<Vertex> = alive.to_vec();
    // score: balanced first, then thinner separator, then smaller parts
    type Candidate = (bool, u32, u32, Vec<Vertex>, Vec<VertexSet>);
    let mut best: Option<Candidate> = None;
    for _ in 0..ROOTS {
        let root = av[rng.gen_range(0..av.len())];
        let layers = bfs_layers(g, alive, root);
        if layers.len() < 2 {
            continue; // the part is a single clique ball: no layer cuts it
        }
        for layer in candidate_layers(&layers, total) {
            let mut cands: Vec<VertexSet> = vec![layer.clone()];
            if let Some(h) = h {
                let _sp = htd_trace::span!("balsep.widen");
                if let Some(cover) = greedy_cover(layer, h.edges()) {
                    let mut widened = VertexSet::new(alive.capacity());
                    for e in cover {
                        widened.union_with(h.edge(e));
                    }
                    widened.intersect_with(alive);
                    cands.push(widened);
                }
            }
            for sep in cands {
                if sep.len() >= total {
                    continue;
                }
                let rest = alive.difference(&sep);
                let comps = components_within(g, h, &rest);
                let Some(max_comp) = comps.iter().map(|c| c.len()).max() else {
                    continue;
                };
                let balanced = max_comp * ALPHA_DEN <= total * ALPHA_NUM;
                let key = (!balanced, sep.len(), max_comp);
                if best
                    .as_ref()
                    .map_or(true, |(b, s, m, _, _)| key < (!b, *s, *m))
                {
                    best = Some((balanced, sep.len(), max_comp, sep.to_vec(), comps));
                }
            }
        }
    }
    match best {
        // an unbalanced cut still recurses if it sheds at least 1/8 of the
        // part — the depth cap bounds the damage; below that, min-fill
        // does better than a degenerate dissection
        Some((balanced, _, max_comp, sep, comps)) if balanced || max_comp * 8 <= total * 7 => {
            Split::Cut { sep, comps }
        }
        _ => Split::Leaf(leaf_order(g, alive, &mut rng)),
    }
}

/// Connected components of `within`, through hyperedges when the problem
/// has them, else through primal adjacency (identical partitions).
fn components_within(g: &Graph, h: Option<&Hypergraph>, within: &VertexSet) -> Vec<VertexSet> {
    match h {
        Some(h) => h.connected_components_within(within),
        None => g.connected_components_within(within),
    }
}

/// BFS layers of `alive` from `root` (layer 0 = `{root}`); stops at the
/// component's edge, which for the callers equals `alive` itself.
fn bfs_layers(g: &Graph, alive: &VertexSet, root: Vertex) -> Vec<VertexSet> {
    let n = g.num_vertices();
    let mut seen = VertexSet::new(n);
    seen.insert(root);
    let mut cur = VertexSet::new(n);
    cur.insert(root);
    let mut layers = Vec::new();
    while !cur.is_empty() {
        let mut nxt = VertexSet::new(n);
        for v in cur.iter() {
            nxt.union_with(g.neighbors(v));
        }
        nxt.intersect_with(alive);
        nxt.difference_with(&seen);
        seen.union_with(&nxt);
        layers.push(cur);
        cur = nxt;
    }
    layers
}

/// Layer candidates worth cutting on: the thinnest balanced interior
/// layer, plus the layer at the cumulative midpoint as a fallback.
fn candidate_layers(layers: &[VertexSet], total: u32) -> Vec<&VertexSet> {
    let mut thinnest: Option<(u32, usize)> = None;
    let mut midpoint = layers.len() / 2;
    let mut before = 0u32;
    for (i, layer) in layers.iter().enumerate() {
        let after = total - before - layer.len();
        if before + layer.len() > total / 2 && before <= total / 2 {
            midpoint = i;
        }
        let balanced =
            before * ALPHA_DEN <= total * ALPHA_NUM && after * ALPHA_DEN <= total * ALPHA_NUM;
        if i > 0 && balanced && thinnest.map_or(true, |(sz, _)| layer.len() < sz) {
            thinnest = Some((layer.len(), i));
        }
        before += layer.len();
    }
    let mut picks = vec![midpoint.min(layers.len() - 1)];
    if let Some((_, i)) = thinnest {
        if !picks.contains(&i) {
            picks.push(i);
        }
    }
    picks.into_iter().map(|i| &layers[i]).collect()
}

/// Orders a leaf part with min-fill on its induced subgraph, mapped back
/// to original vertex ids.
fn leaf_order(g: &Graph, alive: &VertexSet, rng: &mut StdRng) -> Vec<Vertex> {
    if alive.len() <= 2 {
        return alive.to_vec();
    }
    let _sp = htd_trace::span!("balsep.leaf");
    let (sub, map) = g.induced_subgraph(alive);
    let ho = htd_heuristics::upper::min_fill(&sub, rng);
    ho.ordering
        .as_slice()
        .iter()
        .map(|&v| map[v as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::portfolio::{solve, Problem};
    use htd_hypergraph::gen;

    fn balsep_cfg(threads: usize) -> SearchConfig {
        SearchConfig::default()
            .with_engines(vec![Engine::BalSep])
            .with_threads(threads)
    }

    #[test]
    fn produces_a_valid_ordering_on_grids() {
        let g = gen::grid_graph(8, 8);
        let out = solve(&Problem::treewidth(g.clone()), &balsep_cfg(2)).unwrap();
        let w = out.upper;
        assert!(w < u32::MAX, "balsep found an upper bound");
        // the witness must achieve the claimed width
        let mut ev = htd_core::ordering::TwEvaluator::new(&g);
        assert!(ev.width(out.witness.expect("witness").as_slice()) <= w);
        // nested dissection on an 8x8 grid stays in the right ballpark
        // (tw = 8; min-fill leaves alone would find ~8-10)
        assert!((8..=16).contains(&w), "width {w}");
    }

    #[test]
    fn ghw_orderings_are_sound_and_agree_with_portfolio_on_thesis_example() {
        let h = Hypergraph::new(6, vec![vec![0, 1, 2], vec![0, 4, 5], vec![2, 3, 4]]);
        let bal = solve(&Problem::ghw(h.clone()), &balsep_cfg(2)).unwrap();
        assert!(bal.upper >= 2, "cannot beat the optimum");
        let exact = solve(&Problem::ghw(h), &SearchConfig::default()).unwrap();
        assert_eq!(exact.exact_width(), Some(2));
        assert!(bal.upper >= exact.upper);
    }

    #[test]
    fn disconnected_instances_split_on_the_empty_separator() {
        // two disjoint 4x4 grids
        let a = gen::grid_graph(4, 4);
        let n = a.num_vertices();
        let mut edges: Vec<(u32, u32)> = a.edges().collect();
        edges.extend(a.edges().map(|(u, v)| (u + n, v + n)));
        let g = Graph::from_edges(2 * n, edges);
        let out = solve(&Problem::treewidth(g.clone()), &balsep_cfg(2)).unwrap();
        let w = out.upper;
        let mut ev = htd_core::ordering::TwEvaluator::new(&g);
        assert!(ev.width(out.witness.expect("witness").as_slice()) <= w);
        assert!((4..=8).contains(&w), "width {w}");
    }

    #[test]
    fn parallel_and_sequential_construction_agree() {
        let g = gen::queen_graph(6);
        let seq = solve(&Problem::treewidth(g.clone()), &balsep_cfg(1)).unwrap();
        let par = solve(&Problem::treewidth(g), &balsep_cfg(4)).unwrap();
        // same seeds, same splits: the construction is deterministic per
        // round regardless of worker count
        assert_eq!(seq.upper, par.upper);
    }

    #[test]
    fn respects_cancellation() {
        let g = gen::queen_graph(7);
        let inc = Arc::new(Incumbent::new());
        inc.cancel();
        let cfg = SearchConfig {
            shared: Some(Arc::clone(&inc)),
            ..balsep_cfg(2)
        };
        let out = solve(&Problem::treewidth(g), &cfg).unwrap();
        assert!(!out.exact);
    }
}
