//! The pluggable engine registry.
//!
//! Engines used to be a closed `enum` with hand-maintained `match` arms in
//! the portfolio, the trace attribution, the service metrics and the
//! differential harness. This module replaces that with an open registry:
//! an engine is anything implementing [`EngineSpec`], registered once under
//! a stable snake_case name, and everything downstream — launch order,
//! claim order under scarce worker slots, `htd-trace` worker labels,
//! per-engine `/metrics` series, `htd-check` differential arms — derives
//! from the registry instead of a hard-coded list.
//!
//! [`Engine`] is the cheap handle the rest of the workspace passes around:
//! a `Copy` wrapper over the engine's interned name. The historical enum
//! variants survive as associated constants (`Engine::BranchBound`, ...),
//! so lineups keep reading the way they always did.

use std::sync::Arc;

use htd_core::error::HtdError;
use htd_setcover::CoverCache;
use parking_lot::RwLock;

use crate::config::SearchConfig;
use crate::incumbent::Incumbent;
use crate::portfolio::{EngineReport, Objective, Problem};

/// A registered solver engine, identified by its interned name.
///
/// Equality and hashing are by name, so handles obtained from the registry,
/// from [`Engine::from_name`] and from the associated constants all compare
/// equal for the same engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Engine(&'static str);

#[allow(non_upper_case_globals)]
impl Engine {
    /// Greedy upper-bound heuristics (min-fill / min-degree / MCS) plus
    /// iterated local search — fast first incumbents.
    pub const Heuristic: Engine = Engine("heuristic");
    /// Dedicated lower-bound worker (minor-min-width / tw-ksc families).
    pub const LowerBound: Engine = Engine("lower_bound");
    /// Depth-first branch and bound over elimination orderings.
    pub const BranchBound: Engine = Engine("branch_bound");
    /// Best-first A* over elimination orderings.
    pub const AStar: Engine = Engine("astar");
    /// Balanced-separator nested dissection with parallel recursion on
    /// disconnected components (log-depth, BalancedGo-style).
    pub const BalSep: Engine = Engine("balsep");
    /// Genetic algorithm upper-bound worker.
    pub const Genetic: Engine = Engine("genetic");
    /// Simulated-annealing upper-bound worker.
    pub const Annealing: Engine = Engine("annealing");
}

impl Engine {
    /// The stable snake_case name used in JSON reports, trace events and
    /// metric labels.
    pub fn name(self) -> &'static str {
        self.0
    }

    /// Looks the name up in the registry. Unlike the closed-enum days,
    /// this resolves every registered engine, including ones added at
    /// runtime through [`register_engine`].
    pub fn from_name(name: &str) -> Option<Engine> {
        store()
            .read()
            .iter()
            .find(|s| s.name() == name)
            .map(|s| Engine(s.name()))
    }

    /// The default portfolio lineup, in launch order: every registered
    /// engine flagged for the default lineup, sorted by launch rank.
    pub fn default_lineup() -> Vec<Engine> {
        let specs = store().read();
        let mut lineup: Vec<&Arc<dyn EngineSpec>> =
            specs.iter().filter(|s| s.in_default_lineup()).collect();
        lineup.sort_by_key(|s| s.launch_rank());
        lineup.iter().map(|s| Engine(s.name())).collect()
    }

    /// This engine's spec, if it is (still) registered.
    pub fn spec(self) -> Option<Arc<dyn EngineSpec>> {
        store().read().iter().find(|s| s.name() == self.0).cloned()
    }
}

/// Everything an engine gets handed for one run: the instance, the budgets,
/// the shared incumbent it offers bounds to, the shared greedy cover cache,
/// and the portfolio's thread budget (for engines that parallelize
/// internally — the pool they spawn must stay within this bound).
pub struct EngineContext<'a> {
    /// The instance and objective.
    pub problem: &'a Problem,
    /// Budgets, toggles, tracer, memory governor. `num_threads` is always 1
    /// here — worker threads are the portfolio's business; see
    /// [`EngineContext::pool_threads`].
    pub cfg: &'a SearchConfig,
    /// The shared anytime state this engine offers bounds to.
    pub inc: &'a Arc<Incumbent>,
    /// Run-wide greedy cover cache (ghw fitness evaluations).
    pub greedy_cache: &'a Arc<CoverCache>,
    /// The whole run's thread budget: engines with internal parallelism
    /// (balsep) bound their own worker pools by this.
    pub pool_threads: usize,
}

/// A pluggable solver engine.
///
/// Implementations are registered with [`register_engine`] and from then on
/// participate in everything derived from the registry: `Engine::from_name`
/// (hence CLI `--engines` and the service request field), the default
/// lineup, portfolio claim order, trace attribution and per-engine metrics.
pub trait EngineSpec: Send + Sync {
    /// Stable snake_case identifier; doubles as the trace/metric label.
    /// Must be unique across the registry and live for the program
    /// (registration interns the handle by this `&'static str`).
    fn name(&self) -> &'static str;

    /// Whether this engine can solve the given objective.
    fn supports(&self, objective: Objective) -> bool;

    /// Position in the default launch lineup (lower launches earlier).
    fn launch_rank(&self) -> u32;

    /// Priority when worker slots are scarcer than the lineup (lower
    /// claims a slot first).
    fn claim_rank(&self) -> u32;

    /// Whether [`Engine::default_lineup`] includes this engine. Engines
    /// registered by downstream crates may prefer opt-in (`false`):
    /// they then run only when named explicitly.
    fn in_default_lineup(&self) -> bool {
        true
    }

    /// Whether the `htd-check` differential harness gives this engine its
    /// own single-engine arm. Defaults to `true`; the cheap bracketing
    /// heuristics (which run as one combined arm) and the stochastic
    /// metaheuristics (budget-hungry, upper-bound-only) opt out.
    fn differential_arm(&self) -> bool {
        true
    }

    /// Runs the engine to completion (or cooperative cancellation),
    /// offering every bound it proves to `ctx.inc`.
    fn run(&self, ctx: &EngineContext<'_>) -> EngineReport;
}

fn store() -> &'static RwLock<Vec<Arc<dyn EngineSpec>>> {
    static STORE: std::sync::OnceLock<RwLock<Vec<Arc<dyn EngineSpec>>>> =
        std::sync::OnceLock::new();
    STORE.get_or_init(|| RwLock::new(builtin_specs()))
}

/// Registers an engine, returning its handle. Fails if the name is taken.
pub fn register_engine(spec: Arc<dyn EngineSpec>) -> Result<Engine, HtdError> {
    let mut specs = store().write();
    if specs.iter().any(|s| s.name() == spec.name()) {
        return Err(HtdError::Invalid(format!(
            "engine '{}' is already registered",
            spec.name()
        )));
    }
    let handle = Engine(spec.name());
    specs.push(spec);
    Ok(handle)
}

/// A snapshot of every registered engine spec, in registration order
/// (builtins first, in launch-rank order).
pub fn engine_specs() -> Vec<Arc<dyn EngineSpec>> {
    store().read().clone()
}

/// The names of every registered engine, in launch-rank order — the list
/// surfaced by `--engines` errors and the service's unknown-engine reply.
pub fn registered_engine_names() -> Vec<&'static str> {
    let specs = store().read();
    let mut named: Vec<(u32, &'static str)> =
        specs.iter().map(|s| (s.launch_rank(), s.name())).collect();
    named.sort();
    named.into_iter().map(|(_, n)| n).collect()
}

/// Every registered engine in claim order: when the portfolio has fewer
/// worker slots than lineup engines, the lowest claim ranks win the slots.
pub(crate) fn claim_order() -> Vec<Engine> {
    let specs = store().read();
    let mut ranked: Vec<(u32, &'static str)> =
        specs.iter().map(|s| (s.claim_rank(), s.name())).collect();
    ranked.sort();
    ranked.into_iter().map(|(_, n)| Engine(n)).collect()
}

/// Resolves a list of engine names against the registry; the error names
/// every unknown engine and lists what is registered.
pub fn engines_from_names<S: AsRef<str>>(names: &[S]) -> Result<Vec<Engine>, HtdError> {
    let mut engines = Vec::with_capacity(names.len());
    let mut unknown: Vec<&str> = Vec::new();
    for n in names {
        match Engine::from_name(n.as_ref()) {
            Some(e) => engines.push(e),
            None => unknown.push(n.as_ref()),
        }
    }
    if !unknown.is_empty() {
        return Err(HtdError::Unsupported(format!(
            "unknown engine{} '{}'; registered engines: {}",
            if unknown.len() > 1 { "s" } else { "" },
            unknown.join("', '"),
            registered_engine_names().join(", ")
        )));
    }
    Ok(engines)
}

/// The built-in engines as one declarative table — the registry's seed.
/// Adding a builtin means adding a row here, not a match arm anywhere.
struct Builtin {
    name: &'static str,
    launch_rank: u32,
    claim_rank: u32,
    diff_arm: bool,
    run: fn(&EngineContext<'_>) -> EngineReport,
}

impl EngineSpec for Builtin {
    fn name(&self) -> &'static str {
        self.name
    }

    fn supports(&self, objective: Objective) -> bool {
        // every builtin searches elimination orderings, which witness both
        // tw and ghw; hw (det-k-decomp) takes the dedicated solve_hw path
        matches!(
            objective,
            Objective::Treewidth | Objective::GeneralizedHypertreeWidth
        )
    }

    fn launch_rank(&self) -> u32 {
        self.launch_rank
    }

    fn claim_rank(&self) -> u32 {
        self.claim_rank
    }

    fn differential_arm(&self) -> bool {
        self.diff_arm
    }

    fn run(&self, ctx: &EngineContext<'_>) -> EngineReport {
        (self.run)(ctx)
    }
}

fn builtin_specs() -> Vec<Arc<dyn EngineSpec>> {
    // claim order preserves the historical priority (branch_bound, astar,
    // heuristic, lower_bound, ...) with balsep slotted after lower_bound,
    // so small-slot portfolios behave exactly as before this registry.
    let rows = [
        Builtin {
            name: "heuristic",
            launch_rank: 0,
            claim_rank: 2,
            diff_arm: false,
            run: crate::portfolio::run_heuristic_spec,
        },
        Builtin {
            name: "lower_bound",
            launch_rank: 1,
            claim_rank: 3,
            diff_arm: false,
            run: crate::portfolio::run_lower_bound_spec,
        },
        Builtin {
            name: "branch_bound",
            launch_rank: 2,
            claim_rank: 0,
            diff_arm: true,
            run: crate::portfolio::run_branch_bound_spec,
        },
        Builtin {
            name: "astar",
            launch_rank: 3,
            claim_rank: 1,
            diff_arm: true,
            run: crate::portfolio::run_astar_spec,
        },
        Builtin {
            name: "balsep",
            launch_rank: 4,
            claim_rank: 4,
            diff_arm: true,
            run: crate::balsep::run_spec,
        },
        Builtin {
            name: "genetic",
            launch_rank: 5,
            claim_rank: 5,
            diff_arm: false,
            run: crate::portfolio::run_genetic_spec,
        },
        Builtin {
            name: "annealing",
            launch_rank: 6,
            claim_rank: 6,
            diff_arm: false,
            run: crate::portfolio::run_annealing_spec,
        },
    ];
    rows.into_iter()
        .map(|b| Arc::new(b) as Arc<dyn EngineSpec>)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SearchStats;

    #[test]
    fn handles_compare_by_name() {
        assert_eq!(
            Engine::BranchBound,
            Engine::from_name("branch_bound").unwrap()
        );
        assert_eq!(Engine::BranchBound.name(), "branch_bound");
        assert_ne!(Engine::BranchBound, Engine::AStar);
        assert!(Engine::from_name("no_such_engine").is_none());
    }

    #[test]
    fn default_lineup_is_launch_ranked_and_registry_driven() {
        let lineup = Engine::default_lineup();
        assert_eq!(
            lineup,
            vec![
                Engine::Heuristic,
                Engine::LowerBound,
                Engine::BranchBound,
                Engine::AStar,
                Engine::BalSep,
                Engine::Genetic,
                Engine::Annealing,
            ]
        );
        // claim order starts with the exact searches, as it always did
        let claim = claim_order();
        assert_eq!(
            &claim[..4],
            &[
                Engine::BranchBound,
                Engine::AStar,
                Engine::Heuristic,
                Engine::LowerBound
            ]
        );
    }

    #[test]
    fn unknown_names_error_lists_the_registry() {
        let err = engines_from_names(&["balsep", "warp_drive"]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("warp_drive"), "{msg}");
        assert!(msg.contains("branch_bound"), "{msg}");
        assert!(msg.contains("balsep"), "{msg}");
        let ok = engines_from_names(&["astar", "balsep"]).unwrap();
        assert_eq!(ok, vec![Engine::AStar, Engine::BalSep]);
    }

    #[test]
    fn runtime_registration_extends_every_derived_view() {
        struct Null;
        impl EngineSpec for Null {
            fn name(&self) -> &'static str {
                "null_test_engine"
            }
            fn supports(&self, _o: Objective) -> bool {
                true
            }
            fn launch_rank(&self) -> u32 {
                100
            }
            fn claim_rank(&self) -> u32 {
                100
            }
            fn in_default_lineup(&self) -> bool {
                false
            }
            fn run(&self, _ctx: &EngineContext<'_>) -> EngineReport {
                EngineReport {
                    engine: Engine::from_name("null_test_engine").unwrap(),
                    lower: 0,
                    upper: u32::MAX,
                    exact: false,
                    panicked: false,
                    stats: SearchStats::default(),
                }
            }
        }
        // idempotent across test runs in one process: ignore "already
        // registered" from a sibling test
        let _ = register_engine(Arc::new(Null));
        let e = Engine::from_name("null_test_engine").expect("registered");
        assert_eq!(e.name(), "null_test_engine");
        assert!(
            !Engine::default_lineup().contains(&e),
            "opt-out engines stay out of the default lineup"
        );
        assert!(registered_engine_names().contains(&"null_test_engine"));
        assert!(register_engine(Arc::new(Null)).is_err(), "duplicate name");
    }
}
