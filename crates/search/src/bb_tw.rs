//! Depth-first branch and bound for treewidth (thesis §4.4, after
//! QuickBB [24] and BB-tw [5]).

use htd_core::ordering::EliminationOrdering;
use htd_heuristics::{lower::minor_min_width, reduce, upper::min_fill};
use htd_hypergraph::{EliminationGraph, Graph, Vertex, VertexSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::{Budget, SearchConfig, SearchOutcome, SearchStats};
use crate::incumbent::{offer_traced, raise_traced, Incumbent};
use crate::pruning::{keep_child, swappable};

const WHO: &str = "branch_bound";

/// Computes the treewidth of `g` by branch and bound over elimination
/// orderings. Within budget the result is exact; otherwise `lower`/`upper`
/// are valid anytime bounds.
///
/// With `cfg.shared` set, the search prunes against and publishes to the
/// shared [`Incumbent`], and stops early when it is cancelled.
///
/// ```
/// use htd_search::{bb_tw, SearchConfig};
/// use htd_hypergraph::gen;
/// let out = bb_tw(&gen::grid_graph(4, 4), &SearchConfig::default());
/// assert_eq!(out.exact_width(), Some(4));
/// ```
pub fn bb_tw(g: &Graph, cfg: &SearchConfig) -> SearchOutcome {
    let n = g.num_vertices();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let inc = cfg.incumbent();
    if n == 0 {
        inc.offer_upper(0, &[]);
        inc.mark_exact();
        return SearchOutcome {
            lower: 0,
            upper: 0,
            exact: true,
            ordering: Some(EliminationOrdering::identity(0)),
            stats: SearchStats::default(),
        };
    }
    // initial bounds
    let lb0 = htd_heuristics::combined_lower_bound(g, &mut rng);
    let h0 = min_fill(g, &mut rng);
    offer_traced(&inc, &cfg.tracer, WHO, h0.width, h0.ordering.as_slice());
    raise_traced(&inc, &cfg.tracer, WHO, lb0);
    if lb0 >= inc.upper() {
        let upper = inc.upper();
        inc.mark_exact();
        return SearchOutcome {
            lower: upper,
            upper,
            exact: true,
            ordering: inc.best_order().map(EliminationOrdering::new_unchecked),
            stats: SearchStats::default(),
        };
    }

    let mut budget = Budget::new(cfg, "branch_bound");
    let mut stats = SearchStats::default();
    let mut eg = EliminationGraph::new(g);
    let mut order: Vec<Vertex> = Vec::with_capacity(n as usize);
    let mut searcher = Searcher {
        cfg,
        rng,
        stats: &mut stats,
        inc: &inc,
    };
    // a cancelled run is still exact when cancellation *was* the exact
    // proof (this search or a sibling closed the gap)
    let _sp = htd_trace::span!("bb.search", &cfg.tracer);
    let completed = searcher.dfs(&mut eg, 0, &mut order, None, &mut budget, lb0) || inc.is_exact();
    stats.expanded = budget.expanded;
    stats.elapsed = budget.elapsed();
    if completed {
        inc.mark_exact();
    }
    let upper = inc.upper();
    SearchOutcome {
        lower: if completed {
            upper
        } else {
            inc.lower().min(upper)
        },
        upper,
        exact: completed,
        ordering: inc.best_order().map(EliminationOrdering::new_unchecked),
        stats,
    }
}

struct Searcher<'a> {
    cfg: &'a SearchConfig,
    rng: StdRng,
    stats: &'a mut SearchStats,
    inc: &'a Incumbent,
}

impl Searcher<'_> {
    /// Depth-first search. Returns `false` iff the budget was exhausted or
    /// the run cancelled somewhere below (result no longer guaranteed
    /// exact). Best-so-far lives in the incumbent, never in locals, so
    /// bounds found by sibling workers prune this search too.
    fn dfs(
        &mut self,
        eg: &mut EliminationGraph,
        g_width: u32,
        order: &mut Vec<Vertex>,
        // vertices swappable with the vertex eliminated to reach this node
        swap_with_prev: Option<(Vertex, VertexSet)>,
        budget: &mut Budget,
        lb0: u32,
    ) -> bool {
        if !budget.tick() {
            return false;
        }
        // one span per branching node; paths nest with recursion depth
        let _sp = htd_trace::span!("bb.branch");
        let remaining = eg.num_alive();
        if remaining == 0 {
            offer_traced(self.inc, &self.cfg.tracer, WHO, g_width, order);
            return true;
        }
        // PR1: any completion has width ≤ max(g, remaining-1); record it.
        let w = g_width.max(remaining - 1);
        if w < self.inc.upper() {
            let mut o = order.clone();
            o.extend(eg.alive().iter());
            offer_traced(self.inc, &self.cfg.tracer, WHO, w, &o);
        }
        if remaining - 1 <= g_width {
            return true; // subtree width is exactly g, already recorded
        }
        // node lower bound: h_sub bounds the *alive subgraph*'s treewidth;
        // any completion additionally costs at least g_width and lb0
        let sub = alive_graph(eg);
        let h_sub = minor_min_width(&sub, &mut self.rng);
        let f = g_width.max(h_sub).max(lb0);
        if f >= self.inc.upper() {
            self.stats.pruned += 1;
            return true;
        }
        // children: reduction-forced single child, or all alive vertices.
        // The almost-simplicial rule is only safe below a lower bound on
        // the alive subgraph's treewidth — not below f, whose g_width/lb0
        // parts say nothing about the subgraph.
        let (children, reduced) = if self.cfg.use_reductions {
            match reduce::find_reducible(eg, h_sub) {
                Some(v) => (vec![v], true),
                None => (sorted_children(eg), false),
            }
        } else {
            (sorted_children(eg), false)
        };
        let mut completed = true;
        for v in children {
            // PR2: skip children that are canonical-order duplicates
            if self.cfg.use_pr2 && !reduced {
                if let Some((prev, ref swap_set)) = swap_with_prev {
                    if !keep_child(prev, v, swap_set.contains(v)) {
                        self.stats.pruned += 1;
                        continue;
                    }
                }
            }
            // precompute swappability of v with the surviving vertices
            // (both alive here) for the child's own PR2 filter. A forced
            // (reduction) child must NOT seed the filter: its siblings
            // were never branched on, so the canonical-order argument
            // has no other branch to defer to.
            let swap_set = if self.cfg.use_pr2 && !reduced {
                let mut s = VertexSet::new(eg.capacity());
                for u in eg.alive().iter() {
                    if u != v && swappable(eg, v, u) {
                        s.insert(u);
                    }
                }
                Some((v, s))
            } else {
                None
            };
            let d = eg.degree(v);
            let log_mark = eg.log_len();
            eg.eliminate(v);
            order.push(v);
            self.stats.generated += 1;
            let child_g = g_width.max(d);
            if child_g < self.inc.upper() {
                completed &= self.dfs(eg, child_g, order, swap_set, budget, lb0);
            } else {
                self.stats.pruned += 1;
            }
            order.pop();
            eg.undo_to(log_mark);
            if !completed && (budget.expanded > self.cfg.max_nodes || self.inc.is_cancelled()) {
                break; // hard stop
            }
        }
        completed
    }
}

/// Alive vertices sorted by ascending degree (cheap value ordering:
/// low-degree vertices rarely hurt and find good incumbents early).
fn sorted_children(eg: &EliminationGraph) -> Vec<Vertex> {
    let mut vs: Vec<Vertex> = eg.alive().to_vec();
    vs.sort_by_key(|&v| eg.degree(v));
    vs
}

/// The subgraph induced by the alive vertices, renumbered.
pub(crate) fn alive_graph(eg: &EliminationGraph) -> Graph {
    let snap = eg.to_graph();
    snap.induced_subgraph(eg.alive()).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use htd_core::ordering::{exhaustive_tw, TwEvaluator};
    use htd_hypergraph::gen;

    fn exact(g: &Graph, cfg: &SearchConfig) -> u32 {
        let out = bb_tw(g, cfg);
        assert!(out.exact, "expected exact result");
        // the returned ordering must achieve the reported upper bound
        let o = out.ordering.as_ref().unwrap();
        let mut ev = TwEvaluator::new(g);
        assert!(ev.width(o.as_slice()) <= out.upper);
        out.upper
    }

    #[test]
    fn known_families() {
        let cfg = SearchConfig::default();
        assert_eq!(exact(&gen::path_graph(8), &cfg), 1);
        assert_eq!(exact(&gen::cycle_graph(8), &cfg), 2);
        assert_eq!(exact(&gen::complete_graph(7), &cfg), 6);
        assert_eq!(exact(&gen::grid_graph(3, 3), &cfg), 3);
        assert_eq!(exact(&gen::grid_graph(4, 4), &cfg), 4);
        assert_eq!(exact(&gen::random_ktree(16, 4, 3), &cfg), 4);
    }

    #[test]
    fn matches_exhaustive_all_toggle_combinations() {
        for seed in 0..12u64 {
            let g = gen::random_gnp(8, 0.4, seed);
            let truth = exhaustive_tw(&g);
            for pr2 in [false, true] {
                for red in [false, true] {
                    let cfg = SearchConfig {
                        use_pr2: pr2,
                        use_reductions: red,
                        ..SearchConfig::default()
                    };
                    let got = exact(&g, &cfg);
                    assert_eq!(
                        got, truth,
                        "seed {seed} pr2={pr2} red={red}: {got} != {truth}"
                    );
                }
            }
        }
    }

    #[test]
    fn queen5_is_18() {
        // the thesis's Table 5.1 reports tw(queen5_5) = 18
        let g = gen::queen_graph(5);
        let out = bb_tw(&g, &SearchConfig::default());
        assert!(out.exact);
        assert_eq!(out.upper, 18);
    }

    #[test]
    fn budget_exhaustion_gives_valid_bounds() {
        let g = gen::queen_graph(6);
        let out = bb_tw(&g, &SearchConfig::budgeted(50));
        assert!(!out.exact);
        assert!(out.lower <= out.upper);
        // Table 5.1: tw(queen6_6) = 25
        assert!(out.lower <= 25);
        assert!(out.upper >= 25);
    }

    #[test]
    fn empty_and_single_vertex() {
        let cfg = SearchConfig::default();
        assert_eq!(exact(&Graph::new(1), &cfg), 0);
        assert_eq!(exact(&Graph::new(5), &cfg), 0);
        let out = bb_tw(&Graph::new(0), &cfg);
        assert!(out.exact);
        assert_eq!(out.upper, 0);
    }

    #[test]
    fn pruning_reduces_work() {
        let g = gen::queen_graph(4);
        let full = bb_tw(&g, &SearchConfig::default());
        let bare = bb_tw(&g, &SearchConfig::default().without_pruning());
        assert!(full.exact && bare.exact);
        assert_eq!(full.upper, bare.upper);
        assert!(
            full.stats.expanded <= bare.stats.expanded,
            "pruning should not expand more nodes ({} vs {})",
            full.stats.expanded,
            bare.stats.expanded
        );
    }
}
