//! Pruning rule 2: adjacent-swap symmetry breaking (thesis §4.4.5, [5]).
//!
//! If two consecutively eliminated vertices `v`, `w` are non-adjacent — or
//! adjacent while each has a remaining neighbor that is not a neighbor of
//! the other — then swapping them leaves the width unchanged. Of each such
//! pair of sibling branches the search keeps only one, canonically the one
//! eliminating the smaller-id vertex first.

use htd_hypergraph::{EliminationGraph, Vertex};

/// `true` iff eliminating `v` then `w` has the same width as `w` then `v`,
/// evaluated on the graph in which **both** are still alive.
pub fn swappable(eg: &EliminationGraph, v: Vertex, w: Vertex) -> bool {
    if !eg.has_edge(v, w) {
        return true;
    }
    // v needs a private neighbor (≠ w, not adjacent to w) and vice versa
    let nv = eg.neighbors(v);
    let nw = eg.neighbors(w);
    let mut v_private = nv.difference(nw);
    v_private.remove(w);
    v_private.remove(v);
    if v_private.is_empty() {
        return false;
    }
    let mut w_private = nw.difference(nv);
    w_private.remove(v);
    w_private.remove(w);
    !w_private.is_empty()
}

/// Filters the candidate children after eliminating `prev`: child `c` is
/// pruned when `(prev, c)` is swappable and `c < prev` — the branch
/// `…, c, prev, …` was (or will be) explored under the sibling order.
///
/// `swap_ok[c]` must hold the result of [`swappable`]`(eg, prev, c)`
/// computed **before** `prev` was eliminated.
pub fn keep_child(prev: Vertex, c: Vertex, swappable_with_prev: bool) -> bool {
    !(swappable_with_prev && c < prev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use htd_hypergraph::Graph;

    #[test]
    fn non_adjacent_always_swappable() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        let eg = EliminationGraph::new(&g);
        assert!(swappable(&eg, 0, 2));
        assert!(swappable(&eg, 1, 3));
    }

    #[test]
    fn adjacent_with_private_neighbors_swappable() {
        // path 2-0-1-3: v=0, w=1 adjacent; 0 has private neighbor 2,
        // 1 has private neighbor 3
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (1, 3)]);
        let eg = EliminationGraph::new(&g);
        assert!(swappable(&eg, 0, 1));
        assert!(swappable(&eg, 1, 0));
    }

    #[test]
    fn adjacent_without_private_neighbor_not_swappable() {
        // triangle: neighbors of 0 and 1 coincide (vertex 2)
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]);
        let eg = EliminationGraph::new(&g);
        assert!(!swappable(&eg, 0, 1));
        // pendant edge: 0-1 only
        let g = Graph::from_edges(2, [(0, 1)]);
        let eg = EliminationGraph::new(&g);
        assert!(!swappable(&eg, 0, 1));
    }

    #[test]
    fn keep_child_canonical_direction() {
        assert!(keep_child(1, 2, true)); // larger child always kept
        assert!(!keep_child(2, 1, true)); // smaller child pruned when swappable
        assert!(keep_child(2, 1, false)); // not swappable: kept
    }

    #[test]
    fn swap_preserves_width_property() {
        // for random graphs and all swappable pairs (v,w), the width of
        // eliminating v,w,rest equals w,v,rest
        use htd_core::ordering::TwEvaluator;
        for seed in 0..20u64 {
            let g = htd_hypergraph::gen::random_gnp(8, 0.4, seed);
            let eg = EliminationGraph::new(&g);
            let mut ev = TwEvaluator::new(&g);
            for v in 0..8u32 {
                for w in 0..8u32 {
                    if v == w || !swappable(&eg, v, w) {
                        continue;
                    }
                    let rest: Vec<u32> = (0..8).filter(|&x| x != v && x != w).collect();
                    let mut a = vec![v, w];
                    a.extend(&rest);
                    let mut b = vec![w, v];
                    b.extend(&rest);
                    assert_eq!(ev.width(&a), ev.width(&b), "seed {seed}, pair ({v},{w})");
                }
            }
        }
    }
}
