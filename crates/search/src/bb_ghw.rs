//! Branch and bound for generalized hypertree width (thesis Fig. 8.3).
//!
//! Searches elimination orderings of the primal graph; the cost of a
//! partial ordering is the maximum **exact** cover size of the bags it has
//! produced (Definition 17), so by Theorem 3 the minimum over complete
//! orderings is `ghw(H)`. Pruning: the `tw-ksc` node lower bound (§8.1),
//! the cover-monotonicity analogue of PR1, the non-adjacent swap rule
//! (PR 2a, §8.3) and the ghw-simplicial reduction (§8.2).

use htd_core::ordering::EliminationOrdering;
use htd_core::{CoverStrategy, GhwEvaluator};
use htd_heuristics::upper::{min_degree, min_fill};
use htd_hypergraph::{EliminationGraph, Hypergraph, Vertex, VertexSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::{Budget, SearchConfig, SearchOutcome, SearchStats};
use crate::ghw_common::GhwContext;
use crate::incumbent::{offer_traced, raise_traced, Incumbent};
use crate::pruning::keep_child;

const WHO: &str = "branch_bound";

/// Computes `ghw(h)` by branch and bound. Returns `None` when some vertex
/// lies in no hyperedge (no GHD exists). Within budget the result is exact.
///
/// With `cfg.shared` set, the search prunes against and publishes to the
/// shared [`Incumbent`](crate::Incumbent); with `cfg.cover_cache` set, bag
/// covers are memoized in the shared [`CoverCache`](htd_setcover::CoverCache)
/// (which must be dedicated to `h` and the exact strategy).
pub fn bb_ghw(h: &Hypergraph, cfg: &SearchConfig) -> Option<SearchOutcome> {
    if !h.covers_all_vertices() {
        return None;
    }
    let n = h.num_vertices();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut stats = SearchStats::default();
    let inc = cfg.incumbent();
    if n == 0 {
        inc.offer_upper(0, &[]);
        inc.mark_exact();
        return Some(SearchOutcome {
            lower: 0,
            upper: 0,
            exact: true,
            ordering: Some(EliminationOrdering::identity(0)),
            stats,
        });
    }
    let cache = cfg
        .cover_cache
        .clone()
        .unwrap_or_else(|| std::sync::Arc::new(htd_setcover::CoverCache::new()));
    let g = h.primal_graph();
    // initial upper bound: best of min-fill / min-degree orderings under
    // exact covering (memoized in the same cache the search uses)
    let mut ev = GhwEvaluator::with_cache(h, CoverStrategy::Exact, std::sync::Arc::clone(&cache));
    let cands = [
        min_fill(&g, &mut rng).ordering,
        min_degree(&g, &mut rng).ordering,
    ];
    for c in &cands {
        if let Some(w) = ev.width(c.as_slice()) {
            offer_traced(&inc, &cfg.tracer, WHO, w, c.as_slice());
        }
    }
    let lb0 = htd_heuristics::ghw_lower_bound(h, &mut rng);
    raise_traced(&inc, &cfg.tracer, WHO, lb0);
    if lb0 >= inc.upper() {
        let upper = inc.upper();
        inc.mark_exact();
        return Some(SearchOutcome {
            lower: upper,
            upper,
            exact: true,
            ordering: inc.best_order().map(EliminationOrdering::new_unchecked),
            stats,
        });
    }

    let mut ctx = GhwContext::with_cache(h, cache);
    let mut budget = Budget::new(cfg, "branch_bound");
    let mut eg = EliminationGraph::new(&g);
    let mut order = Vec::with_capacity(n as usize);
    let mut searcher = GhwSearcher {
        cfg,
        rng,
        stats: &mut stats,
        lb0,
        inc: &inc,
    };
    let _sp = htd_trace::span!("bb.search", &cfg.tracer);
    let completed =
        searcher.dfs(&mut ctx, &mut eg, 0, &mut order, None, &mut budget) || inc.is_exact();
    stats.expanded = budget.expanded;
    stats.elapsed = budget.elapsed();
    if completed {
        inc.mark_exact();
    }
    let upper = inc.upper();
    Some(SearchOutcome {
        lower: if completed {
            upper
        } else {
            inc.lower().min(upper)
        },
        upper,
        exact: completed,
        ordering: inc.best_order().map(EliminationOrdering::new_unchecked),
        stats,
    })
}

struct GhwSearcher<'a> {
    cfg: &'a SearchConfig,
    rng: StdRng,
    stats: &'a mut SearchStats,
    lb0: u32,
    inc: &'a Incumbent,
}

impl GhwSearcher<'_> {
    fn dfs(
        &mut self,
        ctx: &mut GhwContext,
        eg: &mut EliminationGraph,
        g_width: u32,
        order: &mut Vec<Vertex>,
        swap_with_prev: Option<(Vertex, VertexSet)>,
        budget: &mut Budget,
    ) -> bool {
        if !budget.tick() {
            return false;
        }
        // one span per branching node; paths nest with recursion depth
        let _sp = htd_trace::span!("bb.branch");
        let remaining = eg.num_alive();
        if remaining == 0 {
            offer_traced(self.inc, &self.cfg.tracer, WHO, g_width, order);
            return true;
        }
        // PR1 analogue: covers are monotone, so any completion's bags cost
        // at most cover(alive set); greedy is enough for an upper bound
        if let Some(alive_cover) = ctx.cover_greedy(eg.alive()) {
            let w = g_width.max(alive_cover);
            if w < self.inc.upper() {
                let mut o = order.clone();
                o.extend(eg.alive().iter());
                offer_traced(self.inc, &self.cfg.tracer, WHO, w, &o);
            }
            if alive_cover <= g_width {
                return true; // subtree width is exactly g, recorded above
            }
        }
        // node lower bound
        let h_val = ctx.node_lower_bound(eg, &mut self.rng).max(self.lb0);
        let f = g_width.max(h_val);
        if f >= self.inc.upper() {
            self.stats.pruned += 1;
            return true;
        }
        // children
        let (children, reduced) = if self.cfg.use_reductions {
            match ctx.find_ghw_reducible(eg) {
                Some(v) => (vec![v], true),
                None => (sorted_children(eg), false),
            }
        } else {
            (sorted_children(eg), false)
        };
        let mut completed = true;
        for v in children {
            if self.cfg.use_pr2 && !reduced {
                if let Some((prev, ref set)) = swap_with_prev {
                    if !keep_child(prev, v, set.contains(v)) {
                        self.stats.pruned += 1;
                        continue;
                    }
                }
            }
            // a forced (reduction) child must not seed the PR2 filter:
            // its siblings were never branched on, so the canonical-order
            // argument has no other branch to defer to
            let swap_set = if self.cfg.use_pr2 && !reduced {
                let mut s = VertexSet::new(eg.capacity());
                for u in eg.alive().iter() {
                    if u != v && GhwContext::swappable_ghw(eg, v, u) {
                        s.insert(u);
                    }
                }
                Some((v, s))
            } else {
                None
            };
            let bag = eg.bag(v);
            let Some(bag_cover) = ctx.cover_exact(&bag) else {
                // uncoverable bag cannot happen when all vertices covered
                continue;
            };
            let child_g = g_width.max(bag_cover);
            if child_g >= self.inc.upper() {
                self.stats.pruned += 1;
                continue;
            }
            let mark = eg.log_len();
            eg.eliminate(v);
            order.push(v);
            self.stats.generated += 1;
            completed &= self.dfs(ctx, eg, child_g, order, swap_set, budget);
            order.pop();
            eg.undo_to(mark);
            if !completed && (budget.expanded > self.cfg.max_nodes || self.inc.is_cancelled()) {
                break;
            }
        }
        completed
    }
}

fn sorted_children(eg: &EliminationGraph) -> Vec<Vertex> {
    let mut vs: Vec<Vertex> = eg.alive().to_vec();
    vs.sort_by_key(|&v| eg.degree(v));
    vs
}

#[cfg(test)]
mod tests {
    use super::*;
    use htd_core::ordering::exhaustive_ghw;
    use htd_hypergraph::gen;

    fn exact(h: &Hypergraph, cfg: &SearchConfig) -> u32 {
        let out = bb_ghw(h, cfg).expect("coverable");
        assert!(out.exact, "expected exact");
        // verify the ordering really achieves the upper bound
        let mut ev = GhwEvaluator::new(h, CoverStrategy::Exact);
        let achieved = ev.width(out.ordering.as_ref().unwrap().as_slice()).unwrap();
        assert!(achieved <= out.upper);
        out.upper
    }

    #[test]
    fn known_families() {
        let cfg = SearchConfig::default();
        // acyclic chain
        let h = Hypergraph::new(5, vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4]]);
        assert_eq!(exact(&h, &cfg), 1);
        // thesis example
        let th = Hypergraph::new(6, vec![vec![0, 1, 2], vec![0, 4, 5], vec![2, 3, 4]]);
        assert_eq!(exact(&th, &cfg), 2);
        // triangle of binary edges
        let t = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![0, 2]]);
        assert_eq!(exact(&t, &cfg), 2);
        // clique hypergraphs: ghw = ⌈k/2⌉
        assert_eq!(exact(&gen::clique_hypergraph(6), &cfg), 3);
        assert_eq!(exact(&gen::clique_hypergraph(7), &cfg), 4);
    }

    #[test]
    fn adder_family_has_small_ghw() {
        let cfg = SearchConfig::default();
        let w = exact(&gen::adder(3), &cfg);
        assert!(w <= 2, "adder(3) ghw = {w}");
        assert!(w >= 1);
    }

    #[test]
    fn matches_exhaustive_all_toggle_combinations() {
        for seed in 0..10u64 {
            let h = gen::random_uniform(7, 8, 3, seed);
            if !h.covers_all_vertices() {
                continue;
            }
            let truth = exhaustive_ghw(&h).unwrap();
            for pr2 in [false, true] {
                for red in [false, true] {
                    let cfg = SearchConfig {
                        use_pr2: pr2,
                        use_reductions: red,
                        ..SearchConfig::default()
                    };
                    assert_eq!(exact(&h, &cfg), truth, "seed {seed} pr2={pr2} red={red}");
                }
            }
        }
    }

    #[test]
    fn acyclic_generated_instances_have_ghw_1() {
        let cfg = SearchConfig::default();
        for seed in 0..5 {
            let h = gen::random_acyclic(8, 3, seed);
            assert_eq!(exact(&h, &cfg), 1, "seed {seed}");
        }
    }

    #[test]
    fn uncoverable_returns_none() {
        let h = Hypergraph::new(3, vec![vec![0, 1]]);
        assert!(bb_ghw(&h, &SearchConfig::default()).is_none());
    }

    #[test]
    fn budget_exhaustion_gives_valid_bounds() {
        let h = gen::grid2d(6);
        let out = bb_ghw(&h, &SearchConfig::budgeted(20)).unwrap();
        assert!(out.lower <= out.upper);
    }
}
