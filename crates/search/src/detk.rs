//! det-k-decomp: hypertree decompositions of width ≤ k.
//!
//! The canonical backtracking algorithm for *hypertree* decompositions
//! (Gottlob & Samer's DetKDecomp, deciding `hw(H) ≤ k`), the reference
//! method of the hypertree-decomposition literature the thesis builds on
//! (`ghw(H) ≤ hw(H) ≤ tw(H) + 1`-style comparisons).
//!
//! The algorithm decomposes *edge components*: given a component `comp`
//! (a set of hyperedges) and the `conn` vertices connecting it to its
//! parent separator, it guesses a separator `λ` of at most `k` edges that
//! covers `conn`, splits `comp` at `χ = var(λ) ∩ (var(comp) ∪ conn)` into
//! sub-components, and recurses. Candidate separator edges are restricted
//! to `comp ∪ {edges of the parent separator meeting conn}`, which is what
//! enforces the descendant condition (condition 4) of hypertree
//! decompositions. Failed `(comp, conn)` pairs are memoized.

use std::collections::HashMap;

use htd_core::tree_decomposition::{NodeId, TreeDecomposition};
use htd_core::GeneralizedHypertreeDecomposition;
use htd_hypergraph::{EdgeId, Hypergraph, VertexSet};

/// Decides `hw(h) ≤ k` and constructs a witness hypertree decomposition.
///
/// Returns `None` when no width-`k` hypertree decomposition exists (or
/// when a vertex lies in no edge, in which case none exists for any `k`).
///
/// ```
/// use htd_search::det_k_decomp;
/// use htd_hypergraph::Hypergraph;
/// // an acyclic chain has hypertree width 1
/// let h = Hypergraph::new(4, vec![vec![0, 1], vec![1, 2], vec![2, 3]]);
/// let hd = det_k_decomp(&h, 1).expect("hw = 1");
/// hd.validate_hypertree(&h).unwrap();
/// // a cycle of binary edges needs width 2
/// let c = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![2, 0]]);
/// assert!(det_k_decomp(&c, 1).is_none());
/// assert!(det_k_decomp(&c, 2).is_some());
/// ```
pub fn det_k_decomp(h: &Hypergraph, k: u32) -> Option<GeneralizedHypertreeDecomposition> {
    if h.num_vertices() == 0 || h.num_edges() == 0 {
        // degenerate: a single empty node decomposes the empty hypergraph
        if h.num_vertices() == 0 && h.num_edges() == 0 {
            let tree = TreeDecomposition::new(vec![VertexSet::new(0)], vec![None]).ok()?;
            return Some(GeneralizedHypertreeDecomposition::new(tree, vec![vec![]]));
        }
        return None;
    }
    if !h.covers_all_vertices() || k == 0 {
        return None;
    }
    let m = h.num_edges();
    let mut ctx = Ctx {
        h,
        k,
        failed: HashMap::new(),
        nodes: Vec::new(),
        subproblems: 0,
        memo_hits: 0,
        separators_tried: 0,
    };
    let all = VertexSet::full(m);
    let root = ctx.decompose(&all, &VertexSet::new(h.num_vertices()), &VertexSet::new(m));
    // counted locally during the recursion, published once per call
    let reg = htd_trace::registry();
    reg.counter("htd_detk_subproblems_total")
        .add(ctx.subproblems);
    reg.counter("htd_detk_memo_hits_total").add(ctx.memo_hits);
    reg.counter("htd_detk_separators_tried_total")
        .add(ctx.separators_tried);
    let root = root?;
    // assemble the tree
    let bags: Vec<VertexSet> = ctx.nodes.iter().map(|n| n.chi.clone()).collect();
    let mut parent: Vec<Option<NodeId>> = vec![None; ctx.nodes.len()];
    for (p, node) in ctx.nodes.iter().enumerate() {
        for &c in &node.children {
            parent[c] = Some(p);
        }
    }
    debug_assert_eq!(root, find_root(&parent));
    let tree = TreeDecomposition::new(bags, parent).expect("det-k builds a tree");
    let lambda = ctx.nodes.into_iter().map(|n| n.lambda).collect();
    Some(GeneralizedHypertreeDecomposition::new(tree, lambda))
}

fn find_root(parent: &[Option<NodeId>]) -> NodeId {
    parent
        .iter()
        .position(|p| p.is_none())
        .expect("one root exists")
}

/// Computes the hypertree width by trying `k = lb, lb+1, …` with
/// [`det_k_decomp`]. `lb` may be any valid lower bound (e.g. the ghw lower
/// bound — `ghw ≤ hw`); pass 1 when in doubt.
pub fn hypertree_width(
    h: &Hypergraph,
    lb: u32,
) -> Option<(u32, GeneralizedHypertreeDecomposition)> {
    let mut k = lb.max(1);
    loop {
        if let Some(hd) = det_k_decomp(h, k) {
            return Some((k, hd));
        }
        if k > h.num_edges() {
            return None; // uncoverable (defensive; covers_all would have caught it)
        }
        k += 1;
    }
}

struct BuiltNode {
    chi: VertexSet,
    lambda: Vec<EdgeId>,
    children: Vec<NodeId>,
}

struct Ctx<'a> {
    h: &'a Hypergraph,
    k: u32,
    /// memoized failures: (component blocks, conn blocks)
    failed: HashMap<(Vec<u64>, Vec<u64>), ()>,
    nodes: Vec<BuiltNode>,
    /// `decompose` calls — the paper's primary cost measure for DetKDecomp.
    subproblems: u64,
    /// failed-(comp, conn) memo hits.
    memo_hits: u64,
    /// separators split and recursed on (`try_separator` calls).
    separators_tried: u64,
}

impl Ctx<'_> {
    /// Union of edge scopes of a component.
    fn vars_of(&self, comp: &VertexSet) -> VertexSet {
        let mut v = VertexSet::new(self.h.num_vertices());
        for e in comp.iter() {
            v.union_with(self.h.edge(e));
        }
        v
    }

    /// Decomposes `comp` whose interface to the parent separator is
    /// `conn`; `old_sep` is the parent's λ (as an edge set). Returns the
    /// root node id of the built subtree.
    fn decompose(
        &mut self,
        comp: &VertexSet,
        conn: &VertexSet,
        old_sep: &VertexSet,
    ) -> Option<NodeId> {
        self.subproblems += 1;
        // base case: the whole component fits into one node
        if comp.len() <= self.k {
            let chi = {
                let mut c = self.vars_of(comp);
                c.union_with(conn);
                c
            };
            // conn ⊆ var(comp) holds by construction, so λ = comp covers χ
            let id = self.nodes.len();
            self.nodes.push(BuiltNode {
                chi,
                lambda: comp.to_vec(),
                children: Vec::new(),
            });
            return Some(id);
        }
        let key = (comp.blocks().to_vec(), conn.blocks().to_vec());
        if self.failed.contains_key(&key) {
            self.memo_hits += 1;
            return None;
        }
        // candidate separator edges: edges of the component plus parent
        // separator edges meeting conn (the DetKDecomp restriction that
        // yields the descendant condition)
        let mut cands: Vec<EdgeId> = comp.to_vec();
        for e in old_sep.iter() {
            if !comp.contains(e) && !self.h.edge(e).is_disjoint(conn) {
                cands.push(e);
            }
        }
        // enumerate λ ⊆ cands, |λ| ≤ k, conn ⊆ var(λ), with at least one
        // component edge (guarantees progress into comp)
        let mut chosen: Vec<EdgeId> = Vec::new();
        let node = self.enumerate_separators(comp, conn, &cands, 0, &mut chosen);
        if node.is_none() {
            self.failed.insert(key, ());
        }
        node
    }

    #[allow(clippy::too_many_arguments)]
    fn enumerate_separators(
        &mut self,
        comp: &VertexSet,
        conn: &VertexSet,
        cands: &[EdgeId],
        start: usize,
        chosen: &mut Vec<EdgeId>,
    ) -> Option<NodeId> {
        // try the current choice if it covers conn and touches the component
        if !chosen.is_empty() {
            let mut lam_vars = VertexSet::new(self.h.num_vertices());
            let mut touches_comp = false;
            for &e in chosen.iter() {
                lam_vars.union_with(self.h.edge(e));
                touches_comp |= comp.contains(e);
            }
            if conn.is_subset(&lam_vars) && touches_comp {
                if let Some(id) = self.try_separator(comp, conn, chosen, &lam_vars) {
                    return Some(id);
                }
            }
        }
        if chosen.len() as u32 >= self.k {
            return None;
        }
        for i in start..cands.len() {
            chosen.push(cands[i]);
            let r = self.enumerate_separators(comp, conn, cands, i + 1, chosen);
            chosen.pop();
            if r.is_some() {
                return r;
            }
        }
        None
    }

    /// Splits the component at the separator and recurses.
    fn try_separator(
        &mut self,
        comp: &VertexSet,
        conn: &VertexSet,
        lambda: &[EdgeId],
        lam_vars: &VertexSet,
    ) -> Option<NodeId> {
        self.separators_tried += 1;
        let comp_vars = self.vars_of(comp);
        // χ = var(λ) ∩ (var(comp) ∪ conn)
        let mut chi = lam_vars.clone();
        let mut scope = comp_vars.clone();
        scope.union_with(conn);
        chi.intersect_with(&scope);
        // remaining edges: those not fully inside χ
        let remaining: Vec<EdgeId> = comp
            .iter()
            .filter(|&e| !self.h.edge(e).is_subset(&chi))
            .collect();
        // split into connected components via vertices outside χ
        let subcomps = split_components(self.h, &remaining, &chi);
        // progress check: every sub-component must shrink, or keep size
        // with a strictly larger connection (bounded, hence terminating)
        let lambda_set =
            VertexSet::from_iter_with_capacity(self.h.num_edges(), lambda.iter().copied());
        let mut children = Vec::new();
        for sub in &subcomps {
            let sub_vars = self.vars_of(sub);
            let mut sub_conn = sub_vars.clone();
            sub_conn.intersect_with(&chi);
            if sub.len() >= comp.len() && sub_conn.is_subset(conn) && conn.is_subset(&sub_conn) {
                return None; // no progress: same component, same interface
            }
            let child = self.decompose(sub, &sub_conn, &lambda_set)?;
            children.push(child);
        }
        let id = self.nodes.len();
        self.nodes.push(BuiltNode {
            chi,
            lambda: lambda.to_vec(),
            children,
        });
        Some(id)
    }
}

/// Partitions `edges` into components: two edges are connected when they
/// share a vertex not in `chi`.
fn split_components(h: &Hypergraph, edges: &[EdgeId], chi: &VertexSet) -> Vec<VertexSet> {
    let m = h.num_edges();
    let mut comps = Vec::new();
    let mut assigned = vec![false; edges.len()];
    for i in 0..edges.len() {
        if assigned[i] {
            continue;
        }
        let mut comp = VertexSet::new(m);
        let mut frontier_vars = h.edge(edges[i]).difference(chi);
        comp.insert(edges[i]);
        assigned[i] = true;
        let mut changed = true;
        while changed {
            changed = false;
            for (j, &e) in edges.iter().enumerate() {
                if assigned[j] {
                    continue;
                }
                let outside = h.edge(e).difference(chi);
                if !outside.is_disjoint(&frontier_vars) {
                    comp.insert(e);
                    assigned[j] = true;
                    frontier_vars.union_with(&outside);
                    changed = true;
                }
            }
        }
        comps.push(comp);
    }
    comps
}

#[cfg(test)]
mod tests {
    use super::*;
    use htd_core::join_tree::is_acyclic;
    use htd_core::ordering::exhaustive_ghw;
    use htd_hypergraph::gen;

    fn hw_of(h: &Hypergraph) -> u32 {
        let (w, hd) = hypertree_width(h, 1).expect("coverable");
        hd.validate_hypertree(h)
            .unwrap_or_else(|e| panic!("invalid HD: {e}"));
        assert!(hd.width() <= w);
        w
    }

    #[test]
    fn acyclic_iff_hw_1() {
        for seed in 0..8 {
            let h = gen::random_acyclic(8, 3, seed);
            assert!(is_acyclic(&h));
            assert_eq!(hw_of(&h), 1, "seed {seed}");
        }
        // cycles of binary edges have hw 2
        for n in [3u32, 4, 6] {
            let h = Hypergraph::new(n, (0..n).map(|i| vec![i, (i + 1) % n]).collect());
            assert!(!is_acyclic(&h));
            assert!(det_k_decomp(&h, 1).is_none(), "C{n} must not have hw 1");
            assert_eq!(hw_of(&h), 2, "C{n}");
        }
    }

    #[test]
    fn thesis_example_has_hw_2() {
        let h = Hypergraph::new(6, vec![vec![0, 1, 2], vec![0, 4, 5], vec![2, 3, 4]]);
        assert_eq!(hw_of(&h), 2);
    }

    #[test]
    fn clique_hypergraph_widths() {
        for k in [4u32, 5, 6] {
            let h = gen::clique_hypergraph(k);
            assert_eq!(hw_of(&h), k.div_ceil(2), "clique_{k}");
        }
    }

    #[test]
    fn hw_at_least_ghw_on_random_instances() {
        for seed in 0..10u64 {
            let h = gen::random_uniform(7, 8, 3, seed);
            if !h.covers_all_vertices() {
                continue;
            }
            let ghw = exhaustive_ghw(&h).unwrap();
            let hw = hw_of(&h);
            assert!(hw >= ghw, "seed {seed}: hw {hw} < ghw {ghw}");
            // the known bound hw ≤ 3·ghw + 1 (loose sanity check)
            assert!(hw <= 3 * ghw + 1, "seed {seed}");
        }
    }

    #[test]
    fn adder_and_grid_families() {
        assert!(hw_of(&gen::adder(3)) <= 2);
        assert!(hw_of(&gen::grid2d(4)) <= 4);
    }

    #[test]
    fn degenerate_inputs() {
        let empty = Hypergraph::new(0, vec![]);
        assert!(det_k_decomp(&empty, 1).is_some());
        let uncovered = Hypergraph::new(2, vec![vec![0]]);
        assert!(det_k_decomp(&uncovered, 3).is_none());
        let h = Hypergraph::new(2, vec![vec![0, 1]]);
        assert!(det_k_decomp(&h, 0).is_none());
        assert_eq!(hw_of(&h), 1);
    }

    #[test]
    fn width_k_witness_is_within_k() {
        let h = gen::clique_hypergraph(6);
        // hw = 3; asking for k = 4 must also succeed with width ≤ 4
        let hd = det_k_decomp(&h, 4).expect("hw 3 ≤ 4");
        hd.validate_hypertree(&h).unwrap();
        assert!(hd.width() <= 4);
    }
}
