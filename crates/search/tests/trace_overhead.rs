//! Guard: instrumentation must be effectively free when disabled, and
//! cheap enough to leave on when enabled with a null sink.

use std::sync::Arc;
use std::time::{Duration, Instant};

use htd_hypergraph::gen;
use htd_search::{solve, Problem, SearchConfig};
use htd_trace::{Event, NullSink, Tracer};

/// The disabled tracer's emit path is one branch: even with a closure
/// that would be expensive, tens of millions of calls finish instantly.
#[test]
fn disabled_emit_path_is_a_single_branch() {
    let t = Tracer::disabled();
    let start = Instant::now();
    for i in 0..20_000_000u64 {
        t.emit_with(|| Event::NodeExpanded {
            worker: "bench",
            count: i,
        });
    }
    let elapsed = start.elapsed();
    // ~1ns/call on any modern machine; 2s is a 100× margin for CI noise
    assert!(
        elapsed < Duration::from_secs(2),
        "20M disabled emits took {elapsed:?}"
    );
}

/// Solving with a null-sink tracer must stay within a generous factor of
/// the untraced solve: events are emitted at improvement/batch boundaries,
/// never per node.
#[test]
fn enabled_tracing_does_not_dominate_solve_time() {
    let g = gen::queen_graph(5);
    let solve_once = |cfg: &SearchConfig| {
        let start = Instant::now();
        let out = solve(&Problem::treewidth(g.clone()), cfg).unwrap();
        assert_eq!(out.exact_width(), Some(18));
        start.elapsed()
    };
    let plain = SearchConfig::default().with_seed(7);
    let traced = SearchConfig::default()
        .with_seed(7)
        .with_tracer(Tracer::new(Box::new(NullSink)));
    // warm up (page cache, lazy statics, registry counters)
    solve_once(&plain);
    let base: Duration = (0..3).map(|_| solve_once(&plain)).sum();
    let with_trace: Duration = (0..3).map(|_| solve_once(&traced)).sum();
    // identical work modulo instrumentation; 3× absorbs scheduler noise
    // on loaded CI machines while still catching per-node emission bugs
    assert!(
        with_trace < base * 3 + Duration::from_millis(200),
        "traced {with_trace:?} vs untraced {base:?}"
    );
}

/// A shared tracer used from several threads keeps the stream coherent
/// while the solver is actually running (not just in synthetic tests).
#[test]
fn concurrent_solves_share_one_tracer_safely() {
    let ring = htd_trace::RingBuffer::new(100_000);
    let tracer = Tracer::new(Box::new(Arc::clone(&ring)));
    std::thread::scope(|s| {
        for seed in 0..3u64 {
            let tracer = Arc::clone(&tracer);
            s.spawn(move || {
                let g = gen::random_gnp(10, 0.35, seed);
                let cfg = SearchConfig::default().with_seed(seed).with_tracer(tracer);
                solve(&Problem::treewidth(g), &cfg).unwrap();
            });
        }
    });
    // interleaved solves still yield contiguous seq + monotonic time
    let records = ring.records();
    assert!(!records.is_empty());
    for (i, r) in records.iter().enumerate() {
        assert_eq!(r.seq, i as u64);
    }
    assert!(records.windows(2).all(|p| p[0].t_us <= p[1].t_us));
}
