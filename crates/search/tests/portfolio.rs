//! Integration tests of the anytime portfolio: bound consistency against
//! the sequential engines, cooperative-cancellation latency, and the
//! shared set-cover cache's transparency.

use std::sync::Arc;
use std::time::{Duration, Instant};

use htd_core::ordering::{CoverStrategy, GhwEvaluator};
use htd_hypergraph::{gen, Hypergraph};
use htd_search::{solve, Engine, Objective, Outcome, Problem, SearchConfig};
use htd_setcover::CoverCache;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn check_bounds(portfolio: &Outcome, sequential: &Outcome) {
    // both are certified interval answers for the same quantity, so the
    // intervals must intersect, and an exact answer must lie inside the
    // other's interval
    assert!(
        portfolio.lower <= sequential.upper && sequential.lower <= portfolio.upper,
        "disjoint bound intervals: portfolio [{}, {}] vs sequential [{}, {}]",
        portfolio.lower,
        portfolio.upper,
        sequential.lower,
        sequential.upper
    );
    if sequential.exact {
        assert!(portfolio.lower <= sequential.upper && sequential.upper <= portfolio.upper);
    }
    if portfolio.exact {
        assert!(sequential.lower <= portfolio.upper && portfolio.upper <= sequential.upper);
    }
}

#[test]
fn portfolio_agrees_with_sequential_on_queen5() {
    let g = gen::queen_graph(5);
    let seq = solve(&Problem::treewidth(g.clone()), &SearchConfig::default()).unwrap();
    let par = solve(
        &Problem::treewidth(g),
        &SearchConfig::default().with_threads(4),
    )
    .unwrap();
    assert_eq!(seq.exact_width(), Some(18), "Table 5.1: tw(queen5_5) = 18");
    check_bounds(&par, &seq);
    assert_eq!(par.exact_width(), Some(18));
}

#[test]
fn portfolio_agrees_with_sequential_on_grid5() {
    let g = gen::grid_graph(5, 5);
    let seq = solve(&Problem::treewidth(g.clone()), &SearchConfig::default()).unwrap();
    let par = solve(
        &Problem::treewidth(g),
        &SearchConfig::default().with_threads(4),
    )
    .unwrap();
    assert_eq!(seq.exact_width(), Some(5));
    check_bounds(&par, &seq);
    assert_eq!(par.exact_width(), Some(5));
}

#[test]
fn portfolio_agrees_with_sequential_on_adder4_ghw() {
    let h = gen::adder(4);
    let seq = solve(&Problem::ghw(h.clone()), &SearchConfig::default()).unwrap();
    let par = solve(&Problem::ghw(h), &SearchConfig::default().with_threads(4)).unwrap();
    assert!(seq.exact, "adder(4) is small enough for an exact ghw");
    check_bounds(&par, &seq);
    assert_eq!(par.exact_width(), seq.exact_width());
}

#[test]
fn cancellation_stops_all_workers_within_budget() {
    // queen8 is far beyond any sub-second exact solve, so only the time
    // budget can end this run; all four workers must notice the watchdog's
    // cancel within the 100ms grace the issue allots
    let g = gen::queen_graph(8);
    let budget = Duration::from_millis(300);
    let cfg = SearchConfig::default()
        .with_max_nodes(u64::MAX)
        .with_time_limit(budget)
        .with_threads(4);
    let start = Instant::now();
    let out = solve(&Problem::treewidth(g), &cfg).unwrap();
    let elapsed = start.elapsed();
    assert!(
        elapsed <= budget + Duration::from_millis(100),
        "portfolio overran its wall clock: {elapsed:?} vs {budget:?} + 100ms"
    );
    assert!(!out.exact);
    assert!(out.lower <= out.upper);
    assert!(out.witness.is_some(), "anytime run still has an incumbent");
}

#[test]
fn engines_report_individually() {
    let g = gen::queen_graph(4);
    let out = solve(
        &Problem::treewidth(g),
        &SearchConfig::default().with_threads(4),
    )
    .unwrap();
    assert_eq!(out.per_engine.len(), 4);
    let engines: Vec<Engine> = out.per_engine.iter().map(|r| r.engine).collect();
    assert!(engines.contains(&Engine::BranchBound));
    assert!(engines.contains(&Engine::AStar));
    // each engine's own bounds must be consistent with the final answer
    for r in &out.per_engine {
        assert!(r.lower <= out.upper, "{:?} lower too high", r.engine);
        if r.upper != u32::MAX {
            assert!(r.upper >= out.upper, "{:?} upper below optimum", r.engine);
        }
    }
}

/// Random hypergraph on `n ≤ 7` vertices with each vertex covered.
fn random_covered_hypergraph(n: u32, rng: &mut StdRng) -> Hypergraph {
    let num_edges = rng.gen_range(2..=5u32);
    let mut edges: Vec<Vec<u32>> = (0..num_edges)
        .map(|_| {
            let size = rng.gen_range(1..=3u32);
            let mut e: Vec<u32> = (0..size).map(|_| rng.gen_range(0..n)).collect();
            e.sort_unstable();
            e.dedup();
            e
        })
        .collect();
    // guarantee coverage
    for v in 0..n {
        if !edges.iter().any(|e| e.contains(&v)) {
            let i = rng.gen_range(0..edges.len());
            edges[i].push(v);
            edges[i].sort_unstable();
        }
    }
    Hypergraph::new(n, edges)
}

#[test]
fn cached_covers_match_uncached_property() {
    // property test over small instances: a shared CoverCache never
    // changes any evaluated ordering width
    for seed in 0..60u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(3..=7u32);
        let h = random_covered_hypergraph(n, &mut rng);
        let cache = Arc::new(CoverCache::new());
        let mut cached = GhwEvaluator::with_cache(&h, CoverStrategy::Exact, Arc::clone(&cache));
        let mut plain = GhwEvaluator::new(&h, CoverStrategy::Exact);
        // several orderings, revisiting bags so cache hits actually occur
        for round in 0..3u64 {
            let mut order: Vec<u32> = (0..n).collect();
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            assert_eq!(
                cached.width(&order),
                plain.width(&order),
                "seed {seed} round {round} order {order:?}"
            );
        }
        assert!(cache.misses() > 0, "evaluator never consulted the cache");
    }
}

#[test]
fn hw_objective_is_exact_and_bounded_by_ghw() {
    let h = gen::adder(4);
    let ghw = solve(&Problem::ghw(h.clone()), &SearchConfig::default()).unwrap();
    let hw = solve(&Problem::hw(h), &SearchConfig::default()).unwrap();
    assert_eq!(hw.objective, Objective::HypertreeWidth);
    assert!(hw.exact);
    // ghw ≤ hw always (Chapter 2)
    assert!(ghw.upper <= hw.upper);
}

#[test]
fn skipped_engines_are_surfaced_in_outcome_and_trace() {
    use htd_trace::{Event, RingBuffer, Tracer};
    // 2 worker slots against the full default lineup: only the two
    // best-claim-rank engines launch; everything else must be reported,
    // not silently dropped
    let ring = RingBuffer::new(100_000);
    let g = gen::queen_graph(4);
    let cfg = SearchConfig::default()
        .with_threads(2)
        .with_tracer(Tracer::new(Box::new(Arc::clone(&ring))));
    let out = solve(&Problem::treewidth(g), &cfg).unwrap();

    let lineup = Engine::default_lineup();
    assert_eq!(out.per_engine.len(), 2);
    assert_eq!(out.skipped_engines.len(), lineup.len() - 2);
    let launched: Vec<Engine> = out.per_engine.iter().map(|r| r.engine).collect();
    assert!(launched.contains(&Engine::BranchBound));
    assert!(launched.contains(&Engine::AStar));
    for e in &out.skipped_engines {
        assert!(!launched.contains(e), "{e:?} both launched and skipped");
        assert!(lineup.contains(e), "{e:?} skipped but not in lineup");
    }

    // the trace stream names the same engines
    let skipped_evt = ring
        .records()
        .into_iter()
        .find_map(|r| match r.event {
            Event::EnginesSkipped { engines, slots } => Some((engines, slots)),
            _ => None,
        })
        .expect("engines_skipped event emitted");
    assert_eq!(skipped_evt.1, 2);
    let names: Vec<&str> = skipped_evt.0.split(',').collect();
    assert_eq!(names.len(), out.skipped_engines.len());
    for e in &out.skipped_engines {
        assert!(names.contains(&e.name()), "{e:?} missing from trace event");
    }

    // and the diagnostics survive a JSON round trip
    let back = Outcome::from_json(&out.to_json()).expect("roundtrip");
    assert_eq!(back.skipped_engines, out.skipped_engines);
}

#[test]
fn no_engines_skipped_when_slots_cover_the_lineup() {
    let g = gen::queen_graph(4);
    let cfg = SearchConfig::default().with_threads(Engine::default_lineup().len());
    let out = solve(&Problem::treewidth(g), &cfg).unwrap();
    assert!(out.skipped_engines.is_empty());
}
