//! Integration: the portfolio's trace-event stream is well-formed and
//! its attribution agrees with the returned `Outcome`.

use std::sync::Arc;
use std::time::Duration;

use htd_hypergraph::gen;
use htd_search::{solve, Problem, SearchConfig};
use htd_trace::{validate_stream, Event, RingBuffer, Tracer, KNOWN_KINDS};

fn traced_cfg(ring: &Arc<RingBuffer>) -> SearchConfig {
    SearchConfig::default()
        .with_seed(42)
        .with_threads(4)
        .with_tracer(Tracer::new(Box::new(Arc::clone(ring))))
}

#[test]
fn portfolio_stream_is_well_formed_and_attribution_matches_outcome() {
    let ring = RingBuffer::new(100_000);
    let g = gen::queen_graph(5);
    let out = solve(&Problem::treewidth(g), &traced_cfg(&ring)).unwrap();
    assert_eq!(out.exact_width(), Some(18));
    let records = ring.records();
    assert_eq!(ring.dropped(), 0, "ring sized for the whole stream");

    // monotonic timestamps, contiguous seq, every WorkerStarted matched
    // by a Finished or Cancelled
    validate_stream(&records).unwrap_or_else(|e| panic!("malformed stream: {e}"));
    assert!(records
        .iter()
        .all(|r| KNOWN_KINDS.contains(&r.event.kind())));

    // the stream brackets the solve
    assert!(matches!(
        records.first().unwrap().event,
        Event::SolveStarted { .. }
    ));
    assert!(matches!(
        records.last().unwrap().event,
        Event::SolveFinished { .. }
    ));

    // four workers started (threads = 4 claims the four strongest engines)
    let started: Vec<_> = records
        .iter()
        .filter_map(|r| match &r.event {
            Event::WorkerStarted { worker } => Some(*worker),
            _ => None,
        })
        .collect();
    assert_eq!(
        started.len(),
        4,
        "one WorkerStarted per thread: {started:?}"
    );

    // at least one attributed incumbent improvement; exactly one worker
    // reached the final width (offers are accepted under one lock, and
    // only strict improvements emit), and it is the Outcome's winner
    let improvements: Vec<_> = records
        .iter()
        .filter_map(|r| match &r.event {
            Event::IncumbentImproved { worker, width } => Some((*worker, *width)),
            _ => None,
        })
        .collect();
    assert!(!improvements.is_empty(), "no IncumbentImproved events");
    assert!(improvements.iter().all(|(w, _)| !w.is_empty()));
    let min_width = improvements.iter().map(|&(_, w)| w).min().unwrap();
    assert_eq!(min_width, out.upper, "best improvement matches the outcome");
    let winner = out.winner.expect("portfolio attributes its winner");
    let finals: Vec<_> = improvements
        .iter()
        .filter(|&&(_, w)| w == out.upper)
        .collect();
    assert_eq!(finals.len(), 1, "one worker reached the final width");
    assert_eq!(finals[0].0, winner.name(), "winner matches the improvement");

    // SolveFinished carries the same attribution and bounds
    match records.last().unwrap().event {
        Event::SolveFinished {
            lower,
            upper,
            exact,
            winner: w,
            ..
        } => {
            assert_eq!(lower, out.lower);
            assert_eq!(upper, Some(out.upper));
            assert_eq!(exact, out.exact);
            assert_eq!(w, Some(winner.name()));
        }
        ref e => panic!("last event is {e:?}"),
    }

    // convergence timestamps are coherent
    let first = out.time_to_first_upper.expect("an incumbent arrived");
    let best = out.time_to_best_upper.expect("an incumbent arrived");
    assert!(first <= best);
    assert!(best <= out.elapsed + Duration::from_millis(50));
}

#[test]
fn sequential_solve_also_produces_a_valid_stream() {
    let ring = RingBuffer::new(100_000);
    let cfg = traced_cfg(&ring).with_threads(1);
    let g = gen::grid_graph(4, 4);
    let out = solve(&Problem::treewidth(g), &cfg).unwrap();
    assert_eq!(out.exact_width(), Some(4));
    let records = ring.records();
    validate_stream(&records).unwrap_or_else(|e| panic!("malformed stream: {e}"));
    // one thread claims exactly one engine
    let started = records
        .iter()
        .filter(|r| matches!(r.event, Event::WorkerStarted { .. }))
        .count();
    assert_eq!(started, 1);
}

#[test]
fn deadline_cancellation_emits_worker_cancelled_with_bounds() {
    let ring = RingBuffer::new(100_000);
    // hard instance + tiny wall clock: the watchdog must kill workers
    let g = gen::queen_graph(7);
    let cfg = traced_cfg(&ring).with_time_limit(Duration::from_millis(120));
    let out = solve(&Problem::treewidth(g), &cfg).unwrap();
    let records = ring.records();
    validate_stream(&records).unwrap_or_else(|e| panic!("malformed stream: {e}"));
    if out.exact {
        // machine fast enough to finish queen7 in 120ms — nothing to assert
        return;
    }
    let cancelled: Vec<_> = records
        .iter()
        .filter_map(|r| match &r.event {
            Event::WorkerCancelled {
                worker,
                upper,
                elapsed_us,
                ..
            } => Some((*worker, *upper, *elapsed_us)),
            _ => None,
        })
        .collect();
    assert!(
        !cancelled.is_empty(),
        "expired workers must report WorkerCancelled"
    );
    for (worker, _upper, elapsed_us) in &cancelled {
        assert!(!worker.is_empty());
        assert!(*elapsed_us > 0, "cancellation carries the worker's runtime");
    }
    // some cancelled worker still reports its best bound
    assert!(cancelled.iter().any(|(_, upper, _)| upper.is_some()));
}

#[test]
fn ghw_portfolio_emits_cover_cache_stats() {
    let ring = RingBuffer::new(100_000);
    let h = gen::clique_hypergraph(7);
    let out = solve(&Problem::ghw(h), &traced_cfg(&ring)).unwrap();
    assert_eq!(out.exact_width(), Some(4));
    assert!(
        out.cover_cache_hits + out.cover_cache_misses > 0,
        "ghw solves exercise the cover cache"
    );
    let records = ring.records();
    validate_stream(&records).unwrap_or_else(|e| panic!("malformed stream: {e}"));
    let stats = records
        .iter()
        .find_map(|r| match &r.event {
            Event::CacheStats {
                cache,
                hits,
                misses,
                ..
            } => Some((*cache, *hits, *misses)),
            _ => None,
        })
        .expect("a CacheStats event for the cover cache");
    assert_eq!(stats.0, "cover_exact");
    assert_eq!(stats.1, out.cover_cache_hits);
    assert_eq!(stats.2, out.cover_cache_misses);
}
