//! Guard: per-expansion profiling spans must stay within the same
//! overhead envelope as the batched expansion counters.
//!
//! This file holds exactly one test: it toggles the process-global
//! span flag, so it must not share a binary with other span users.

use std::time::{Duration, Instant};

use htd_hypergraph::gen;
use htd_search::{solve, Problem, SearchConfig};
use htd_trace::span;

/// An A* solve with spans enabled must land within 5% of the same solve
/// with spans disabled (plus a fixed allowance for scheduler noise on
/// loaded CI machines — the solves here run hundreds of milliseconds,
/// so the allowance stays well under the 5% it cushions).
#[test]
fn span_overhead_under_five_percent() {
    let g = gen::queen_graph(5);
    let solve_once = || {
        let cfg = SearchConfig::default().with_seed(7);
        let start = Instant::now();
        let out = solve(&Problem::treewidth(g.clone()), &cfg).unwrap();
        assert_eq!(out.exact_width(), Some(18));
        start.elapsed()
    };
    // warm up (page cache, lazy statics, registry counters)
    solve_once();
    let base: Duration = (0..3).map(|_| solve_once()).sum();
    span::set_spans_enabled(true);
    let with_spans: Duration = (0..3).map(|_| solve_once()).sum();
    span::set_spans_enabled(false);
    span::reset();
    assert!(
        with_spans < base.mul_f64(1.05) + Duration::from_millis(150),
        "spans enabled {with_spans:?} vs disabled {base:?} (>5% + slack)"
    );
}
