//! Fault-isolation stress: watchdog-style external cancellation racing a
//! panicking portfolio worker, many times over. Whatever interleaving the
//! race produces — cancel before the panic, after it, or mid-unwind — the
//! portfolio must return a coherent `Outcome` and must not leak threads.

use std::sync::Arc;
use std::time::Duration;

use htd_hypergraph::gen;
use htd_resilience::InjectedFaults;
use htd_search::{solve, Incumbent, Problem, SearchConfig};

/// Number of live threads of this process (Linux); `None` elsewhere.
fn live_threads() -> Option<usize> {
    std::fs::read_dir("/proc/self/task").ok().map(|d| d.count())
}

#[test]
fn cancellation_racing_a_panicking_worker_never_leaks() {
    let graphs: Vec<_> = (0..4).map(|s| gen::random_gnp(12, 0.3, s)).collect();
    let problems: Vec<_> = graphs
        .iter()
        .map(|g| Problem::treewidth(g.clone()))
        .collect();

    // warm up allocators/thread pools before the baseline thread count
    let _ = solve(&problems[0], &SearchConfig::default().with_threads(2));
    let baseline = live_threads();

    for i in 0..1000u64 {
        let inc = Arc::new(Incumbent::new());
        let mut cfg = SearchConfig::portfolio()
            .with_threads(2)
            .with_seed(i)
            .with_time_limit(Duration::from_millis(4))
            .with_faults(InjectedFaults::with_panics(1));
        cfg.shared = Some(Arc::clone(&inc));
        let problem = &problems[(i % 4) as usize];

        // the watchdog: cancels at a sliding offset so the cancellation
        // lands before, during, and after the injected panic across runs
        let canceller = {
            let inc = Arc::clone(&inc);
            std::thread::spawn(move || {
                if i % 3 > 0 {
                    std::thread::sleep(Duration::from_micros(200 * (i % 16)));
                }
                inc.cancel();
            })
        };

        let outcome = solve(problem, &cfg).expect("a cancelled+panicked solve still yields bounds");
        assert!(
            outcome.lower <= outcome.upper,
            "iteration {i}: incoherent bounds {}..{}",
            outcome.lower,
            outcome.upper
        );
        canceller.join().expect("canceller never panics");
    }

    // crossbeam scopes join every worker; a leak shows up as monotone
    // thread-count growth. Allow generous slack for runtime bookkeeping.
    if let (Some(before), Some(after)) = (baseline, live_threads()) {
        assert!(
            after <= before + 4,
            "thread leak: {before} threads before the stress, {after} after"
        );
    }
}
