//! The relational algebra underneath the decomposition-guided solvers.
//!
//! A [`Relation`] is a set of tuples over named variables (columns).
//! Natural join and semijoin are hash-based: build a hash table on the
//! shared columns of one side, probe with the other — the standard
//! equi-join plan of any query engine, which is exactly what Acyclic
//! Solving's semijoin program needs.

use std::collections::HashMap;

use crate::model::{Value, VarId};

/// A relation with a variable schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relation {
    /// The schema: distinct variables, one per column.
    pub vars: Vec<VarId>,
    /// The tuples; each has `vars.len()` values.
    pub tuples: Vec<Vec<Value>>,
}

impl Relation {
    /// Creates a relation, debug-checking arity.
    pub fn new(vars: Vec<VarId>, tuples: Vec<Vec<Value>>) -> Self {
        debug_assert!(tuples.iter().all(|t| t.len() == vars.len()));
        Relation { vars, tuples }
    }

    /// The relation over no variables containing the empty tuple — the
    /// join identity.
    pub fn unit() -> Self {
        Relation {
            vars: vec![],
            tuples: vec![vec![]],
        }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` iff the relation has no tuples (the *empty* relation, not
    /// the unit relation).
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Column index of `v`, if present.
    pub fn col(&self, v: VarId) -> Option<usize> {
        self.vars.iter().position(|&x| x == v)
    }

    /// The shared columns with `other`: pairs `(my column, their column)`.
    fn shared_cols(&self, other: &Relation) -> Vec<(usize, usize)> {
        self.vars
            .iter()
            .enumerate()
            .filter_map(|(i, &v)| other.col(v).map(|j| (i, j)))
            .collect()
    }

    fn key(tuple: &[Value], cols: &[usize]) -> Vec<Value> {
        cols.iter().map(|&c| tuple[c]).collect()
    }

    /// Natural join (hash join): tuples agreeing on all shared variables,
    /// extended with the other side's private columns. With no shared
    /// variables this is the cross product.
    ///
    /// ```
    /// use htd_csp::Relation;
    /// let a = Relation::new(vec![0, 1], vec![vec![1, 2], vec![3, 4]]);
    /// let b = Relation::new(vec![1, 2], vec![vec![2, 9]]);
    /// let j = a.join(&b);
    /// assert_eq!(j.vars, vec![0, 1, 2]);
    /// assert_eq!(j.tuples, vec![vec![1, 2, 9]]);
    /// ```
    pub fn join(&self, other: &Relation) -> Relation {
        let shared = self.shared_cols(other);
        let my_cols: Vec<usize> = shared.iter().map(|&(i, _)| i).collect();
        let their_cols: Vec<usize> = shared.iter().map(|&(_, j)| j).collect();
        let their_private: Vec<usize> = (0..other.vars.len())
            .filter(|j| !their_cols.contains(j))
            .collect();
        // build on the smaller side in a full engine; here always on other
        let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (t_ix, t) in other.tuples.iter().enumerate() {
            table
                .entry(Self::key(t, &their_cols))
                .or_default()
                .push(t_ix);
        }
        let mut vars = self.vars.clone();
        vars.extend(their_private.iter().map(|&j| other.vars[j]));
        let mut tuples = Vec::new();
        for t in &self.tuples {
            if let Some(matches) = table.get(&Self::key(t, &my_cols)) {
                for &m in matches {
                    let mut out = t.clone();
                    out.extend(their_private.iter().map(|&j| other.tuples[m][j]));
                    tuples.push(out);
                }
            }
        }
        Relation { vars, tuples }
    }

    /// Semijoin `self ⋉ other`: keeps my tuples with at least one partner
    /// in `other` on the shared variables. With no shared variables this
    /// keeps everything iff `other` is non-empty.
    pub fn semijoin(&self, other: &Relation) -> Relation {
        let shared = self.shared_cols(other);
        if shared.is_empty() {
            return if other.is_empty() {
                Relation::new(self.vars.clone(), vec![])
            } else {
                self.clone()
            };
        }
        let my_cols: Vec<usize> = shared.iter().map(|&(i, _)| i).collect();
        let their_cols: Vec<usize> = shared.iter().map(|&(_, j)| j).collect();
        let mut table: std::collections::HashSet<Vec<Value>> = std::collections::HashSet::new();
        for t in &other.tuples {
            table.insert(Self::key(t, &their_cols));
        }
        let tuples = self
            .tuples
            .iter()
            .filter(|t| table.contains(&Self::key(t, &my_cols)))
            .cloned()
            .collect();
        Relation::new(self.vars.clone(), tuples)
    }

    /// Projection to `keep` (deduplicating), in the order given.
    pub fn project(&self, keep: &[VarId]) -> Relation {
        let cols: Vec<usize> = keep
            .iter()
            .map(|&v| self.col(v).expect("projection variable must exist"))
            .collect();
        let mut seen = std::collections::HashSet::new();
        let mut tuples = Vec::new();
        for t in &self.tuples {
            let out = Self::key(t, &cols);
            if seen.insert(out.clone()) {
                tuples.push(out);
            }
        }
        Relation::new(keep.to_vec(), tuples)
    }

    /// Selects the tuples consistent with a partial assignment
    /// (`assignment[v] == u32::MAX` means unassigned).
    pub fn select_consistent(&self, assignment: &[Value]) -> Relation {
        let tuples = self
            .tuples
            .iter()
            .filter(|t| {
                self.vars.iter().zip(t.iter()).all(|(&v, &val)| {
                    let a = assignment[v as usize];
                    a == u32::MAX || a == val
                })
            })
            .cloned()
            .collect();
        Relation::new(self.vars.clone(), tuples)
    }

    /// The full relation over `vars` with the given uniform domain sizes:
    /// the cross product of the domains. Used by Join Tree Clustering for
    /// bag variables no assigned constraint mentions.
    pub fn full(vars: &[VarId], domain_sizes: &[u32]) -> Relation {
        let mut tuples: Vec<Vec<Value>> = vec![vec![]];
        for &v in vars {
            let d = domain_sizes[v as usize];
            let mut next = Vec::with_capacity(tuples.len() * d as usize);
            for t in &tuples {
                for val in 0..d {
                    let mut t2 = t.clone();
                    t2.push(val);
                    next.push(t2);
                }
            }
            tuples = next;
        }
        Relation::new(vars.to_vec(), tuples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(vars: &[u32], tuples: &[&[u32]]) -> Relation {
        Relation::new(vars.to_vec(), tuples.iter().map(|t| t.to_vec()).collect())
    }

    #[test]
    fn join_on_shared_variable() {
        let a = r(&[0, 1], &[&[0, 1], &[1, 0], &[1, 1]]);
        let b = r(&[1, 2], &[&[1, 5], &[0, 7]]);
        let j = a.join(&b);
        assert_eq!(j.vars, vec![0, 1, 2]);
        let mut got = j.tuples.clone();
        got.sort();
        assert_eq!(got, vec![vec![0, 1, 5], vec![1, 0, 7], vec![1, 1, 5]]);
    }

    #[test]
    fn join_without_shared_is_cross_product() {
        let a = r(&[0], &[&[0], &[1]]);
        let b = r(&[1], &[&[5], &[6]]);
        assert_eq!(a.join(&b).len(), 4);
    }

    #[test]
    fn join_with_unit_is_identity() {
        let a = r(&[0, 1], &[&[0, 1], &[1, 0]]);
        let j = Relation::unit().join(&a);
        assert_eq!(j.len(), 2);
        assert_eq!(j.vars, vec![0, 1]);
    }

    #[test]
    fn semijoin_filters() {
        let a = r(&[0, 1], &[&[0, 1], &[1, 0], &[1, 1]]);
        let b = r(&[1], &[&[1]]);
        let s = a.semijoin(&b);
        let mut got = s.tuples.clone();
        got.sort();
        assert_eq!(got, vec![vec![0, 1], vec![1, 1]]);
        // empty other with no shared vars kills everything
        let empty = r(&[7], &[]);
        assert!(a.semijoin(&empty).is_empty());
        // non-empty other with no shared vars keeps everything
        let other = r(&[7], &[&[0]]);
        assert_eq!(a.semijoin(&other).len(), 3);
    }

    #[test]
    fn projection_deduplicates() {
        let a = r(&[0, 1], &[&[0, 1], &[0, 0], &[1, 1]]);
        let p = a.project(&[0]);
        assert_eq!(p.vars, vec![0]);
        assert_eq!(p.len(), 2);
        // reordering columns
        let q = a.project(&[1, 0]);
        assert!(q.tuples.contains(&vec![1, 0]));
    }

    #[test]
    fn select_consistent_with_partial_assignment() {
        let a = r(&[0, 2], &[&[0, 1], &[1, 1], &[1, 0]]);
        // x0 = 1, x2 unassigned
        let s = a.select_consistent(&[1, u32::MAX, u32::MAX]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn full_relation_cross_product() {
        let f = Relation::full(&[0, 1], &[2, 3]);
        assert_eq!(f.len(), 6);
        let empty_vars = Relation::full(&[], &[2]);
        assert_eq!(empty_vars.len(), 1); // the unit relation
    }

    #[test]
    fn join_semijoin_consistency() {
        // a ⋉ b has the same tuples as π_vars(a)(a ⋈ b)
        let a = r(&[0, 1], &[&[0, 1], &[1, 0], &[1, 1]]);
        let b = r(&[1, 2], &[&[1, 5], &[0, 7]]);
        let lhs = a.semijoin(&b);
        let rhs = a.join(&b).project(&[0, 1]);
        let mut l = lhs.tuples.clone();
        let mut rr = rhs.tuples.clone();
        l.sort();
        rr.sort();
        assert_eq!(l, rr);
    }
}
