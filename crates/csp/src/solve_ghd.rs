//! Solving from a complete generalized hypertree decomposition
//! (thesis §2.4, Fig. 2.9).
//!
//! For each node `p` the relation is `π_χ(p)( ⋈_{e ∈ λ(p)} R_e )` — a join
//! of at most `width` constraint relations, never a domain cross product.
//! This is the payoff of generalized hypertree width over treewidth: a bag
//! with many variables but few covering constraints stays cheap.

use htd_core::GeneralizedHypertreeDecomposition;

use crate::acyclic::acyclic_solve;
use crate::model::{Csp, Value};
use crate::relation::Relation;

/// Solves `csp` from a generalized hypertree decomposition of its
/// constraint hypergraph (edge `e` of the hypergraph = constraint `e`).
/// The decomposition is completed first (Lemma 2), so every constraint is
/// enforced. Returns `None` if unsatisfiable.
pub fn solve_with_ghd(csp: &Csp, ghd: &GeneralizedHypertreeDecomposition) -> Option<Vec<Value>> {
    let h = csp.hypergraph();
    debug_assert!(ghd.validate(&h).is_ok());
    let complete = ghd.complete(&h);
    let td = complete.tree();
    let rels: Vec<Relation> = (0..td.num_nodes())
        .map(|p| {
            let mut rel = Relation::unit();
            for &e in complete.lambda(p) {
                let c = &csp.constraints[e as usize];
                rel = rel.join(&Relation::new(c.scope.clone(), c.tuples.clone()));
            }
            let bag_vars: Vec<u32> = td.bag(p).iter().filter(|&v| rel.col(v).is_some()).collect();
            debug_assert_eq!(
                bag_vars.len() as u32,
                td.bag(p).len(),
                "condition 3: λ covers χ"
            );
            rel.project(&bag_vars)
        })
        .collect();
    if rels.iter().any(|r| r.is_empty()) {
        return None;
    }
    let mut a = acyclic_solve(td, &rels, csp.num_vars())?;
    for slot in a.iter_mut() {
        if *slot == u32::MAX {
            *slot = 0;
        }
    }
    csp.is_solution(&a).then_some(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use htd_core::bucket::ghd_via_elimination;
    use htd_core::ordering::EliminationOrdering;
    use htd_core::CoverStrategy;

    fn ghd_of(csp: &Csp) -> GeneralizedHypertreeDecomposition {
        let h = csp.hypergraph();
        let order = EliminationOrdering::identity(h.num_vertices());
        ghd_via_elimination(&h, &order, CoverStrategy::Exact).expect("coverable")
    }

    #[test]
    fn solves_australia_coloring() {
        // TAS is unconstrained: pad with a domain constraint so the
        // hypergraph covers every vertex
        let csp = builders::australia_map_coloring().pad_unconstrained();
        let a = solve_with_ghd(&csp, &ghd_of(&csp)).expect("3-colorable");
        assert!(csp.is_solution(&a));
    }

    #[test]
    fn thesis_example_5_has_a_solution() {
        let csp = builders::thesis_example_5();
        let a = solve_with_ghd(&csp, &ghd_of(&csp)).expect("satisfiable");
        assert!(csp.is_solution(&a));
        // the thesis lists x1=a as part of a solution; check domain use
        assert!(a.iter().all(|&v| v < 3));
    }

    #[test]
    fn detects_unsatisfiable_instances() {
        let g = htd_hypergraph::gen::complete_graph(4);
        let csp = builders::graph_coloring(&g, 3);
        assert!(solve_with_ghd(&csp, &ghd_of(&csp)).is_none());
    }

    #[test]
    fn agrees_with_td_solving_and_backtracking() {
        for seed in 0..10u64 {
            let csp = builders::random_binary_csp(8, 3, 0.5, 0.4, seed).pad_unconstrained();
            let h = csp.hypergraph();
            let order = EliminationOrdering::identity(8);
            let td = htd_core::bucket::td_of_hypergraph(&h, &order);
            let ghd = ghd_of(&csp);
            let via_td = crate::solve_td::solve_with_td(&csp, &td).is_some();
            let via_ghd = solve_with_ghd(&csp, &ghd).is_some();
            let via_bt = crate::backtrack::backtrack_solve(&csp).solution.is_some();
            assert_eq!(via_td, via_bt, "seed {seed}: td vs backtracking");
            assert_eq!(via_ghd, via_bt, "seed {seed}: ghd vs backtracking");
        }
    }

    #[test]
    fn sat_instances_roundtrip() {
        // the thesis's Example 2 formula is satisfiable
        let csp = builders::thesis_example_2_sat();
        let a = solve_with_ghd(&csp, &ghd_of(&csp)).expect("satisfiable");
        assert!(csp.is_solution(&a));
    }
}
