//! Solution counting by dynamic programming over a tree decomposition.
//!
//! The thesis quotes `O(n^{m-1} log n)` for *computing all* consistent
//! assignments by joining everything (§2.2.2); a decomposition does the
//! counting without materializing the joint relation: each node's tuples
//! carry the number of extensions into the subtree below (a sum–product
//! message pass over the join tree), so counting costs
//! `O(nodes · d^{width+1})`.

use std::collections::HashMap;

use htd_core::TreeDecomposition;

use crate::model::{Csp, Value};
use crate::relation::Relation;
use crate::solve_td::node_relations;

/// Counts the complete consistent assignments of `csp` using a tree
/// decomposition of its constraint hypergraph. Variables outside every bag
/// (unconstrained) multiply the count by their domain size.
///
/// ```
/// use htd_csp::{builders, count_solutions_td};
/// use htd_core::bucket::td_of_hypergraph;
/// use htd_core::ordering::EliminationOrdering;
/// // 4-queens has exactly two solutions
/// let csp = builders::n_queens(4);
/// let h = csp.hypergraph();
/// let td = td_of_hypergraph(&h, &EliminationOrdering::identity(4));
/// assert_eq!(count_solutions_td(&csp, &td), 2);
/// ```
pub fn count_solutions_td(csp: &Csp, td: &TreeDecomposition) -> u64 {
    debug_assert!(td.validate(&csp.hypergraph()).is_ok());
    let rels = node_relations(csp, td);
    let in_tree = count_join_tree(td, &rels);
    // free variables: in no bag
    let mut covered = vec![false; csp.num_vars() as usize];
    for p in 0..td.num_nodes() {
        for v in td.bag(p).iter() {
            covered[v as usize] = true;
        }
    }
    let free: u64 = covered
        .iter()
        .zip(&csp.domain_sizes)
        .filter(|(&c, _)| !c)
        .map(|(_, &d)| d as u64)
        .product();
    in_tree * free
}

/// Sum–product over a join tree of relations: the number of assignments to
/// the union of the relation schemas consistent with every relation.
pub fn count_join_tree(tree: &TreeDecomposition, rels: &[Relation]) -> u64 {
    assert_eq!(tree.num_nodes(), rels.len());
    let order = tree.topological_order();
    // weight per tuple per node, initialized to 1
    let mut weights: Vec<Vec<u64>> = rels.iter().map(|r| vec![1; r.len()]).collect();
    // process children before parents
    for &p in order.iter().rev() {
        let Some(q) = tree.parent(p) else { continue };
        // shared columns between parent q and child p
        let shared: Vec<(usize, usize)> = rels[q]
            .vars
            .iter()
            .enumerate()
            .filter_map(|(i, &v)| rels[p].col(v).map(|j| (i, j)))
            .collect();
        let child_cols: Vec<usize> = shared.iter().map(|&(_, j)| j).collect();
        let parent_cols: Vec<usize> = shared.iter().map(|&(i, _)| i).collect();
        // message: key over shared vars -> summed child weight
        let mut msg: HashMap<Vec<Value>, u64> = HashMap::new();
        for (t_ix, t) in rels[p].tuples.iter().enumerate() {
            let key: Vec<Value> = child_cols.iter().map(|&c| t[c]).collect();
            *msg.entry(key).or_insert(0) += weights[p][t_ix];
        }
        for (t_ix, t) in rels[q].tuples.iter().enumerate() {
            let key: Vec<Value> = parent_cols.iter().map(|&c| t[c]).collect();
            let m = msg.get(&key).copied().unwrap_or(0);
            weights[q][t_ix] = weights[q][t_ix].saturating_mul(m);
        }
    }
    weights[tree.root()].iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backtrack::count_all_solutions;
    use crate::builders;
    use htd_core::bucket::td_of_hypergraph;
    use htd_core::ordering::EliminationOrdering;

    fn td_for(csp: &Csp) -> TreeDecomposition {
        let h = csp.hypergraph();
        let order = EliminationOrdering::identity(h.num_vertices());
        td_of_hypergraph(&h, &order)
    }

    #[test]
    fn counts_match_backtracking_on_classics() {
        // triangle 3-coloring: 6; K4 4-coloring: 24; 4-queens: 2
        let tri = builders::graph_coloring(&htd_hypergraph::gen::cycle_graph(3), 3);
        assert_eq!(count_solutions_td(&tri, &td_for(&tri)), 6);
        let k4 = builders::graph_coloring(&htd_hypergraph::gen::complete_graph(4), 4);
        assert_eq!(count_solutions_td(&k4, &td_for(&k4)), 24);
        let q4 = builders::n_queens(4);
        assert_eq!(count_solutions_td(&q4, &td_for(&q4)), 2);
        let q5 = builders::n_queens(5);
        assert_eq!(count_solutions_td(&q5, &td_for(&q5)), 10);
    }

    #[test]
    fn counts_match_backtracking_on_random_csps() {
        for seed in 0..12u64 {
            let csp = builders::random_binary_csp(7, 3, 0.5, 0.35, seed);
            let expected = count_all_solutions(&csp);
            let got = count_solutions_td(&csp, &td_for(&csp));
            assert_eq!(got, expected, "seed {seed}");
        }
    }

    #[test]
    fn unconstrained_variables_multiply() {
        let mut csp = Csp::uniform(3, 4);
        csp.add_constraint(crate::model::Constraint::new(
            "c",
            vec![0, 1],
            vec![vec![0, 0], vec![1, 1]],
        ));
        // variable 2 is free: any identity ordering TD covers only {0,1}?
        // the hypergraph doesn't cover vertex 2, so build TD over it by hand
        let td = TreeDecomposition::trivial(3);
        // trivial TD covers vertex 2 — free multiplication doesn't apply,
        // the cross product inside node relations handles it instead
        assert_eq!(count_solutions_td(&csp, &td), 2 * 4);
        // now a TD that genuinely omits the free variable
        let h_covered = htd_hypergraph::VertexSet::from_iter_with_capacity(3, [0u32, 1]);
        let bags = vec![h_covered];
        let td2 = TreeDecomposition::new(bags, vec![None]).unwrap();
        assert_eq!(count_solutions_td(&csp, &td2), 2 * 4);
    }

    #[test]
    fn unsatisfiable_counts_zero() {
        let csp = builders::graph_coloring(&htd_hypergraph::gen::complete_graph(4), 3);
        assert_eq!(count_solutions_td(&csp, &td_for(&csp)), 0);
        let unsat = builders::sat_to_csp(1, &[vec![1], vec![-1]]);
        let order = EliminationOrdering::identity(1);
        let td = td_of_hypergraph(&unsat.hypergraph(), &order);
        assert_eq!(count_solutions_td(&unsat, &td), 0);
    }

    #[test]
    fn australia_has_18_colorings_of_the_mainland() {
        // the mainland subgraph has 6 proper 3-colorings; TAS is free (×3)
        let csp = builders::australia_map_coloring();
        let expected = count_all_solutions(&csp);
        let got = count_solutions_td(&csp, &td_for(&csp));
        assert_eq!(got, expected);
        assert_eq!(got % 3, 0); // TAS factor
    }
}
