//! A plain-text CSP format, so instances can travel through the CLI.
//!
//! ```text
//! % comment
//! csp 3 2            % 3 variables, default domain size 2
//! dom 2 4            % variable 2 has domain size 4
//! con neq 0 1 : 0 1 ; 1 0 ;
//! con t 1 2 : 0 0 ; 1 3 ;
//! ```
//!
//! `con <name> <vars…> : <tuple> ; <tuple> ; …` — each tuple lists one
//! value per scope variable.

use std::fmt::Write as _;

use crate::model::{Constraint, Csp};

/// Errors of the CSP parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CspParseError {
    /// Missing or malformed `csp <n> <d>` header.
    MissingHeader,
    /// A line could not be interpreted.
    BadLine(String),
    /// Variable/value out of declared range, or tuple arity mismatch.
    OutOfRange(String),
}

impl std::fmt::Display for CspParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CspParseError::MissingHeader => write!(f, "missing 'csp <n> <d>' header"),
            CspParseError::BadLine(l) => write!(f, "unparseable line {l:?}"),
            CspParseError::OutOfRange(x) => write!(f, "out of range: {x}"),
        }
    }
}

impl std::error::Error for CspParseError {}

/// Parses the text CSP format.
pub fn parse_csp(text: &str) -> Result<Csp, CspParseError> {
    let mut csp: Option<Csp> = None;
    for raw in text.lines() {
        let line = match raw.find('%') {
            Some(i) => &raw[..i],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        match it.next() {
            Some("csp") => {
                let n: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or(CspParseError::MissingHeader)?;
                let d: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or(CspParseError::MissingHeader)?;
                csp = Some(Csp::uniform(n, d));
            }
            Some("dom") => {
                let c = csp.as_mut().ok_or(CspParseError::MissingHeader)?;
                let v: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| CspParseError::BadLine(line.into()))?;
                let d: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| CspParseError::BadLine(line.into()))?;
                if v >= c.domain_sizes.len() {
                    return Err(CspParseError::OutOfRange(format!("variable {v}")));
                }
                c.domain_sizes[v] = d;
            }
            Some("con") => {
                let c = csp.as_mut().ok_or(CspParseError::MissingHeader)?;
                let name = it
                    .next()
                    .ok_or_else(|| CspParseError::BadLine(line.into()))?
                    .to_string();
                let rest: Vec<&str> = it.collect();
                let colon = rest
                    .iter()
                    .position(|&t| t == ":")
                    .ok_or_else(|| CspParseError::BadLine(line.into()))?;
                let scope: Vec<u32> = rest[..colon]
                    .iter()
                    .map(|t| t.parse().map_err(|_| CspParseError::BadLine(line.into())))
                    .collect::<Result<_, _>>()?;
                if scope.iter().any(|&v| v >= c.num_vars()) {
                    return Err(CspParseError::OutOfRange(format!("scope in {name}")));
                }
                let arity = scope.len();
                let mut tuples = Vec::new();
                let mut current: Vec<u32> = Vec::new();
                for &tok in &rest[colon + 1..] {
                    if tok == ";" {
                        if current.len() != arity {
                            return Err(CspParseError::OutOfRange(format!(
                                "tuple arity in {name}"
                            )));
                        }
                        tuples.push(std::mem::take(&mut current));
                    } else {
                        let val: u32 = tok
                            .parse()
                            .map_err(|_| CspParseError::BadLine(line.into()))?;
                        current.push(val);
                    }
                }
                if !current.is_empty() {
                    if current.len() != arity {
                        return Err(CspParseError::OutOfRange(format!("tuple arity in {name}")));
                    }
                    tuples.push(current);
                }
                for t in &tuples {
                    for (i, &val) in t.iter().enumerate() {
                        if val >= c.domain_sizes[scope[i] as usize] {
                            return Err(CspParseError::OutOfRange(format!(
                                "value {val} for variable {} in {name}",
                                scope[i]
                            )));
                        }
                    }
                }
                c.add_constraint(Constraint::new(name, scope, tuples));
            }
            Some(_) => return Err(CspParseError::BadLine(line.into())),
            None => {}
        }
    }
    csp.ok_or(CspParseError::MissingHeader)
}

/// Writes a CSP in the text format.
pub fn write_csp(csp: &Csp) -> String {
    let mut out = String::new();
    let default = csp.domain_sizes.first().copied().unwrap_or(1);
    let _ = writeln!(out, "csp {} {}", csp.num_vars(), default);
    for (v, &d) in csp.domain_sizes.iter().enumerate() {
        if d != default {
            let _ = writeln!(out, "dom {v} {d}");
        }
    }
    for c in &csp.constraints {
        let scope: Vec<String> = c.scope.iter().map(|v| v.to_string()).collect();
        let mut line = format!("con {} {} :", c.name.replace(' ', "_"), scope.join(" "));
        for t in &c.tuples {
            let vals: Vec<String> = t.iter().map(|v| v.to_string()).collect();
            let _ = write!(line, " {} ;", vals.join(" "));
        }
        let _ = writeln!(out, "{line}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn roundtrip_classic_instances() {
        for csp in [
            builders::australia_map_coloring(),
            builders::n_queens(4),
            builders::thesis_example_5(),
        ] {
            let text = write_csp(&csp);
            let parsed = parse_csp(&text).unwrap();
            assert_eq!(parsed.num_vars(), csp.num_vars());
            assert_eq!(parsed.constraints.len(), csp.constraints.len());
            for (a, b) in parsed.constraints.iter().zip(&csp.constraints) {
                assert_eq!(a.scope, b.scope);
                assert_eq!(a.tuples, b.tuples);
            }
            // same satisfiability
            let sa = crate::backtrack::backtrack_solve(&parsed)
                .solution
                .is_some();
            let sb = crate::backtrack::backtrack_solve(&csp).solution.is_some();
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn parses_the_doc_example() {
        let text =
            "% comment\ncsp 3 2\ndom 2 4\ncon neq 0 1 : 0 1 ; 1 0 ;\ncon t 1 2 : 0 0 ; 1 3 ;\n";
        let csp = parse_csp(text).unwrap();
        assert_eq!(csp.num_vars(), 3);
        assert_eq!(csp.domain_sizes, vec![2, 2, 4]);
        assert_eq!(csp.constraints.len(), 2);
        assert_eq!(csp.constraints[1].tuples, vec![vec![0, 0], vec![1, 3]]);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(matches!(
            parse_csp("con x 0 : 1 ;"),
            Err(CspParseError::MissingHeader)
        ));
        assert!(matches!(
            parse_csp("csp 2 2\ncon c 5 : 0 ;"),
            Err(CspParseError::OutOfRange(_))
        ));
        assert!(matches!(
            parse_csp("csp 2 2\ncon c 0 1 : 0 ;"),
            Err(CspParseError::OutOfRange(_)) // arity mismatch
        ));
        assert!(matches!(
            parse_csp("csp 2 2\ncon c 0 : 7 ;"),
            Err(CspParseError::OutOfRange(_)) // value out of domain
        ));
        assert!(matches!(
            parse_csp("csp 2 2\nwat\n"),
            Err(CspParseError::BadLine(_))
        ));
    }

    #[test]
    fn trailing_tuple_without_semicolon() {
        let csp = parse_csp("csp 2 2\ncon c 0 1 : 0 1 ; 1 0\n").unwrap();
        assert_eq!(csp.constraints[0].tuples.len(), 2);
    }
}
