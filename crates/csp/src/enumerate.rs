//! Enumerating all solutions through a tree decomposition.
//!
//! The thesis's §2.2.2 motivation mentions computing *all* complete
//! consistent assignments; the decomposition route enumerates them with
//! polynomial delay: after the bottom-up semijoin pass every remaining
//! tuple extends to a solution, so a depth-first walk over consistent
//! tuple choices never dead-ends.

use htd_core::TreeDecomposition;

use crate::model::{Csp, Value};
use crate::relation::Relation;
use crate::solve_td::node_relations;

/// Enumerates every complete consistent assignment of `csp` via `td`,
/// calling `visit` for each; returns the number of solutions visited
/// (stops early when `visit` returns `false`).
///
/// Variables in no bag iterate over their full domains.
pub fn for_each_solution_td(
    csp: &Csp,
    td: &TreeDecomposition,
    mut visit: impl FnMut(&[Value]) -> bool,
) -> u64 {
    debug_assert!(td.validate(&csp.hypergraph()).is_ok());
    let mut rels = node_relations(csp, td);
    // bottom-up semijoins: afterwards every tuple is globally extendable
    let order = td.topological_order();
    {
        let _sp = htd_trace::span!("yannakakis.semijoin");
        for &p in order.iter().rev() {
            if let Some(q) = td.parent(p) {
                rels[q] = rels[q].semijoin(&rels[p]);
            }
        }
    }
    if rels.iter().any(Relation::is_empty) {
        return 0;
    }
    let _sp = htd_trace::span!("yannakakis.enumerate");
    // free variables (in no bag)
    let mut covered = vec![false; csp.num_vars() as usize];
    for p in 0..td.num_nodes() {
        for v in td.bag(p).iter() {
            covered[v as usize] = true;
        }
    }
    let free: Vec<u32> = (0..csp.num_vars())
        .filter(|&v| !covered[v as usize])
        .collect();
    let mut assignment = vec![u32::MAX; csp.num_vars() as usize];
    let mut count = 0u64;
    let mut go = true;
    walk_nodes(
        csp,
        td,
        &rels,
        &order,
        0,
        &free,
        &mut assignment,
        &mut count,
        &mut go,
        &mut visit,
    );
    count
}

#[allow(clippy::too_many_arguments, clippy::only_used_in_recursion)]
fn walk_nodes(
    csp: &Csp,
    td: &TreeDecomposition,
    rels: &[Relation],
    order: &[usize],
    depth: usize,
    free: &[u32],
    assignment: &mut Vec<Value>,
    count: &mut u64,
    go: &mut bool,
    visit: &mut impl FnMut(&[Value]) -> bool,
) {
    if !*go {
        return;
    }
    if depth == order.len() {
        walk_free(csp, free, 0, assignment, count, go, visit);
        return;
    }
    let p = order[depth];
    let consistent = rels[p].select_consistent(assignment);
    for t in &consistent.tuples {
        let mut touched = Vec::new();
        for (&v, &val) in rels[p].vars.iter().zip(t) {
            if assignment[v as usize] == u32::MAX {
                assignment[v as usize] = val;
                touched.push(v);
            }
        }
        walk_nodes(
            csp,
            td,
            rels,
            order,
            depth + 1,
            free,
            assignment,
            count,
            go,
            visit,
        );
        for v in touched {
            assignment[v as usize] = u32::MAX;
        }
        if !*go {
            return;
        }
    }
}

fn walk_free(
    csp: &Csp,
    free: &[u32],
    i: usize,
    assignment: &mut Vec<Value>,
    count: &mut u64,
    go: &mut bool,
    visit: &mut impl FnMut(&[Value]) -> bool,
) {
    if !*go {
        return;
    }
    if i == free.len() {
        debug_assert!(csp.is_solution(assignment));
        *count += 1;
        if !visit(assignment) {
            *go = false;
        }
        return;
    }
    let v = free[i] as usize;
    for val in 0..csp.domain_sizes[v] {
        assignment[v] = val;
        walk_free(csp, free, i + 1, assignment, count, go, visit);
        if !*go {
            break;
        }
    }
    assignment[v] = u32::MAX;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backtrack::count_all_solutions;
    use crate::builders;
    use crate::count::count_solutions_td;
    use htd_core::bucket::td_of_hypergraph;
    use htd_core::ordering::EliminationOrdering;

    fn td_for(csp: &Csp) -> TreeDecomposition {
        let h = csp.hypergraph();
        td_of_hypergraph(&h, &EliminationOrdering::identity(h.num_vertices()))
    }

    #[test]
    fn enumerates_all_queens_solutions() {
        let csp = builders::n_queens(5);
        let td = td_for(&csp);
        let mut seen = Vec::new();
        let n = for_each_solution_td(&csp, &td, |a| {
            seen.push(a.to_vec());
            true
        });
        assert_eq!(n, 10);
        assert_eq!(seen.len(), 10);
        // all distinct and all valid
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 10);
        assert!(seen.iter().all(|a| csp.is_solution(a)));
    }

    #[test]
    fn enumeration_count_matches_counting_dp() {
        for seed in 0..8u64 {
            let csp = builders::random_binary_csp(7, 3, 0.5, 0.35, seed);
            let td = td_for(&csp);
            let by_enum = for_each_solution_td(&csp, &td, |_| true);
            let by_dp = count_solutions_td(&csp, &td);
            let by_bt = count_all_solutions(&csp);
            assert_eq!(by_enum, by_dp, "seed {seed}");
            assert_eq!(by_enum, by_bt, "seed {seed}");
        }
    }

    #[test]
    fn early_stop_respected() {
        let csp = builders::graph_coloring(&htd_hypergraph::gen::cycle_graph(4), 3);
        let td = td_for(&csp);
        let mut visited = 0;
        let n = for_each_solution_td(&csp, &td, |_| {
            visited += 1;
            visited < 3
        });
        assert_eq!(n, 3);
        assert_eq!(visited, 3);
    }

    #[test]
    fn free_variables_enumerate_their_domains() {
        let csp = builders::australia_map_coloring(); // TAS is free
        let td = td_for(&csp);
        let total = for_each_solution_td(&csp, &td, |_| true);
        assert_eq!(total, count_all_solutions(&csp));
        assert_eq!(total % 3, 0);
    }

    #[test]
    fn unsat_enumerates_nothing() {
        let csp = builders::graph_coloring(&htd_hypergraph::gen::complete_graph(4), 3);
        let td = td_for(&csp);
        assert_eq!(for_each_solution_td(&csp, &td, |_| true), 0);
    }
}
