//! Classic CSP instances (thesis Examples 1, 2 and 5) and generators.

use htd_hypergraph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::model::{Constraint, Csp, Value};

/// The map-3-coloring of Australia (thesis Example 1): seven regions,
/// inequality constraints on the nine borders.
pub fn australia_map_coloring() -> Csp {
    let regions = ["WA", "NT", "Q", "SA", "NSW", "V", "TAS"];
    let borders: [(usize, usize); 9] = [
        (1, 0), // NT-WA
        (3, 0), // SA-WA
        (1, 2), // NT-Q
        (1, 3), // NT-SA
        (2, 3), // Q-SA
        (4, 2), // NSW-Q
        (4, 5), // NSW-V
        (4, 3), // NSW-SA
        (3, 5), // SA-V
    ];
    let mut csp = Csp::uniform(7, 3);
    csp.variables = regions.iter().map(|s| s.to_string()).collect();
    for (i, &(a, b)) in borders.iter().enumerate() {
        csp.add_constraint(neq_constraint(format!("C{}", i + 1), a as u32, b as u32, 3));
    }
    csp
}

/// Graph `k`-coloring as a CSP: one inequality constraint per edge.
pub fn graph_coloring(g: &Graph, k: u32) -> Csp {
    let mut csp = Csp::uniform(g.num_vertices(), k);
    for (u, v) in g.edges() {
        csp.add_constraint(neq_constraint(format!("e{u}_{v}"), u, v, k));
    }
    csp
}

fn neq_constraint(name: String, a: u32, b: u32, k: u32) -> Constraint {
    let tuples = (0..k)
        .flat_map(|x| (0..k).filter(move |&y| y != x).map(move |y| vec![x, y]))
        .collect();
    Constraint::new(name, vec![a, b], tuples)
}

/// A CNF formula as a CSP (thesis Example 2): booleans are `{0 = false,
/// 1 = true}`; each clause is a constraint allowing every assignment of
/// its variables except the all-falsifying one. Literals are signed var
/// indices: `+v` positive, `-v` negated, 1-based like DIMACS.
pub fn sat_to_csp(num_vars: u32, clauses: &[Vec<i32>]) -> Csp {
    let mut csp = Csp::uniform(num_vars, 2);
    for (ci, clause) in clauses.iter().enumerate() {
        let scope: Vec<u32> = clause.iter().map(|&l| l.unsigned_abs() - 1).collect();
        let k = scope.len();
        let mut tuples = Vec::with_capacity((1usize << k) - 1);
        for mask in 0..(1u32 << k) {
            let mut vals = Vec::with_capacity(k);
            let mut satisfies = false;
            for (j, &lit) in clause.iter().enumerate() {
                let val = (mask >> j) & 1;
                vals.push(val);
                if (lit > 0 && val == 1) || (lit < 0 && val == 0) {
                    satisfies = true;
                }
            }
            if satisfies {
                tuples.push(vals);
            }
        }
        csp.add_constraint(Constraint::new(format!("clause{ci}"), scope, tuples));
    }
    csp
}

/// The SAT formula of thesis Example 2:
/// `(¬x1 ∨ x2 ∨ x3) ∧ (x1 ∨ ¬x4) ∧ (¬x3 ∨ ¬x5)`.
pub fn thesis_example_2_sat() -> Csp {
    sat_to_csp(5, &[vec![-1, 2, 3], vec![1, -4], vec![-3, -5]])
}

/// The CSP of thesis Example 5: six variables, three ternary constraints
/// with explicitly listed relations over the values `{a, b, c}` (encoded
/// `a=0, b=1, c=2`).
pub fn thesis_example_5() -> Csp {
    let mut csp = Csp::uniform(6, 3);
    // R1 over (x1,x2,x3) = {(a,b,c), (a,c,b), (b,b,c)}
    csp.add_constraint(Constraint::new(
        "C1",
        vec![0, 1, 2],
        vec![vec![0, 1, 2], vec![0, 2, 1], vec![1, 1, 2]],
    ));
    // R2 over (x1,x5,x6) = {(a,b,c), (a,c,b)}
    csp.add_constraint(Constraint::new(
        "C2",
        vec![0, 4, 5],
        vec![vec![0, 1, 2], vec![0, 2, 1]],
    ));
    // R3 over (x3,x4,x5) = {(c,b,c), (c,c,b)}
    csp.add_constraint(Constraint::new(
        "C3",
        vec![2, 3, 4],
        vec![vec![2, 1, 2], vec![2, 2, 1]],
    ));
    csp
}

/// The n-queens problem as a binary CSP: one variable per column (the row
/// of that column's queen), constraints between every column pair.
pub fn n_queens(n: u32) -> Csp {
    let mut csp = Csp::uniform(n, n);
    for i in 0..n {
        for j in i + 1..n {
            let tuples: Vec<Vec<Value>> = (0..n)
                .flat_map(|ri| {
                    (0..n).filter_map(move |rj| {
                        let diag = (ri as i64 - rj as i64).abs() == (j - i) as i64;
                        (ri != rj && !diag).then(|| vec![ri, rj])
                    })
                })
                .collect();
            csp.add_constraint(Constraint::new(format!("q{i}_{j}"), vec![i, j], tuples));
        }
    }
    csp
}

/// A seeded random binary CSP in the classic `(n, d, p1, p2)` model:
/// each of the `n(n-1)/2` variable pairs is constrained with probability
/// `p1`; a constrained pair forbids each value combination with
/// probability `p2`.
pub fn random_binary_csp(n: u32, d: u32, p1: f64, p2: f64, seed: u64) -> Csp {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut csp = Csp::uniform(n, d);
    for i in 0..n {
        for j in i + 1..n {
            if !rng.gen_bool(p1) {
                continue;
            }
            let tuples: Vec<Vec<Value>> = (0..d)
                .flat_map(|x| (0..d).map(move |y| vec![x, y]))
                .filter(|_| !rng.gen_bool(p2))
                .collect();
            csp.add_constraint(Constraint::new(format!("r{i}_{j}"), vec![i, j], tuples));
        }
    }
    csp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backtrack::{backtrack_solve, count_all_solutions};

    #[test]
    fn australia_structure() {
        let csp = australia_map_coloring();
        assert_eq!(csp.num_vars(), 7);
        assert_eq!(csp.constraints.len(), 9);
        // the thesis's listed solution: WA=r NT=g SA=b Q=r NSW=g V=r TAS=g
        // with r=0, g=1, b=2
        assert!(csp.is_solution(&[0, 1, 0, 2, 1, 0, 1]));
        // TAS is unconstrained (island): its hypergraph doesn't cover it
        assert!(!csp.hypergraph().covers_all_vertices());
    }

    #[test]
    fn example_2_sat_solution_from_thesis() {
        let csp = thesis_example_2_sat();
        // x1=t x2=t x3=f x4=t x5=f  →  1,1,0,1,0
        assert!(csp.is_solution(&[1, 1, 0, 1, 0]));
        // and ¬x1,…: all-false satisfies too (every clause has a negative)
        assert!(csp.is_solution(&[0, 0, 0, 0, 0]));
        assert!(backtrack_solve(&csp).solution.is_some());
    }

    #[test]
    fn example_5_satisfiable() {
        let csp = thesis_example_5();
        let a = backtrack_solve(&csp).solution.expect("satisfiable");
        assert!(csp.is_solution(&a));
    }

    #[test]
    fn unsat_formula_detected() {
        // (x1) ∧ (¬x1)
        let csp = sat_to_csp(1, &[vec![1], vec![-1]]);
        assert!(backtrack_solve(&csp).solution.is_none());
        assert_eq!(count_all_solutions(&csp), 0);
    }

    #[test]
    fn queens_structure() {
        let csp = n_queens(4);
        assert_eq!(csp.num_vars(), 4);
        assert_eq!(csp.constraints.len(), 6);
        // queens hypergraph's primal graph is complete
        let g = csp.hypergraph().primal_graph();
        assert_eq!(g.num_edges(), 6);
    }

    #[test]
    fn random_csp_is_deterministic() {
        let a = random_binary_csp(6, 3, 0.5, 0.3, 9);
        let b = random_binary_csp(6, 3, 0.5, 0.3, 9);
        assert_eq!(a.constraints.len(), b.constraints.len());
        for (x, y) in a.constraints.iter().zip(&b.constraints) {
            assert_eq!(x.tuples, y.tuples);
        }
    }
}
