//! Algorithm Acyclic Solving (thesis Fig. 2.4).
//!
//! Input: one relation per node of a join tree (any tree decomposition
//! whose node relations are over the bag variables works). Bottom-up, each
//! parent is semijoined with each child, deleting parent tuples with no
//! consistent extension below; if a relation empties, there is no
//! solution. Top-down, a tuple is picked at the root and extended child by
//! child — each pick is guaranteed to succeed by the bottom-up pass.

use htd_core::TreeDecomposition;

use crate::model::Value;
use crate::relation::Relation;

/// Solves a join tree of relations. `tree` provides the shape; `rels[p]`
/// is node `p`'s relation. Returns an assignment for every variable
/// appearing in some relation (`u32::MAX` for variables in none), or
/// `None` if unsatisfiable.
pub fn acyclic_solve(
    tree: &TreeDecomposition,
    rels: &[Relation],
    num_vars: u32,
) -> Option<Vec<Value>> {
    assert_eq!(tree.num_nodes(), rels.len());
    let mut rels: Vec<Relation> = rels.to_vec();
    let order = tree.topological_order();

    // bottom-up: children before parents
    {
        let _sp = htd_trace::span!("yannakakis.semijoin");
        for &p in order.iter().rev() {
            if let Some(q) = tree.parent(p) {
                rels[q] = rels[q].semijoin(&rels[p]);
                if rels[q].is_empty() {
                    return None;
                }
            }
            if rels[p].is_empty() {
                return None;
            }
        }
    }

    // top-down: pick consistent tuples
    let mut assignment = vec![u32::MAX; num_vars as usize];
    for &p in &order {
        let consistent = rels[p].select_consistent(&assignment);
        let t = consistent.tuples.first()?; // bottom-up pass guarantees Some
        for (&v, &val) in rels[p].vars.iter().zip(t) {
            assignment[v as usize] = val;
        }
    }
    Some(assignment)
}

/// Counts all complete consistent assignments of a join tree by a full
/// bottom-up join (exponential in the worst case — for tests and small
/// instances).
pub fn count_solutions(tree: &TreeDecomposition, rels: &[Relation]) -> usize {
    let order = tree.topological_order();
    let mut acc: Vec<Relation> = rels.to_vec();
    for &p in order.iter().rev() {
        if let Some(q) = tree.parent(p) {
            let joined = acc[q].join(&acc[p]);
            acc[q] = joined;
        }
    }
    acc[tree.root()].len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use htd_hypergraph::VertexSet;

    fn vs(cap: u32, items: &[u32]) -> VertexSet {
        VertexSet::from_iter_with_capacity(cap, items.iter().copied())
    }

    fn chain_tree(n: usize, cap: u32) -> TreeDecomposition {
        let bags = (0..n).map(|_| vs(cap, &[])).collect();
        let parent = (0..n)
            .map(|i| if i == 0 { None } else { Some(i - 1) })
            .collect();
        TreeDecomposition::new(bags, parent).unwrap()
    }

    fn r(vars: &[u32], tuples: &[&[u32]]) -> Relation {
        Relation::new(vars.to_vec(), tuples.iter().map(|t| t.to_vec()).collect())
    }

    #[test]
    fn solves_a_satisfiable_chain() {
        // x0 != x1, x1 != x2 over {0,1}
        let tree = chain_tree(2, 3);
        let rels = vec![
            r(&[0, 1], &[&[0, 1], &[1, 0]]),
            r(&[1, 2], &[&[0, 1], &[1, 0]]),
        ];
        let a = acyclic_solve(&tree, &rels, 3).expect("satisfiable");
        assert_ne!(a[0], a[1]);
        assert_ne!(a[1], a[2]);
    }

    #[test]
    fn detects_unsatisfiability() {
        // x0 != x1 and x0 == x1
        let tree = chain_tree(2, 2);
        let rels = vec![
            r(&[0, 1], &[&[0, 1], &[1, 0]]),
            r(&[0, 1], &[&[0, 0], &[1, 1]]),
        ];
        assert!(acyclic_solve(&tree, &rels, 2).is_none());
    }

    #[test]
    fn empty_relation_is_unsatisfiable() {
        let tree = chain_tree(1, 1);
        let rels = vec![r(&[0], &[])];
        assert!(acyclic_solve(&tree, &rels, 1).is_none());
    }

    #[test]
    fn star_tree_with_shared_root_variable() {
        // root over x0; three leaves force x0 through different paths
        let bags = vec![vs(4, &[]); 4];
        let parent = vec![None, Some(0), Some(0), Some(0)];
        let tree = TreeDecomposition::new(bags, parent).unwrap();
        let rels = vec![
            r(&[0], &[&[0], &[1], &[2]]),
            r(&[0, 1], &[&[1, 0]]),
            r(&[0, 2], &[&[1, 5]]),
            r(&[0, 3], &[&[1, 7], &[2, 8]]),
        ];
        let a = acyclic_solve(&tree, &rels, 4).unwrap();
        assert_eq!(a, vec![1, 0, 5, 7]);
    }

    #[test]
    fn count_solutions_on_chain() {
        // x0 != x1, x1 != x2 over {0,1}: 2 solutions
        let tree = chain_tree(2, 3);
        let rels = vec![
            r(&[0, 1], &[&[0, 1], &[1, 0]]),
            r(&[1, 2], &[&[0, 1], &[1, 0]]),
        ];
        assert_eq!(count_solutions(&tree, &rels), 2);
    }

    #[test]
    fn variables_in_no_relation_stay_unassigned() {
        let tree = chain_tree(1, 5);
        let rels = vec![r(&[0], &[&[1]])];
        let a = acyclic_solve(&tree, &rels, 5).unwrap();
        assert_eq!(a[0], 1);
        assert_eq!(a[4], u32::MAX);
    }
}
