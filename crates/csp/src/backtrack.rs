//! Chronological backtracking — the baseline the decompositions beat.

use crate::model::{Csp, Value};

/// Result of a backtracking run, with the node count the comparison
/// benches report.
#[derive(Clone, Debug)]
pub struct BacktrackResult {
    /// A solution, if one exists.
    pub solution: Option<Vec<Value>>,
    /// Number of assignment nodes visited.
    pub nodes: u64,
}

/// Solves `csp` by depth-first assignment in variable order, checking every
/// constraint whose scope just became fully assigned (backward checking).
pub fn backtrack_solve(csp: &Csp) -> BacktrackResult {
    let n = csp.num_vars() as usize;
    // constraints indexed by their latest variable (in assignment order)
    let mut by_last: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (ci, c) in csp.constraints.iter().enumerate() {
        if let Some(&last) = c.scope.iter().max() {
            by_last[last as usize].push(ci);
        }
    }
    let mut assignment: Vec<Value> = vec![u32::MAX; n];
    let mut nodes = 0u64;
    let found = assign(csp, &by_last, &mut assignment, 0, &mut nodes);
    BacktrackResult {
        solution: found.then_some(assignment),
        nodes,
    }
}

fn assign(
    csp: &Csp,
    by_last: &[Vec<usize>],
    assignment: &mut Vec<Value>,
    var: usize,
    nodes: &mut u64,
) -> bool {
    if var == assignment.len() {
        return true;
    }
    for val in 0..csp.domain_sizes[var] {
        *nodes += 1;
        assignment[var] = val;
        let ok = by_last[var]
            .iter()
            .all(|&ci| csp.constraints[ci].satisfied_by(assignment));
        if ok && assign(csp, by_last, assignment, var + 1, nodes) {
            return true;
        }
    }
    assignment[var] = u32::MAX;
    false
}

/// Backtracking with forward checking: after each assignment, prune the
/// candidate values of every future variable that has become inconsistent
/// with some constraint whose other variables are all assigned. Stronger
/// than plain backtracking; still exponential — the stronger baseline for
/// the decomposition comparison.
pub fn forward_checking_solve(csp: &Csp) -> BacktrackResult {
    let n = csp.num_vars() as usize;
    // constraints watching each variable
    let mut watching: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (ci, c) in csp.constraints.iter().enumerate() {
        for &v in &c.scope {
            watching[v as usize].push(ci);
        }
    }
    let mut domains: Vec<Vec<bool>> = csp
        .domain_sizes
        .iter()
        .map(|&d| vec![true; d as usize])
        .collect();
    let mut assignment: Vec<Value> = vec![u32::MAX; n];
    let mut nodes = 0u64;
    let found = fc_assign(csp, &watching, &mut domains, &mut assignment, 0, &mut nodes);
    BacktrackResult {
        solution: found.then_some(assignment),
        nodes,
    }
}

fn fc_assign(
    csp: &Csp,
    watching: &[Vec<usize>],
    domains: &mut Vec<Vec<bool>>,
    assignment: &mut Vec<Value>,
    var: usize,
    nodes: &mut u64,
) -> bool {
    if var == assignment.len() {
        return true;
    }
    for val in 0..csp.domain_sizes[var] {
        if !domains[var][val as usize] {
            continue;
        }
        *nodes += 1;
        assignment[var] = val;
        // forward check: prune future variables through constraints with
        // exactly one unassigned variable left
        let mut pruned: Vec<(usize, u32)> = Vec::new();
        let mut wiped = false;
        'check: for &ci in &watching[var] {
            let c = &csp.constraints[ci];
            let unassigned: Vec<u32> = c
                .scope
                .iter()
                .copied()
                .filter(|&v| assignment[v as usize] == u32::MAX)
                .collect();
            match unassigned.as_slice() {
                [] if !c.satisfied_by(assignment) => {
                    wiped = true;
                    break 'check;
                }
                [future] => {
                    let f = *future as usize;
                    for fv in 0..csp.domain_sizes[f] {
                        if !domains[f][fv as usize] {
                            continue;
                        }
                        assignment[f] = fv;
                        let ok = c.satisfied_by(assignment);
                        assignment[f] = u32::MAX;
                        if !ok {
                            domains[f][fv as usize] = false;
                            pruned.push((f, fv));
                        }
                    }
                    if domains[f].iter().all(|&b| !b) {
                        wiped = true;
                        break 'check;
                    }
                }
                _ => {}
            }
        }
        if !wiped && fc_assign(csp, watching, domains, assignment, var + 1, nodes) {
            return true;
        }
        for (f, fv) in pruned {
            domains[f][fv as usize] = true;
        }
    }
    assignment[var] = u32::MAX;
    false
}

/// Counts all solutions by exhaustive backtracking (tests only — this is
/// the `O(d^n)` bound the decompositions avoid).
pub fn count_all_solutions(csp: &Csp) -> u64 {
    let n = csp.num_vars() as usize;
    let mut by_last: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (ci, c) in csp.constraints.iter().enumerate() {
        if let Some(&last) = c.scope.iter().max() {
            by_last[last as usize].push(ci);
        }
    }
    let mut assignment: Vec<Value> = vec![u32::MAX; n];
    let mut count = 0u64;
    count_rec(csp, &by_last, &mut assignment, 0, &mut count);
    count
}

fn count_rec(
    csp: &Csp,
    by_last: &[Vec<usize>],
    assignment: &mut Vec<Value>,
    var: usize,
    count: &mut u64,
) {
    if var == assignment.len() {
        *count += 1;
        return;
    }
    for val in 0..csp.domain_sizes[var] {
        assignment[var] = val;
        if by_last[var]
            .iter()
            .all(|&ci| csp.constraints[ci].satisfied_by(assignment))
        {
            count_rec(csp, by_last, assignment, var + 1, count);
        }
    }
    assignment[var] = u32::MAX;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn solves_australia() {
        let csp = builders::australia_map_coloring();
        let r = backtrack_solve(&csp);
        let a = r.solution.expect("3-colorable");
        assert!(csp.is_solution(&a));
        assert!(r.nodes > 0);
    }

    #[test]
    fn k4_not_3_colorable() {
        let g = htd_hypergraph::gen::complete_graph(4);
        let csp = builders::graph_coloring(&g, 3);
        assert!(backtrack_solve(&csp).solution.is_none());
        // but 4-colorable, with 4! solutions
        let csp4 = builders::graph_coloring(&g, 4);
        assert_eq!(count_all_solutions(&csp4), 24);
    }

    #[test]
    fn triangle_3_coloring_count() {
        let g = htd_hypergraph::gen::cycle_graph(3);
        let csp = builders::graph_coloring(&g, 3);
        assert_eq!(count_all_solutions(&csp), 6);
    }

    #[test]
    fn n_queens_counts() {
        // classic: 4-queens has 2 solutions, 5-queens has 10
        assert_eq!(count_all_solutions(&builders::n_queens(4)), 2);
        assert_eq!(count_all_solutions(&builders::n_queens(5)), 10);
        assert!(backtrack_solve(&builders::n_queens(6)).solution.is_some());
    }

    #[test]
    fn forward_checking_agrees_with_backtracking() {
        for seed in 0..12u64 {
            let csp = builders::random_binary_csp(8, 3, 0.5, 0.4, seed);
            let bt = backtrack_solve(&csp);
            let fc = forward_checking_solve(&csp);
            assert_eq!(
                bt.solution.is_some(),
                fc.solution.is_some(),
                "seed {seed}: satisfiability mismatch"
            );
            if let Some(a) = &fc.solution {
                assert!(csp.is_solution(a), "seed {seed}");
            }
            assert!(
                fc.nodes <= bt.nodes,
                "seed {seed}: forward checking visited more nodes ({} > {})",
                fc.nodes,
                bt.nodes
            );
        }
    }

    #[test]
    fn forward_checking_detects_unsat_early() {
        let csp = builders::graph_coloring(&htd_hypergraph::gen::complete_graph(5), 4);
        let bt = backtrack_solve(&csp);
        let fc = forward_checking_solve(&csp);
        assert!(bt.solution.is_none() && fc.solution.is_none());
        assert!(fc.nodes < bt.nodes);
    }

    #[test]
    fn empty_csp_has_one_solution() {
        let csp = crate::model::Csp::uniform(0, 1);
        assert_eq!(count_all_solutions(&csp), 1);
        assert_eq!(backtrack_solve(&csp).solution, Some(vec![]));
    }
}
