//! CSP model: variables, domains, constraints (thesis Definition 5).

use htd_hypergraph::Hypergraph;

/// Index of a variable.
pub type VarId = u32;

/// A domain value, represented as an index into the variable's domain.
pub type Value = u32;

/// A constraint `⟨S, R⟩`: a scope of variables and the allowed tuples.
#[derive(Clone, Debug)]
pub struct Constraint {
    /// Human-readable name.
    pub name: String,
    /// The scope `S` (distinct variables).
    pub scope: Vec<VarId>,
    /// The allowed combinations `R`; each tuple has `scope.len()` values.
    pub tuples: Vec<Vec<Value>>,
}

impl Constraint {
    /// Creates a constraint, checking tuple arity.
    pub fn new(name: impl Into<String>, scope: Vec<VarId>, tuples: Vec<Vec<Value>>) -> Self {
        let c = Constraint {
            name: name.into(),
            scope,
            tuples,
        };
        debug_assert!(c.tuples.iter().all(|t| t.len() == c.scope.len()));
        c
    }

    /// `true` iff the (total) assignment satisfies this constraint.
    pub fn satisfied_by(&self, assignment: &[Value]) -> bool {
        self.tuples.iter().any(|t| {
            self.scope
                .iter()
                .zip(t)
                .all(|(&v, &val)| assignment[v as usize] == val)
        })
    }
}

/// A constraint satisfaction problem `⟨X, D, C⟩`.
#[derive(Clone, Debug)]
pub struct Csp {
    /// Variable names.
    pub variables: Vec<String>,
    /// Domain size per variable (values are `0..domain_size`).
    pub domain_sizes: Vec<u32>,
    /// The constraints.
    pub constraints: Vec<Constraint>,
}

impl Csp {
    /// Creates a CSP with uniform domain size.
    pub fn uniform(num_vars: u32, domain: u32) -> Self {
        Csp {
            variables: (0..num_vars).map(|v| format!("x{v}")).collect(),
            domain_sizes: vec![domain; num_vars as usize],
            constraints: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> u32 {
        self.variables.len() as u32
    }

    /// Adds a constraint and returns its index.
    pub fn add_constraint(&mut self, c: Constraint) -> usize {
        debug_assert!(c.scope.iter().all(|&v| v < self.num_vars()));
        self.constraints.push(c);
        self.constraints.len() - 1
    }

    /// The constraint hypergraph: one vertex per variable, one hyperedge
    /// per constraint scope (Definition 7).
    pub fn hypergraph(&self) -> Hypergraph {
        let edges = self.constraints.iter().map(|c| c.scope.clone()).collect();
        let mut h = Hypergraph::new(self.num_vars(), edges);
        h.set_vertex_names(self.variables.clone());
        h.set_edge_names(self.constraints.iter().map(|c| c.name.clone()).collect());
        h
    }

    /// Returns a copy with a full-domain unary constraint added for every
    /// variable appearing in no constraint. Solution-equivalent, but the
    /// constraint hypergraph then covers every vertex — a precondition for
    /// generalized hypertree decompositions (every `χ` must be coverable
    /// by `λ` edges).
    pub fn pad_unconstrained(&self) -> Csp {
        let mut out = self.clone();
        let mut covered = vec![false; self.variables.len()];
        for c in &self.constraints {
            for &v in &c.scope {
                covered[v as usize] = true;
            }
        }
        for (v, &cov) in covered.iter().enumerate() {
            if !cov {
                let tuples = (0..self.domain_sizes[v]).map(|val| vec![val]).collect();
                out.add_constraint(Constraint::new(
                    format!("dom_{}", self.variables[v]),
                    vec![v as u32],
                    tuples,
                ));
            }
        }
        out
    }

    /// Checks a complete assignment against every constraint.
    pub fn is_solution(&self, assignment: &[Value]) -> bool {
        assignment.len() == self.variables.len()
            && assignment
                .iter()
                .zip(&self.domain_sizes)
                .all(|(&v, &d)| v < d)
            && self.constraints.iter().all(|c| c.satisfied_by(assignment))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraint_satisfaction_check() {
        let c = Constraint::new("neq", vec![0, 1], vec![vec![0, 1], vec![1, 0]]);
        assert!(c.satisfied_by(&[0, 1, 9]));
        assert!(c.satisfied_by(&[1, 0, 9]));
        assert!(!c.satisfied_by(&[0, 0, 9]));
    }

    #[test]
    fn csp_solution_check() {
        let mut csp = Csp::uniform(3, 2);
        csp.add_constraint(Constraint::new(
            "c0",
            vec![0, 1],
            vec![vec![0, 1], vec![1, 0]],
        ));
        csp.add_constraint(Constraint::new(
            "c1",
            vec![1, 2],
            vec![vec![0, 1], vec![1, 0]],
        ));
        assert!(csp.is_solution(&[0, 1, 0]));
        assert!(!csp.is_solution(&[0, 0, 1]));
        assert!(!csp.is_solution(&[0, 1])); // incomplete
        assert!(!csp.is_solution(&[0, 1, 2])); // out of domain
    }

    #[test]
    fn hypergraph_reflects_scopes() {
        let mut csp = Csp::uniform(4, 2);
        csp.add_constraint(Constraint::new("t", vec![0, 1, 2], vec![]));
        csp.add_constraint(Constraint::new("b", vec![2, 3], vec![]));
        let h = csp.hypergraph();
        assert_eq!(h.num_vertices(), 4);
        assert_eq!(h.num_edges(), 2);
        assert_eq!(h.edge(0).to_vec(), vec![0, 1, 2]);
        assert_eq!(h.edge_name(1), "b");
    }
}
