//! Constraint satisfaction substrate: the consumer of the decompositions.
//!
//! Tree decompositions and generalized hypertree decompositions exist to
//! solve CSPs; this crate closes the loop (thesis §2.2 / §2.4):
//!
//! * [`model`] — variables, finite domains, relational constraints, and the
//!   constraint hypergraph.
//! * [`relation`] — the relational algebra the solvers run on: hash-based
//!   natural join, semijoin and projection.
//! * [`acyclic`] — Algorithm *Acyclic Solving* (Fig. 2.4): bottom-up
//!   semijoins, top-down assignment extraction.
//! * [`solve_td`] — Join Tree Clustering: solving an arbitrary CSP from a
//!   tree decomposition of its constraint hypergraph.
//! * [`solve_ghd`] — solving from a complete generalized hypertree
//!   decomposition, where each node's relation is
//!   `π_χ(p) ⋈ {R_e : e ∈ λ(p)}` — the join of `|λ(p)| ≤ width` relations,
//!   which is why small `ghw` means fast solving.
//! * [`backtrack`] — chronological backtracking and forward-checking
//!   baselines.
//! * [`count`] — solution counting by sum–product message passing over a
//!   tree decomposition.
//! * [`enumerate`] — all-solutions enumeration with polynomial delay
//!   (semijoin pass first, then dead-end-free tuple walks).
//! * [`io`] — a plain-text CSP format for the command line.
//! * [`builders`] — classic instances: map coloring (Example 1), SAT as
//!   CSP (Example 2), graph coloring, n-queens, seeded random binary CSPs.

#![warn(missing_docs)]

pub mod acyclic;
pub mod backtrack;
pub mod builders;
pub mod count;
pub mod enumerate;
pub mod io;
pub mod model;
pub mod relation;
pub mod solve_ghd;
pub mod solve_td;

pub use acyclic::acyclic_solve;
pub use backtrack::{backtrack_solve, forward_checking_solve};
pub use count::count_solutions_td;
pub use enumerate::for_each_solution_td;
pub use io::{parse_csp, write_csp};
pub use model::{Constraint, Csp, Value, VarId};
pub use relation::Relation;
pub use solve_ghd::solve_with_ghd;
pub use solve_td::{estimate_node_tuples, node_relations, solve_with_td};
