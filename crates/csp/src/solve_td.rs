//! Join Tree Clustering: solving a CSP from a tree decomposition
//! (thesis §2.4, after Dechter's algorithm).
//!
//! Every constraint is placed in one decomposition node containing its
//! scope; each node's subproblem — all assignments of its bag variables
//! consistent with the placed constraints — is solved by joining the
//! placed relations and crossing in unconstrained bag variables. The
//! resulting join tree goes to Acyclic Solving. The work per node is
//! `O(d^{width+1})`, which is the whole point of minimizing width.

use htd_core::TreeDecomposition;
use htd_hypergraph::VertexSet;

use crate::acyclic::acyclic_solve;
use crate::model::{Csp, Value};
use crate::relation::Relation;

/// Solves `csp` using a tree decomposition of its constraint hypergraph.
/// Returns a complete assignment or `None` if unsatisfiable.
///
/// Panics if `td` is not a valid decomposition of the CSP's hypergraph
/// (checked in debug builds only).
pub fn solve_with_td(csp: &Csp, td: &TreeDecomposition) -> Option<Vec<Value>> {
    debug_assert!(td.validate(&csp.hypergraph()).is_ok());
    let rels = node_relations(csp, td);
    if rels.iter().any(|r| r.is_empty()) {
        return None;
    }
    let mut a = acyclic_solve(td, &rels, csp.num_vars())?;
    // variables in no bag (isolated, unconstrained): assign 0
    for (v, slot) in a.iter_mut().enumerate() {
        if *slot == u32::MAX {
            *slot = 0;
            debug_assert!(csp.domain_sizes[v] > 0);
        }
    }
    csp.is_solution(&a).then_some(a)
}

/// Builds the per-node relations of Join Tree Clustering (steps 1–2).
pub fn node_relations(csp: &Csp, td: &TreeDecomposition) -> Vec<Relation> {
    let _sp = htd_trace::span!("yannakakis.build");
    let n = csp.num_vars();
    // place each constraint at the first node containing its scope
    let mut placed: Vec<Vec<usize>> = vec![Vec::new(); td.num_nodes()];
    for (ci, c) in csp.constraints.iter().enumerate() {
        let scope = VertexSet::from_iter_with_capacity(n, c.scope.iter().copied());
        let host = (0..td.num_nodes())
            .find(|&p| scope.is_subset(td.bag(p)))
            .expect("tree decomposition covers every constraint scope");
        placed[host].push(ci);
    }
    (0..td.num_nodes())
        .map(|p| {
            let mut rel = Relation::unit();
            for &ci in &placed[p] {
                let c = &csp.constraints[ci];
                rel = rel.join(&Relation::new(c.scope.clone(), c.tuples.clone()));
            }
            // cross in bag variables no placed constraint mentions
            let missing: Vec<u32> = td.bag(p).iter().filter(|&v| rel.col(v).is_none()).collect();
            if !missing.is_empty() {
                rel = rel.join(&Relation::full(&missing, &csp.domain_sizes));
            }
            // restrict to the bag (constraint scopes ⊆ bag by placement)
            let bag_vars: Vec<u32> = td.bag(p).to_vec();
            rel.project(&bag_vars)
        })
        .collect()
}

/// Worst-case number of tuples Join Tree Clustering may materialize for
/// this CSP and decomposition, mirroring the constraint placement of
/// [`node_relations`]: per node, the product of the placed constraints'
/// tuple counts times the domain sizes of bag variables no placed
/// constraint mentions, summed over nodes. Joins only shrink relations,
/// so this is an upper bound — callers use it to *refuse* an evaluation
/// whose intermediate relations could blow a memory budget before
/// materializing anything.
pub fn estimate_node_tuples(csp: &Csp, td: &TreeDecomposition) -> u128 {
    let n = csp.num_vars();
    let mut placed: Vec<Vec<usize>> = vec![Vec::new(); td.num_nodes()];
    for (ci, c) in csp.constraints.iter().enumerate() {
        let scope = VertexSet::from_iter_with_capacity(n, c.scope.iter().copied());
        if let Some(host) = (0..td.num_nodes()).find(|&p| scope.is_subset(td.bag(p))) {
            placed[host].push(ci);
        }
    }
    (0..td.num_nodes())
        .map(|p| {
            let mut est: u128 = 1;
            let mut covered = VertexSet::new(n);
            for &ci in &placed[p] {
                let c = &csp.constraints[ci];
                est = est.saturating_mul(c.tuples.len() as u128);
                for &v in &c.scope {
                    covered.insert(v);
                }
            }
            for v in td.bag(p).iter() {
                if !covered.contains(v) {
                    est = est.saturating_mul(csp.domain_sizes[v as usize].max(1) as u128);
                }
            }
            est
        })
        .fold(0u128, |a, b| a.saturating_add(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use htd_core::bucket::td_of_hypergraph;
    use htd_core::ordering::EliminationOrdering;

    #[test]
    fn solves_australia_coloring() {
        let csp = builders::australia_map_coloring();
        let h = csp.hypergraph();
        let order = EliminationOrdering::identity(h.num_vertices());
        let td = td_of_hypergraph(&h, &order);
        let a = solve_with_td(&csp, &td).expect("3-colorable");
        assert!(csp.is_solution(&a));
    }

    #[test]
    fn detects_unsatisfiable_coloring() {
        // K4 is not 3-colorable
        let g = htd_hypergraph::gen::complete_graph(4);
        let csp = builders::graph_coloring(&g, 3);
        let h = csp.hypergraph();
        let td = td_of_hypergraph(&h, &EliminationOrdering::identity(4));
        assert!(solve_with_td(&csp, &td).is_none());
    }

    #[test]
    fn agrees_with_backtracking_on_random_csps() {
        for seed in 0..10u64 {
            let csp = builders::random_binary_csp(8, 3, 0.4, 0.4, seed);
            let h = csp.hypergraph();
            let td = td_of_hypergraph(&h, &EliminationOrdering::identity(8));
            let td_ans = solve_with_td(&csp, &td);
            let bt_ans = crate::backtrack::backtrack_solve(&csp);
            assert_eq!(
                td_ans.is_some(),
                bt_ans.solution.is_some(),
                "seed {seed}: solvers disagree on satisfiability"
            );
            if let Some(a) = td_ans {
                assert!(csp.is_solution(&a), "seed {seed}: invalid solution");
            }
        }
    }

    #[test]
    fn estimate_bounds_actual_materialization() {
        for seed in 0..10u64 {
            let csp = builders::random_binary_csp(8, 3, 0.4, 0.4, seed);
            let h = csp.hypergraph();
            let td = td_of_hypergraph(&h, &EliminationOrdering::identity(8));
            let est = estimate_node_tuples(&csp, &td);
            let actual: u128 = node_relations(&csp, &td)
                .iter()
                .map(|r| r.len() as u128)
                .sum();
            assert!(
                actual <= est,
                "seed {seed}: materialized {actual} tuples but estimated only {est}"
            );
        }
    }

    #[test]
    fn unconstrained_variables_get_values() {
        let mut csp = Csp::uniform(3, 2);
        csp.add_constraint(crate::model::Constraint::new(
            "c",
            vec![0, 1],
            vec![vec![0, 1]],
        ));
        // variable 2 is in no constraint: the hypergraph doesn't cover it,
        // so decompose the padded hypergraph by hand
        let h = csp.hypergraph();
        assert!(!h.covers_all_vertices());
        let td = htd_core::TreeDecomposition::trivial(3);
        let a = solve_with_td(&csp, &td).unwrap();
        assert_eq!(&a[..2], &[0, 1]);
        assert!(a[2] < 2);
    }
}
