//! `htd-service`: a long-running decomposition server.
//!
//! Answering "what is the (generalized hyper)tree width of this query's
//! hypergraph?" is the planning-time primitive of Section 5 of the paper:
//! a database optimizer asks it for *many* queries, *repeatedly*, with a
//! latency budget — not once from a CLI. This crate packages the
//! workspace's anytime portfolio solver as such a service:
//!
//! * **Canonical-form caching** — instances are keyed by the
//!   relabeling-invariant canonical form of their (normalized) hypergraph
//!   ([`htd_hypergraph::canonical`]), so the same query shape is solved
//!   once no matter how its variables happen to be numbered, and `tw`
//!   requests share entries across input formats via primal-graph
//!   normalization. Admission is objective-aware: exact answers serve
//!   every later request, anytime bounds only serve requests whose own
//!   budget could not have done better ([`cache`]).
//! * **Deadlines** — each request carries a wall-clock deadline mapped
//!   onto the solver's budget, enforced by a watchdog that cancels the
//!   shared incumbent the moment it expires; requests that age out while
//!   queued are evicted without running ([`server`]).
//! * **Backpressure** — a bounded work queue; a full queue rejects
//!   immediately with a retry hint instead of buffering unboundedly.
//! * **Observability** — `GET /healthz`, Prometheus-text `GET /metrics`
//!   (request/cache counters, queue depth, latency p50/p95, widths
//!   served) and structured per-request log lines ([`metrics`]).
//!
//! Beyond decomposition, the server *answers* conjunctive queries: the
//! `answer` command runs the full `htd-query` pipeline (decompose, then
//! Yannakakis semijoins) on a worker, with a per-server
//! [`htd_query::ShapeCache`] so repeated query shapes — same canonical
//! hypergraph, different relation data — skip decomposition entirely.
//!
//! The wire format is one JSON object per line over TCP ([`protocol`]),
//! reusing [`htd_search::Outcome`]'s documented schema for results; the
//! same socket also answers plain HTTP probes. `htd serve` / `htd query`
//! front this crate from the CLI, and the `service_load` and
//! `answer_load` benches replay generated corpora against it.
//!
//! Three subsystems extend the core server:
//!
//! * **Event-loop front end** ([`event_loop`]) — a readiness-based
//!   non-blocking acceptor/reader/writer loop (raw `poll(2)`, no runtime
//!   dependency) with per-connection state machines, buffered
//!   partial-frame handling, and a *pipelined batch mode*: multiple
//!   newline-JSON requests in flight per connection, responses matched
//!   by request id. Enabled with `htd serve --event-loop`.
//! * **Persistent verified certificate store** ([`store`]) — an
//!   append-only, crash-tolerant log of solved outcomes keyed by
//!   canonical fingerprint; every entry is re-proved by the `htd-check`
//!   oracle on load before it may warm the cache. Enabled with
//!   `htd serve --store DIR`.
//! * **Fault-tolerant cluster layer** ([`cluster`], [`ring`]) — N peers
//!   shard the fingerprint keyspace over a consistent-hash ring with
//!   R-way replication of verified certificates, a probing failure
//!   detector (`Alive → Suspect → Down`, drain as leave-intent), owner
//!   forwarding with failover, and hinted handoff on recovery; pushed
//!   certificates are re-verified by the oracle on receipt. Enabled
//!   with `htd serve --node-id ID --peers ID=ADDR,..`.

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod cluster;
pub mod event_loop;
pub mod metrics;
pub mod protocol;
pub mod ring;
pub mod server;
pub mod store;

pub use cache::ResultCache;
pub use client::Client;
pub use cluster::{Cluster, ClusterConfig, PeerSpec, PeerState};
pub use htd_query::{Answer, AnswerMode};
pub use htd_resilience::FaultPlan;
pub use metrics::Metrics;
pub use protocol::{
    parse_problem, AnswerRequest, CertPush, Command, InstanceFormat, Request, Response,
    SolveRequest, Status,
};
pub use ring::Ring;
pub use server::{run_until_shutdown, ServeOptions, Server};
pub use store::{CertStore, StoreRecord, StoreStats};
