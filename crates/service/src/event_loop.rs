//! Readiness-based non-blocking front end: one loop, many connections,
//! pipelined batches.
//!
//! The thread-per-connection path caps throughput at "threads the OS
//! will give us"; this module replaces it (behind `--event-loop`) with a
//! single acceptor/reader/writer loop over `poll(2)` — raw FFI on the
//! same pattern as the server's `signal()` handler, **no runtime
//! dependency** — multiplexing every client socket plus a self-pipe
//! waker:
//!
//! * **Per-connection state machines** hold a read buffer (partial
//!   frames survive across readiness events; a slow-loris byte-at-a-time
//!   writer costs one buffer, not one thread), a write buffer (responses
//!   flush as `POLLOUT` allows), and the in-flight request count.
//! * **Pipelined batch mode**: a client may write many newline-JSON
//!   requests without waiting; each is admitted independently into the
//!   same worker-pool/queue/watchdog/backpressure machinery as the
//!   blocking path ([`crate::server::admit_request`] is shared code),
//!   and responses are written back *as they complete* — possibly out
//!   of request order, matched by the request `id` the client chose.
//! * **Completions** flow from workers through a [`Completions`] queue
//!   plus a socketpair waker: a worker pushes the finished response and
//!   writes one byte; the loop wakes, matches the `(connection, token)`
//!   tag against its pending table, and queues the bytes. A pending
//!   entry that outlives `deadline + REPLY_GRACE` is answered with a
//!   synthesized `timeout` (and the late completion, should it still
//!   arrive, is dropped — never a duplicate response).
//! * **HTTP probes** (`GET /healthz`, `GET /metrics`, …) work on the
//!   same port exactly as in the blocking path.
//!
//! Graceful drain is unchanged: a draining server keeps the loop (and
//! its probes) alive, refuses new solves at admission, and the loop
//! delivers every in-flight response before exiting on shutdown.

#[cfg(unix)]
pub(crate) use imp::run;
#[cfg(unix)]
pub(crate) use imp::Completions;

#[cfg(not(unix))]
pub(crate) use stub::{run, Completions};

#[cfg(not(unix))]
mod stub {
    use crate::protocol::Response;
    use crate::server::Inner;
    use std::net::TcpListener;
    use std::sync::Arc;

    /// Completion queue stub: the event loop needs `poll(2)`, so on
    /// non-unix targets nothing routes through here.
    pub(crate) struct Completions;

    impl Completions {
        pub(crate) fn push(&self, _conn: u64, _token: u64, _response: Response) {}
    }

    pub(crate) fn run(_inner: &Arc<Inner>, _listener: TcpListener) -> std::io::Result<()> {
        Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "--event-loop requires poll(2); use the threaded front end on this platform",
        ))
    }
}

#[cfg(unix)]
mod imp {
    use std::collections::HashMap;
    use std::io::{ErrorKind, Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use htd_core::{HtdError, Json};
    use parking_lot::Mutex;

    use crate::protocol::{Request, Response, Status};
    use crate::server::{
        admit_request, http_response_bytes, response_line, Admission, Inner, ReplySink, MAX_FRAME,
        REPLY_GRACE,
    };

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const POLLNVAL: i16 = 0x020;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    #[cfg(target_os = "linux")]
    type Nfds = u64;
    #[cfg(not(target_os = "linux"))]
    type Nfds = u32;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: Nfds, timeout: i32) -> i32;
    }

    /// Bound on buffered HTTP probe headers; a probe that sends more is
    /// not a probe.
    const MAX_HTTP_HEADER: usize = 64 << 10;
    /// Idle poll timeout when nothing is pending.
    const IDLE_POLL_MS: i32 = 50;

    /// Worker → loop completion queue: finished responses tagged with
    /// the `(connection, token)` they answer, plus a socketpair waker so
    /// a completion interrupts the loop's `poll` immediately.
    pub(crate) struct Completions {
        ready: Mutex<Vec<(u64, u64, Response)>>,
        /// Write end of the self-pipe; the loop polls the read end.
        waker: UnixStream,
    }

    impl Completions {
        pub(crate) fn push(&self, conn: u64, token: u64, response: Response) {
            self.ready.lock().push((conn, token, response));
            // one byte is enough to make the read end readable; a pipe
            // already full of unconsumed wakeups needs no more
            let _ = (&self.waker).write(&[1u8]);
        }

        fn drain(&self) -> Vec<(u64, u64, Response)> {
            std::mem::take(&mut *self.ready.lock())
        }
    }

    /// One connection's state machine.
    struct Conn {
        id: u64,
        stream: TcpStream,
        /// Bytes received but not yet framed; partial frames wait here.
        read_buf: Vec<u8>,
        /// Bytes queued for the peer; `written` is the flushed prefix.
        write_buf: Vec<u8>,
        written: usize,
        /// Requests admitted to workers and not yet answered.
        inflight: usize,
        /// Monotonic per-connection token tagging pending requests.
        next_token: u64,
        /// `Some(request line)` once a `GET`/`HEAD` arrived: the state
        /// machine is now consuming headers until the blank line.
        http: Option<String>,
        /// Close once the write buffer drains (protocol error, HTTP).
        closing: bool,
        /// Peer half-closed its write side; serve what is pending, then
        /// close. (Pipelining clients may shutdown-write after a batch.)
        eof: bool,
    }

    impl Conn {
        fn wants_write(&self) -> bool {
            self.written < self.write_buf.len()
        }

        fn queue(&mut self, bytes: &[u8]) {
            // compact the flushed prefix before growing
            if self.written > 0 {
                self.write_buf.drain(..self.written);
                self.written = 0;
            }
            self.write_buf.extend_from_slice(bytes);
        }

        /// Flushes as much of the write buffer as the socket accepts.
        fn flush(&mut self) -> std::io::Result<()> {
            while self.wants_write() {
                match (&self.stream).write(&self.write_buf[self.written..]) {
                    Ok(0) => return Err(ErrorKind::WriteZero.into()),
                    Ok(n) => self.written += n,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
            if !self.wants_write() {
                self.write_buf.clear();
                self.written = 0;
            }
            Ok(())
        }
    }

    /// A queued request the loop is waiting on a worker for.
    struct Pending {
        expiry: Instant,
        id: Option<String>,
        fingerprint: Option<String>,
        received: Instant,
    }

    /// Runs the event loop until the server's shutdown flag flips. The
    /// loop owns the listener, every client socket, and the pending
    /// table; workers only ever touch the [`Completions`] queue.
    pub(crate) fn run(inner: &Arc<Inner>, listener: TcpListener) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        let completions = Arc::new(Completions {
            ready: Mutex::new(Vec::new()),
            waker: wake_tx,
        });
        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut pending: HashMap<(u64, u64), Pending> = HashMap::new();
        let reg = htd_trace::registry();

        loop {
            if inner.shutdown.load(Ordering::SeqCst) {
                // a kill (the in-process analog of `kill -9`) exits without
                // the final delivery pass: connections drop mid-frame and
                // clients observe a reset, exactly like a crashed process
                if !inner.killed.load(Ordering::SeqCst) {
                    drain_before_exit(inner, &completions, &mut conns, &mut pending);
                }
                return Ok(());
            }

            let mut fds = Vec::with_capacity(2 + conns.len());
            fds.push(PollFd {
                fd: listener.as_raw_fd(),
                events: POLLIN,
                revents: 0,
            });
            fds.push(PollFd {
                fd: wake_rx.as_raw_fd(),
                events: POLLIN,
                revents: 0,
            });
            let mut order = Vec::with_capacity(conns.len());
            for (id, c) in &conns {
                fds.push(PollFd {
                    fd: c.stream.as_raw_fd(),
                    events: if c.wants_write() {
                        POLLIN | POLLOUT
                    } else {
                        POLLIN
                    },
                    revents: 0,
                });
                order.push(*id);
            }

            // wake in time for the nearest pending expiry
            let now = Instant::now();
            let mut timeout_ms = IDLE_POLL_MS;
            for p in pending.values() {
                let left = p.expiry.saturating_duration_since(now).as_millis() as i32;
                timeout_ms = timeout_ms.min(left.saturating_add(1));
            }

            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as Nfds, timeout_ms.max(0)) };
            if n < 0 {
                let err = std::io::Error::last_os_error();
                if err.kind() == ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            reg.counter("htd_eventloop_wakeups_total").inc();

            // self-pipe: swallow the wakeup bytes (completions are
            // delivered below regardless, so a missed byte is harmless)
            if fds[1].revents & POLLIN != 0 {
                let mut sink = [0u8; 256];
                while matches!((&wake_rx).read(&mut sink), Ok(n) if n > 0) {}
            }
            deliver_completions(&completions, &mut conns, &mut pending);

            // accept everything ready; each new socket joins the poll set
            if fds[0].revents & POLLIN != 0 {
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            let _ = stream.set_nodelay(true);
                            let id = inner.conn_seq.fetch_add(1, Ordering::Relaxed);
                            conns.insert(
                                id,
                                Conn {
                                    id,
                                    stream,
                                    read_buf: Vec::new(),
                                    write_buf: Vec::new(),
                                    written: 0,
                                    inflight: 0,
                                    next_token: 0,
                                    http: None,
                                    closing: false,
                                    eof: false,
                                },
                            );
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(_) => break,
                    }
                }
            }

            // per-connection readiness
            let mut dead: Vec<u64> = Vec::new();
            for (i, id) in order.iter().enumerate() {
                let re = fds[2 + i].revents;
                if re == 0 {
                    continue;
                }
                let Some(c) = conns.get_mut(id) else { continue };
                if re & (POLLERR | POLLNVAL) != 0 {
                    dead.push(*id);
                    continue;
                }
                if re & POLLOUT != 0 && c.flush().is_err() {
                    dead.push(*id);
                    continue;
                }
                if re & (POLLIN | POLLHUP) != 0
                    && handle_readable(inner, c, &completions, &mut pending).is_err()
                {
                    dead.push(*id);
                }
            }

            expire_pending(inner, &mut conns, &mut pending, Instant::now());

            // salvage: a complete frame still buffered here means the
            // last read batch ended without its readiness event being
            // redelivered — level-triggered poll should make that
            // impossible, but a silent wedge is the one failure a
            // server cannot have, so enforce the invariant and count
            // every violation (the counter staying 0 is the proof)
            for c in conns.values_mut() {
                if !c.closing && c.read_buf.contains(&b'\n') {
                    reg.counter("htd_eventloop_salvaged_frames_total").inc();
                    process_frames(inner, c, &completions, &mut pending);
                }
            }
            // reap: hard errors, finished closers, drained half-closes
            for (id, c) in &mut conns {
                let drained = !c.wants_write();
                if (c.closing && drained) || (c.eof && drained && c.inflight == 0) {
                    dead.push(*id);
                }
            }
            dead.sort_unstable();
            dead.dedup();
            for id in dead {
                conns.remove(&id);
                // responses still in flight for this connection have no
                // destination; forget them so late completions drop
                pending.retain(|(cid, _), _| *cid != id);
            }
            reg.gauge("htd_eventloop_connections")
                .set(conns.len() as i64);
        }
    }

    /// Reads everything the socket has, then processes complete frames.
    /// `Err` means the connection is beyond saving (I/O error).
    fn handle_readable(
        inner: &Arc<Inner>,
        c: &mut Conn,
        completions: &Arc<Completions>,
        pending: &mut HashMap<(u64, u64), Pending>,
    ) -> Result<(), ()> {
        let mut scratch = [0u8; 64 << 10];
        loop {
            match (&c.stream).read(&mut scratch) {
                Ok(0) => {
                    c.eof = true;
                    break;
                }
                Ok(n) => c.read_buf.extend_from_slice(&scratch[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return Err(()),
            }
        }
        process_frames(inner, c, completions, pending);
        Ok(())
    }

    /// Consumes every complete `\n`-terminated frame in the read buffer,
    /// admitting requests and queueing immediate responses. Enforces
    /// [`MAX_FRAME`] on the unfinished remainder.
    fn process_frames(
        inner: &Arc<Inner>,
        c: &mut Conn,
        completions: &Arc<Completions>,
        pending: &mut HashMap<(u64, u64), Pending>,
    ) {
        while !c.closing {
            let Some(nl) = c.read_buf.iter().position(|&b| b == b'\n') else {
                break;
            };
            let line: Vec<u8> = c.read_buf.drain(..=nl).collect();
            let line = String::from_utf8_lossy(&line).into_owned();

            if let Some(request_line) = c.http.clone() {
                // consuming probe headers; the blank line ends them
                if line.trim().is_empty() {
                    let body = http_response_bytes(inner, &request_line);
                    c.queue(&body);
                    c.closing = true;
                }
                continue;
            }
            if line.starts_with("GET ") || line.starts_with("HEAD ") {
                c.http = Some(line);
                continue;
            }
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let _sp = htd_trace::span!("service.conn");
            match Json::parse(trimmed).and_then(|doc| Request::from_json(&doc)) {
                Err(e) => {
                    inner
                        .metrics
                        .error_responses
                        .fetch_add(1, Ordering::Relaxed);
                    let r = Response::from_error(None, &e);
                    c.queue(&response_line(&r));
                }
                Ok(req) => {
                    let token = c.next_token;
                    c.next_token += 1;
                    let sink = ReplySink::Loop {
                        conn: c.id,
                        token,
                        completions: Arc::clone(completions),
                    };
                    match admit_request(inner, req, sink) {
                        Admission::Ready(r) => c.queue(&response_line(&r)),
                        Admission::Queued {
                            id,
                            fingerprint,
                            deadline,
                            received,
                        } => {
                            if c.inflight > 0 {
                                htd_trace::registry()
                                    .counter("htd_pipelined_requests_total")
                                    .inc();
                            }
                            c.inflight += 1;
                            pending.insert(
                                (c.id, token),
                                Pending {
                                    expiry: deadline + REPLY_GRACE,
                                    id,
                                    fingerprint,
                                    received,
                                },
                            );
                        }
                    }
                }
            }
        }
        let cap = if c.http.is_some() {
            MAX_HTTP_HEADER
        } else {
            MAX_FRAME as usize
        };
        if !c.closing && c.read_buf.len() >= cap {
            // unfinished frame at the cap: structured refusal, then close
            inner
                .metrics
                .error_responses
                .fetch_add(1, Ordering::Relaxed);
            let e = HtdError::Parse(format!(
                "request frame exceeds {cap} bytes without a newline"
            ));
            c.queue(&response_line(&Response::from_error(None, &e)));
            c.read_buf.clear();
            c.closing = true;
        }
        let _ = c.flush();
    }

    /// Routes finished worker responses to their connections. A
    /// completion whose pending entry is gone (expired, or its
    /// connection died) is dropped — the loop never writes a response
    /// twice and never writes to a stranger.
    fn deliver_completions(
        completions: &Arc<Completions>,
        conns: &mut HashMap<u64, Conn>,
        pending: &mut HashMap<(u64, u64), Pending>,
    ) {
        for (conn_id, token, response) in completions.drain() {
            if pending.remove(&(conn_id, token)).is_none() {
                continue;
            }
            if let Some(c) = conns.get_mut(&conn_id) {
                c.inflight = c.inflight.saturating_sub(1);
                c.queue(&response_line(&response));
                let _ = c.flush();
            }
        }
    }

    /// Synthesizes `timeout` responses for pending requests whose reply
    /// grace has passed (mirrors the blocking path's `recv_timeout`).
    fn expire_pending(
        inner: &Arc<Inner>,
        conns: &mut HashMap<u64, Conn>,
        pending: &mut HashMap<(u64, u64), Pending>,
        now: Instant,
    ) {
        let expired: Vec<(u64, u64)> = pending
            .iter()
            .filter(|(_, p)| now >= p.expiry)
            .map(|(k, _)| *k)
            .collect();
        for key in expired {
            let p = pending.remove(&key).expect("key just listed");
            inner
                .metrics
                .timeout_responses
                .fetch_add(1, Ordering::Relaxed);
            let mut r = Response::new(p.id, Status::Timeout);
            r.error = Some("no worker response before deadline".into());
            r.fingerprint = p.fingerprint;
            r.elapsed_ms = p.received.elapsed().as_secs_f64() * 1000.0;
            if let Some(c) = conns.get_mut(&key.0) {
                c.inflight = c.inflight.saturating_sub(1);
                c.queue(&response_line(&r));
                let _ = c.flush();
            }
        }
    }

    /// Final delivery pass on shutdown: the server only flips the flag
    /// once the queue is empty and no worker is mid-solve, but a worker
    /// may still be between "done" and "completion pushed" — give the
    /// stragglers the reply grace, then flush what we can and exit.
    fn drain_before_exit(
        inner: &Arc<Inner>,
        completions: &Arc<Completions>,
        conns: &mut HashMap<u64, Conn>,
        pending: &mut HashMap<(u64, u64), Pending>,
    ) {
        let start = Instant::now();
        loop {
            deliver_completions(completions, conns, pending);
            expire_pending(inner, conns, pending, Instant::now());
            for c in conns.values_mut() {
                let _ = c.flush();
            }
            let unflushed = conns.values().any(|c| c.wants_write());
            if (pending.is_empty() && !unflushed) || start.elapsed() > REPLY_GRACE {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        htd_trace::registry()
            .gauge("htd_eventloop_connections")
            .set(0);
    }
}
