//! Persistent verified certificate store: warm restarts without
//! trusting disk.
//!
//! HyperBench-class workloads are dominated by repeated instances of
//! the same shapes, so a server restart that discards the in-memory
//! result cache pays the full decomposition cost again. This module
//! backs the cache with an **append-only log** of solved outcomes keyed
//! by the canonical fingerprint, and — because `htd-check` can
//! independently re-verify any certificate — a reopened store is
//! **re-proved, not believed**: every record must survive the oracle
//! before it may serve a request.
//!
//! ## Log record layout (`store.log`)
//!
//! Fixed little-endian framing, one record per admitted outcome:
//!
//! ```text
//! magic    u32  = 0x53445448  ("HTDS")
//! len      u32  — payload length in bytes
//! checksum u64  — FNV-1a over the payload bytes
//! payload  [len]u8 — one JSON object:
//!   {"v":1,"objective":"tw","format":"gr","instance":"<text>",
//!    "fingerprint":"<hex>","canonical_len":N,"effort_ms":E,
//!    "outcome":{…Outcome schema…}}
//! ```
//!
//! The payload carries the original instance *text*, not just the
//! canonical bytes: the oracle needs a [`Problem`] to judge the witness
//! against, and re-parsing the instance plus re-deriving its canonical
//! form from scratch means a tampered instance/outcome pairing cannot
//! slip through on a stale key.
//!
//! ## Recovery rules (crash tolerance)
//!
//! * A record whose header or payload extends past end-of-file is a
//!   **truncated tail** — the expected residue of a crash (`kill -9`)
//!   mid-append. It is skipped silently (counted in
//!   [`StoreStats::truncated`]) and the log is truncated back to the
//!   last whole record so the next append produces a clean log.
//! * A record with intact framing but a **checksum mismatch**, an
//!   unparseable payload, a fingerprint that does not match the
//!   re-derived canonical form, or an outcome the **oracle rejects**
//!   ([`htd_check::verify_store_entry`]) is *tampered or stale*: the
//!   record is dropped, `htd_store_rejects_total` is incremented, and
//!   the scan continues at the next record (the framing tells us where
//!   it starts).
//! * A corrupt **magic** means the framing itself can no longer be
//!   trusted; the remainder of the log is abandoned (counted as one
//!   reject) and truncated away.
//!
//! A request whose entry was dropped simply misses the warm cache and
//! recomputes — the store can cost time, never correctness.
//!
//! ## Exclusive ownership (`flock`)
//!
//! The log is single-writer by design: two servers appending to the
//! same `store.log` would interleave frames and corrupt both histories.
//! `CertStore::open` therefore takes an **advisory exclusive `flock`**
//! on the log and fails fast with a structured error when another
//! process (or another store in this process) already holds it —
//! pointing two `htd serve --store` instances at one directory is a
//! deployment mistake the server refuses at startup, never a latent
//! corruption.

use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use htd_core::Json;
use htd_search::Outcome;
use parking_lot::Mutex;

use crate::protocol::{parse_problem, InstanceFormat};

/// `"HTDS"` in little-endian byte order.
const MAGIC: u32 = 0x5344_5448;
/// Largest accepted payload; anything bigger is treated as corruption
/// rather than an instruction to allocate without bound.
const MAX_PAYLOAD: u32 = 64 << 20;
/// Record schema version inside the payload.
const RECORD_VERSION: u64 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut x = FNV_OFFSET;
    for &b in bytes {
        x ^= b as u64;
        x = x.wrapping_mul(FNV_PRIME);
    }
    x
}

/// One verified entry recovered from (or destined for) the log.
#[derive(Clone, Debug)]
pub struct StoreRecord {
    /// Objective wire name (`tw`/`ghw` — `hw` is not store-admissible,
    /// see [`htd_check::verify_store_entry`]).
    pub objective: &'static str,
    /// How `instance` parses.
    pub format: InstanceFormat,
    /// The original instance text.
    pub instance: String,
    /// 64-bit canonical fingerprint (shard + log label).
    pub fingerprint: u64,
    /// Full canonical byte serialization — the exact cache key.
    pub canonical: Vec<u8>,
    /// Solve effort that produced the outcome (cache admission gate for
    /// inexact entries).
    pub effort_ms: u64,
    /// The outcome itself.
    pub outcome: Outcome,
}

/// What happened while opening a log.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Records that survived checksum + oracle and were admitted.
    pub loaded: u64,
    /// Records dropped as tampered/stale (checksum, parse, fingerprint
    /// or oracle failure).
    pub rejected: u64,
    /// Half-written records skipped at the tail (crash residue).
    pub truncated: u64,
}

/// The append-only verified certificate store.
pub struct CertStore {
    path: PathBuf,
    file: Mutex<File>,
    /// Canonical keys already present, so repeated solves of the same
    /// instance do not grow the log without bound.
    keys: Mutex<HashSet<(String, Vec<u8>)>>,
    stats: StoreStats,
    appended: AtomicU64,
    bytes: AtomicU64,
}

impl CertStore {
    /// Opens (creating if needed) the store under `dir`, scanning and
    /// re-verifying the whole log. Returns the store plus the verified
    /// records, ready to warm a result cache.
    pub fn open(dir: &Path) -> std::io::Result<(CertStore, Vec<StoreRecord>)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("store.log");
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&path)?;
        lock_exclusive(&file, &path)?;
        let mut raw = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut raw)?;

        let _sp = htd_trace::span!("store.load");
        let mut records = Vec::new();
        let mut stats = StoreStats::default();
        let mut pos = 0usize;
        let mut keep = 0usize; // log survives up to here
        while pos < raw.len() {
            let Some((payload, next)) = read_frame(&raw, pos, &mut stats) else {
                break; // truncated tail or unrecoverable framing
            };
            match decode_record(payload) {
                Some(rec) => {
                    let key = (rec.objective.to_string(), rec.canonical.clone());
                    records.push(rec);
                    stats.loaded += 1;
                    // duplicate keys keep the *last* verified record
                    records.dedup_by(|b, a| {
                        a.objective == b.objective && a.canonical == b.canonical && {
                            std::mem::swap(a, b);
                            true
                        }
                    });
                    let _ = key;
                }
                None => stats.rejected += 1,
            }
            pos = next;
            keep = next;
        }
        if keep < raw.len() {
            // drop the unreadable tail so the next append starts clean
            file.set_len(keep as u64)?;
            file.seek(SeekFrom::End(0))?;
        }
        let reg = htd_trace::registry();
        reg.counter("htd_store_loaded_total").add(stats.loaded);
        reg.counter("htd_store_rejects_total").add(stats.rejected);
        reg.counter("htd_store_truncated_total")
            .add(stats.truncated);
        reg.gauge("htd_store_bytes").set(keep as i64);
        let keys = records
            .iter()
            .map(|r| (r.objective.to_string(), r.canonical.clone()))
            .collect();
        Ok((
            CertStore {
                path,
                file: Mutex::new(file),
                keys: Mutex::new(keys),
                stats,
                appended: AtomicU64::new(0),
                bytes: AtomicU64::new(keep as u64),
            },
            records,
        ))
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Load-time statistics of this open.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Records appended since this open.
    pub fn appended(&self) -> u64 {
        self.appended.load(Ordering::Relaxed)
    }

    /// Current log size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Re-reads and re-verifies the whole log, returning the surviving
    /// records (duplicate keys keep the last verified one). Used by the
    /// cluster layer for incremental key handoff: when a peer joins or
    /// recovers, the records it now owns are extracted here and pushed
    /// over `put_cert` — where the receiver re-proves them again. This
    /// is a full scan plus oracle re-verification, so it runs only on
    /// membership transitions, never on the request path.
    pub fn replay(&self) -> std::io::Result<Vec<StoreRecord>> {
        let mut raw = Vec::new();
        {
            let mut file = self.file.lock();
            file.seek(SeekFrom::Start(0))?;
            file.read_to_end(&mut raw)?;
            file.seek(SeekFrom::End(0))?;
        }
        let _sp = htd_trace::span!("store.replay");
        let mut records: Vec<StoreRecord> = Vec::new();
        let mut stats = StoreStats::default();
        let mut pos = 0usize;
        while pos < raw.len() {
            let Some((payload, next)) = read_frame(&raw, pos, &mut stats) else {
                break;
            };
            if let Some(rec) = decode_record(payload) {
                records.retain(|r| r.objective != rec.objective || r.canonical != rec.canonical);
                records.push(rec);
            }
            pos = next;
        }
        Ok(records)
    }

    /// Appends one record unless its key is already stored. Only
    /// outcomes the oracle could later re-admit are worth writing:
    /// callers must pass cacheable (non-degraded) outcomes with a
    /// witness; `hw` outcomes are refused here (they cannot be
    /// re-verified on load, so persisting them wastes the log).
    pub fn append(&self, rec: &StoreRecord) -> std::io::Result<bool> {
        if rec.objective == "hw" || rec.outcome.witness.is_none() {
            return Ok(false);
        }
        {
            let mut keys = self.keys.lock();
            if !keys.insert((rec.objective.to_string(), rec.canonical.clone())) {
                return Ok(false); // already stored
            }
        }
        let _sp = htd_trace::span!("store.append");
        let payload = encode_payload(rec);
        let mut frame = Vec::with_capacity(16 + payload.len());
        frame.extend_from_slice(&MAGIC.to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        let mut file = self.file.lock();
        // one write_all per record: a crash can truncate the tail record
        // but never interleave two
        file.write_all(&frame)?;
        file.flush()?;
        drop(file);
        self.appended.fetch_add(1, Ordering::Relaxed);
        let bytes =
            self.bytes.fetch_add(frame.len() as u64, Ordering::Relaxed) + frame.len() as u64;
        let reg = htd_trace::registry();
        reg.counter("htd_store_appends_total").inc();
        reg.gauge("htd_store_bytes").set(bytes as i64);
        Ok(true)
    }
}

impl CertStore {
    /// Releases the advisory single-writer lock without closing the
    /// store. Called by server teardown (`wait`/`kill`) after the
    /// worker pool — the only appender — has been joined, so a reopen
    /// in the same process succeeds even while detached connection
    /// threads still hold a reference to the old store for a moment.
    /// The kernel would release the lock on drop anyway; this just
    /// makes the release deterministic.
    pub(crate) fn unlock(&self) {
        unlock_file(&self.file.lock());
    }
}

#[cfg(unix)]
fn unlock_file(file: &File) {
    use std::os::unix::io::AsRawFd;
    extern "C" {
        fn flock(fd: i32, operation: i32) -> i32;
    }
    const LOCK_UN: i32 = 8;
    unsafe { flock(file.as_raw_fd(), LOCK_UN) };
}

#[cfg(not(unix))]
fn unlock_file(_file: &File) {}

/// Takes the advisory exclusive lock that makes the log single-writer.
/// `LOCK_EX | LOCK_NB`: a second opener gets an immediate structured
/// error instead of blocking behind (and then corrupting) the first.
/// The lock lives on the open file description and is released by the
/// kernel when the store is dropped — even on `kill -9`.
#[cfg(unix)]
fn lock_exclusive(file: &File, path: &Path) -> std::io::Result<()> {
    use std::os::unix::io::AsRawFd;
    extern "C" {
        fn flock(fd: i32, operation: i32) -> i32;
    }
    const LOCK_EX: i32 = 2;
    const LOCK_NB: i32 = 4;
    if unsafe { flock(file.as_raw_fd(), LOCK_EX | LOCK_NB) } != 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::WouldBlock,
            format!(
                "certificate store {} is locked by another server; \
                 the append-only log is single-writer — give each \
                 server its own --store directory",
                path.display()
            ),
        ));
    }
    Ok(())
}

#[cfg(not(unix))]
fn lock_exclusive(_file: &File, _path: &Path) -> std::io::Result<()> {
    Ok(())
}

/// Pulls one framed payload out of `raw` at `pos`. Returns the payload
/// slice and the next record offset, or `None` when the scan must stop
/// (truncated tail, unrecoverable framing), updating `stats`.
fn read_frame<'a>(raw: &'a [u8], pos: usize, stats: &mut StoreStats) -> Option<(&'a [u8], usize)> {
    if raw.len() - pos < 16 {
        stats.truncated += 1;
        return None;
    }
    let magic = u32::from_le_bytes(raw[pos..pos + 4].try_into().unwrap());
    if magic != MAGIC {
        // framing lost: nothing after this offset can be trusted
        stats.rejected += 1;
        return None;
    }
    let len = u32::from_le_bytes(raw[pos + 4..pos + 8].try_into().unwrap());
    if len > MAX_PAYLOAD {
        stats.rejected += 1;
        return None;
    }
    let body = pos + 16;
    let end = body + len as usize;
    if end > raw.len() {
        stats.truncated += 1;
        return None;
    }
    let checksum = u64::from_le_bytes(raw[pos + 8..pos + 16].try_into().unwrap());
    let payload = &raw[body..end];
    if fnv1a(payload) != checksum {
        // tampered payload with intact framing: drop it, keep scanning
        stats.rejected += 1;
        return Some((b"", end));
    }
    Some((payload, end))
}

fn encode_payload(rec: &StoreRecord) -> Vec<u8> {
    Json::Obj(vec![
        ("v".into(), Json::Num(RECORD_VERSION as f64)),
        ("objective".into(), Json::Str(rec.objective.into())),
        ("format".into(), Json::Str(rec.format.name().into())),
        ("instance".into(), Json::Str(rec.instance.clone())),
        (
            "fingerprint".into(),
            Json::Str(format!("{:016x}", rec.fingerprint)),
        ),
        (
            "canonical_len".into(),
            Json::Num(rec.canonical.len() as f64),
        ),
        ("effort_ms".into(), Json::Num(rec.effort_ms as f64)),
        ("outcome".into(), rec.outcome.to_json()),
    ])
    .to_string()
    .into_bytes()
}

/// Decodes and **re-verifies** one payload: parse → rebuild the problem
/// → re-derive the canonical form → match the stored fingerprint →
/// oracle-judge the outcome. Any failure returns `None` (the caller
/// counts it as a reject).
fn decode_record(payload: &[u8]) -> Option<StoreRecord> {
    if payload.is_empty() {
        return None;
    }
    let _sp = htd_trace::span!("store.verify");
    let text = std::str::from_utf8(payload).ok()?;
    let doc = Json::parse(text).ok()?;
    if doc.get("v").and_then(|v| v.as_u64()) != Some(RECORD_VERSION) {
        return None;
    }
    let objective_name = doc.get("objective").and_then(|v| v.as_str())?;
    let objective = htd_search::Objective::from_name(objective_name)?;
    let format = InstanceFormat::from_name(doc.get("format").and_then(|v| v.as_str())?)?;
    let instance = doc.get("instance").and_then(|v| v.as_str())?.to_string();
    let fingerprint =
        u64::from_str_radix(doc.get("fingerprint").and_then(|v| v.as_str())?, 16).ok()?;
    let canonical_len = doc.get("canonical_len").and_then(|v| v.as_u64())? as usize;
    let effort_ms = doc.get("effort_ms").and_then(|v| v.as_u64())?;
    let outcome = Outcome::from_json(doc.get("outcome")?).ok()?;

    let rec = verify_claim(objective, format, instance, fingerprint, effort_ms, outcome)?;
    if rec.canonical.len() != canonical_len {
        return None;
    }
    Some(rec)
}

/// The trust boundary shared by the log loader and the cluster's
/// `put_cert` handler: rebuild the problem from the claimed instance
/// text, re-derive the canonical form from scratch (the claimed
/// fingerprint is a claim, not a key), and let the oracle re-prove the
/// outcome before it may serve anyone. Any failure returns `None`.
pub(crate) fn verify_claim(
    objective: htd_search::Objective,
    format: InstanceFormat,
    instance: String,
    fingerprint: u64,
    effort_ms: u64,
    outcome: Outcome,
) -> Option<StoreRecord> {
    let (problem, key_hypergraph) = parse_problem(format, &instance, objective).ok()?;
    let canon = htd_hypergraph::canonical::canonical_form(&key_hypergraph);
    if canon.fingerprint != fingerprint {
        return None;
    }
    if !htd_check::verify_store_entry(&problem, &outcome).is_valid() {
        return None;
    }
    Some(StoreRecord {
        objective: objective.name(),
        format,
        instance,
        fingerprint,
        canonical: canon.bytes,
        effort_ms,
        outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use htd_hypergraph::{gen, io};
    use htd_search::{solve, Objective, SearchConfig};

    fn solved_record(k: u32) -> StoreRecord {
        let g = gen::grid_graph(k, k);
        let instance = io::write_pace_gr(&g);
        let (problem, key) =
            parse_problem(InstanceFormat::PaceGr, &instance, Objective::Treewidth).unwrap();
        let outcome = solve(&problem, &SearchConfig::budgeted(200_000)).unwrap();
        let canon = htd_hypergraph::canonical::canonical_form(&key);
        StoreRecord {
            objective: "tw",
            format: InstanceFormat::PaceGr,
            instance,
            fingerprint: canon.fingerprint,
            canonical: canon.bytes,
            effort_ms: 25,
            outcome,
        }
    }

    #[test]
    fn round_trip_append_reopen() {
        let dir = std::env::temp_dir().join(format!("htd-store-rt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (store, loaded) = CertStore::open(&dir).unwrap();
        assert!(loaded.is_empty());
        let rec = solved_record(3);
        assert!(store.append(&rec).unwrap());
        // duplicate key: not appended again
        assert!(!store.append(&rec).unwrap());
        drop(store);
        let (store2, loaded) = CertStore::open(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(store2.stats().loaded, 1);
        assert_eq!(store2.stats().rejected, 0);
        assert_eq!(loaded[0].fingerprint, rec.fingerprint);
        assert_eq!(loaded[0].canonical, rec.canonical);
        assert_eq!(loaded[0].outcome.upper, rec.outcome.upper);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(unix)]
    #[test]
    fn second_open_of_a_locked_store_fails_fast() {
        let dir = std::env::temp_dir().join(format!("htd-store-lock-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (store, _) = CertStore::open(&dir).unwrap();
        let err = match CertStore::open(&dir) {
            Ok(_) => panic!("second opener must be refused"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
        assert!(
            err.to_string().contains("locked by another server"),
            "{err}"
        );
        // the lock dies with the holder; a reopen then succeeds
        drop(store);
        let (_store, _) = CertStore::open(&dir).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_returns_the_verified_records() {
        let dir = std::env::temp_dir().join(format!("htd-store-replay-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (store, _) = CertStore::open(&dir).unwrap();
        let a = solved_record(3);
        let b = solved_record(4);
        assert!(store.append(&a).unwrap());
        assert!(store.append(&b).unwrap());
        let replayed = store.replay().unwrap();
        assert_eq!(replayed.len(), 2);
        assert!(replayed.iter().any(|r| r.fingerprint == a.fingerprint));
        assert!(replayed.iter().any(|r| r.fingerprint == b.fingerprint));
        // appends still work after a replay (cursor restored)
        let c = solved_record(5);
        assert!(store.append(&c).unwrap());
        assert_eq!(store.replay().unwrap().len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hw_and_witnessless_records_are_refused_at_append() {
        let dir = std::env::temp_dir().join(format!("htd-store-hw-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (store, _) = CertStore::open(&dir).unwrap();
        let mut rec = solved_record(3);
        rec.objective = "hw";
        assert!(!store.append(&rec).unwrap());
        let mut rec = solved_record(3);
        rec.outcome.witness = None;
        assert!(!store.append(&rec).unwrap());
        assert_eq!(store.appended(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
