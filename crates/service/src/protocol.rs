//! The wire protocol of the decomposition service.
//!
//! One JSON object per line in both directions, reusing the workspace's
//! [`Json`] value type and the documented [`Outcome`] schema
//! ([`Outcome::to_json`]) verbatim for results.
//!
//! ## Requests
//!
//! ```json
//! {"id":"r1","cmd":"solve","objective":"ghw","format":"hg",
//!  "instance":"e1(a,b,c),\ne2(c,d).","deadline_ms":500,
//!  "budget":1000000,"threads":2,"engines":["balsep","branch_bound"],
//!  "cache":"use"}
//! {"id":"r2","cmd":"ping"}
//! {"id":"r3","cmd":"stats"}
//! {"id":"r4","cmd":"shutdown"}
//! {"id":"r5","cmd":"answer","mode":"count","query":
//!  "Q(x,y) :- R(x,z), S(z,y).\nR: 1 2 .\nS: 2 3 .","limit":10,
//!  "deadline_ms":500,"cache":"use"}
//! ```
//!
//! `format` is `auto` (default, sniffed), `gr` (PACE), `col` (DIMACS) or
//! `hg` (HyperBench). `cache` is `use` (default) or `off` (bypass lookup,
//! still admit the fresh result). `engines` (array of registry names, or
//! one comma-separated string) pins the lineup for this request; an
//! unknown name is rejected with an error listing the registered
//! engines.
//!
//! ## Responses
//!
//! ```json
//! {"id":"r1","status":"ok","cached":false,"fingerprint":"0f3a…",
//!  "canonical":true,"elapsed_ms":12.4,"outcome":{…Outcome schema…}}
//! {"id":"r1","status":"rejected","retry_after_ms":50,"error":"queue full"}
//! {"id":"r1","status":"timeout","error":"deadline expired in queue"}
//! {"id":"r1","status":"error","code":2,"error":"…"}
//! ```
//!
//! `status` is one of `ok`, `rejected`, `timeout`, `error`,
//! `shutting_down`, `pong`, `stats`. `code` mirrors the CLI exit codes
//! (2 parse, 3 invalid, 4 unsupported, 5 io/internal, 6 resource
//! exhausted).
//!
//! An `answer` request runs a conjunctive query end to end (see
//! `htd-query`): `mode` is `bool`/`count`/`enum`, `query` the text or
//! JSON query format (file-referenced relations are always refused on
//! the wire), `limit` caps enumeration, and `cache` `use`/`off` controls
//! the *shape* cache — decompositions reused across queries with
//! isomorphic hypergraphs. The `ok` response carries the answer under
//! `"answer"` (`htd_query::Answer::to_json` schema), with `cached`
//! meaning the decomposition was a shape-cache hit.
//!
//! ## Cluster extensions
//!
//! When nodes run as a cluster (`htd serve --peers`), three small
//! extensions carry the routing and replication traffic over the same
//! newline-JSON protocol:
//!
//! * `"forwarded":true` on a `solve`/`answer` marks a request relayed
//!   by a peer; the receiver always executes it locally (forwarding is
//!   one hop, never a loop).
//! * `{"cmd":"put_cert",…}` pushes a solved certificate (replication or
//!   hinted handoff). The receiver **re-verifies it with the `htd-check`
//!   oracle before admitting it** — remote peers are untrusted exactly
//!   like disk — and answers `ok` on admission or `error` (code 3,
//!   counted in `htd_cluster_cert_rejects_total`) on rejection.
//! * Responses carry `"node":"<id>"` naming the node that actually
//!   computed/served the result, and `pong` responses carry
//!   `"draining":true` once a graceful drain starts, which the failure
//!   detector reads as leave-intent.
//!
//! ## Pipelined batches
//!
//! A client may write several request lines without waiting for
//! responses. Against the event-loop front end (`htd serve
//! --event-loop`) the requests are admitted independently and each
//! response is written **as soon as it completes — possibly out of
//! request order**. The `id` field is therefore the correlation key:
//! clients that pipeline must send a distinct `id` per request and match
//! responses by it (the blocking thread-per-connection front end happens
//! to preserve order, but that is an implementation detail, not a
//! protocol guarantee). Responses to protocol-level failures that could
//! not be parsed far enough to recover an `id` carry `"id":null`.

use htd_core::{HtdError, Json};
use htd_hypergraph::{io, Hypergraph};
use htd_query::{Answer, AnswerMode};
use htd_search::{Engine, Objective, Outcome, Problem};

/// How the `instance` text of a solve request is to be parsed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InstanceFormat {
    /// Sniff from the first non-comment line (default).
    Auto,
    /// PACE `.gr` (`p tw n m` header).
    PaceGr,
    /// DIMACS graph coloring (`p edge n m` header).
    Dimacs,
    /// HyperBench `.hg` atom list.
    Hg,
}

impl InstanceFormat {
    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            InstanceFormat::Auto => "auto",
            InstanceFormat::PaceGr => "gr",
            InstanceFormat::Dimacs => "col",
            InstanceFormat::Hg => "hg",
        }
    }

    /// Parses the wire name.
    pub fn from_name(s: &str) -> Option<InstanceFormat> {
        match s {
            "auto" => Some(InstanceFormat::Auto),
            "gr" => Some(InstanceFormat::PaceGr),
            "col" | "dimacs" => Some(InstanceFormat::Dimacs),
            "hg" => Some(InstanceFormat::Hg),
            _ => None,
        }
    }
}

/// A solve request's payload.
#[derive(Clone, Debug)]
pub struct SolveRequest {
    /// What to minimize.
    pub objective: Objective,
    /// How to parse `instance`.
    pub format: InstanceFormat,
    /// The instance text.
    pub instance: String,
    /// Wall-clock deadline for the whole request; `None` = server default.
    pub deadline_ms: Option<u64>,
    /// Node budget; `None` = server default.
    pub budget: Option<u64>,
    /// Worker threads for this solve; `None` = 1.
    pub threads: Option<usize>,
    /// Explicit engine lineup (registry names, launch order); `None`
    /// runs the server's default (breaker-filtered) lineup. An explicit
    /// lineup overrides the circuit-breaker bench for this request.
    pub engines: Option<Vec<Engine>>,
    /// `false` bypasses the cache lookup (the result is still admitted).
    pub use_cache: bool,
    /// Set on a request relayed by a cluster peer: the receiver must
    /// execute it locally and never forward again (one hop, no loops).
    pub forwarded: bool,
}

/// An answer request's payload: a conjunctive query to evaluate.
#[derive(Clone, Debug)]
pub struct AnswerRequest {
    /// The query in the `htd-query` text or JSON format.
    pub query: String,
    /// What to compute.
    pub mode: AnswerMode,
    /// Maximum answers returned in enumeration mode; `None` = server cap.
    pub limit: Option<u64>,
    /// Wall-clock deadline for the whole request; `None` = server default.
    pub deadline_ms: Option<u64>,
    /// Worker threads for the decomposition; `None` = 1.
    pub threads: Option<usize>,
    /// Engine lineup for the decomposition (as in [`SolveRequest`]).
    pub engines: Option<Vec<Engine>>,
    /// `false` bypasses the shape-cache lookup (the fresh decomposition
    /// is still admitted).
    pub use_cache: bool,
    /// Set on a request relayed by a cluster peer (as in
    /// [`SolveRequest::forwarded`]).
    pub forwarded: bool,
}

/// A `put_cert` payload: one solved certificate pushed by a cluster
/// peer (R-way replication of fresh solves, or hinted handoff after a
/// failover). The fields mirror the certificate-store record — the
/// receiver re-parses the instance, re-derives the canonical form and
/// re-proves the outcome with the oracle before admitting anything.
#[derive(Clone, Debug)]
pub struct CertPush {
    /// Objective of the solved instance.
    pub objective: Objective,
    /// How `instance` parses.
    pub format: InstanceFormat,
    /// The original instance text (the oracle needs it to re-verify).
    pub instance: String,
    /// Claimed canonical fingerprint (hex); checked against the
    /// re-derived form, never trusted.
    pub fingerprint_hex: String,
    /// Solve effort behind the outcome (cache admission gate).
    pub effort_ms: u64,
    /// The claimed outcome.
    pub outcome: Outcome,
    /// Sending node id, for logs and peer accounting.
    pub from: Option<String>,
}

/// A parsed request line.
#[derive(Clone, Debug)]
pub struct Request {
    /// Client-chosen id echoed back on the response.
    pub id: Option<String>,
    /// The command.
    pub cmd: Command,
}

/// The commands the server understands.
#[derive(Clone, Debug)]
pub enum Command {
    /// Solve an instance.
    Solve(SolveRequest),
    /// Answer a conjunctive query.
    Answer(AnswerRequest),
    /// Admit a peer-pushed certificate (after oracle re-verification).
    PutCert(CertPush),
    /// Liveness probe.
    Ping,
    /// Metrics snapshot as JSON.
    Stats,
    /// Begin graceful shutdown (drain, then exit).
    Shutdown,
}

impl Request {
    /// Serializes the request to its wire object.
    pub fn to_json(&self) -> Json {
        let mut m: Vec<(String, Json)> = Vec::new();
        if let Some(id) = &self.id {
            m.push(("id".into(), Json::Str(id.clone())));
        }
        match &self.cmd {
            Command::Ping => m.push(("cmd".into(), Json::Str("ping".into()))),
            Command::Stats => m.push(("cmd".into(), Json::Str("stats".into()))),
            Command::Shutdown => m.push(("cmd".into(), Json::Str("shutdown".into()))),
            Command::Solve(s) => {
                m.push(("cmd".into(), Json::Str("solve".into())));
                m.push(("objective".into(), Json::Str(s.objective.name().into())));
                m.push(("format".into(), Json::Str(s.format.name().into())));
                m.push(("instance".into(), Json::Str(s.instance.clone())));
                if let Some(d) = s.deadline_ms {
                    m.push(("deadline_ms".into(), Json::Num(d as f64)));
                }
                if let Some(b) = s.budget {
                    m.push(("budget".into(), Json::Num(b as f64)));
                }
                if let Some(t) = s.threads {
                    m.push(("threads".into(), Json::Num(t as f64)));
                }
                if let Some(engines) = &s.engines {
                    m.push((
                        "engines".into(),
                        Json::Arr(engines.iter().map(|e| Json::Str(e.name().into())).collect()),
                    ));
                }
                if !s.use_cache {
                    m.push(("cache".into(), Json::Str("off".into())));
                }
                if s.forwarded {
                    m.push(("forwarded".into(), Json::Bool(true)));
                }
            }
            Command::Answer(a) => {
                m.push(("cmd".into(), Json::Str("answer".into())));
                m.push(("mode".into(), Json::Str(a.mode.name().into())));
                m.push(("query".into(), Json::Str(a.query.clone())));
                if let Some(l) = a.limit {
                    m.push(("limit".into(), Json::Num(l as f64)));
                }
                if let Some(d) = a.deadline_ms {
                    m.push(("deadline_ms".into(), Json::Num(d as f64)));
                }
                if let Some(t) = a.threads {
                    m.push(("threads".into(), Json::Num(t as f64)));
                }
                if let Some(engines) = &a.engines {
                    m.push((
                        "engines".into(),
                        Json::Arr(engines.iter().map(|e| Json::Str(e.name().into())).collect()),
                    ));
                }
                if !a.use_cache {
                    m.push(("cache".into(), Json::Str("off".into())));
                }
                if a.forwarded {
                    m.push(("forwarded".into(), Json::Bool(true)));
                }
            }
            Command::PutCert(c) => {
                m.push(("cmd".into(), Json::Str("put_cert".into())));
                m.push(("objective".into(), Json::Str(c.objective.name().into())));
                m.push(("format".into(), Json::Str(c.format.name().into())));
                m.push(("instance".into(), Json::Str(c.instance.clone())));
                m.push(("fingerprint".into(), Json::Str(c.fingerprint_hex.clone())));
                m.push(("effort_ms".into(), Json::Num(c.effort_ms as f64)));
                m.push(("outcome".into(), c.outcome.to_json()));
                if let Some(from) = &c.from {
                    m.push(("from".into(), Json::Str(from.clone())));
                }
            }
        }
        Json::Obj(m)
    }

    /// Parses a request line.
    pub fn from_json(doc: &Json) -> Result<Request, HtdError> {
        let id = doc
            .get("id")
            .and_then(|v| v.as_str())
            .map(|s| s.to_string());
        let cmd = doc
            .get("cmd")
            .and_then(|v| v.as_str())
            .ok_or_else(|| HtdError::Parse("request missing 'cmd'".into()))?;
        let cmd = match cmd {
            "ping" => Command::Ping,
            "stats" => Command::Stats,
            "shutdown" => Command::Shutdown,
            "solve" => {
                let objective = doc
                    .get("objective")
                    .and_then(|v| v.as_str())
                    .and_then(Objective::from_name)
                    .ok_or_else(|| {
                        HtdError::Unsupported("solve needs 'objective' tw|ghw|hw".into())
                    })?;
                let format = match doc.get("format").and_then(|v| v.as_str()) {
                    None => InstanceFormat::Auto,
                    Some(f) => InstanceFormat::from_name(f).ok_or_else(|| {
                        HtdError::Unsupported(format!("format '{f}' (expected auto|gr|col|hg)"))
                    })?,
                };
                let instance = doc
                    .get("instance")
                    .and_then(|v| v.as_str())
                    .ok_or_else(|| HtdError::Parse("solve missing 'instance'".into()))?
                    .to_string();
                let engines = engines_from_doc(doc)?;
                let use_cache = cache_from_doc(doc)?;
                Command::Solve(SolveRequest {
                    objective,
                    format,
                    instance,
                    deadline_ms: doc.get("deadline_ms").and_then(|v| v.as_u64()),
                    budget: doc.get("budget").and_then(|v| v.as_u64()),
                    threads: doc
                        .get("threads")
                        .and_then(|v| v.as_u64())
                        .map(|t| t as usize),
                    engines,
                    use_cache,
                    forwarded: forwarded_from_doc(doc),
                })
            }
            "answer" => {
                let mode = match doc.get("mode").and_then(|v| v.as_str()) {
                    None => AnswerMode::Boolean,
                    Some(m) => AnswerMode::from_name(m).ok_or_else(|| {
                        HtdError::Unsupported(format!("mode '{m}' (expected bool|count|enum)"))
                    })?,
                };
                let query = doc
                    .get("query")
                    .and_then(|v| v.as_str())
                    .ok_or_else(|| HtdError::Parse("answer missing 'query'".into()))?
                    .to_string();
                Command::Answer(AnswerRequest {
                    query,
                    mode,
                    limit: doc.get("limit").and_then(|v| v.as_u64()),
                    deadline_ms: doc.get("deadline_ms").and_then(|v| v.as_u64()),
                    threads: doc
                        .get("threads")
                        .and_then(|v| v.as_u64())
                        .map(|t| t as usize),
                    engines: engines_from_doc(doc)?,
                    use_cache: cache_from_doc(doc)?,
                    forwarded: forwarded_from_doc(doc),
                })
            }
            "put_cert" => {
                let objective = doc
                    .get("objective")
                    .and_then(|v| v.as_str())
                    .and_then(Objective::from_name)
                    .ok_or_else(|| {
                        HtdError::Unsupported("put_cert needs 'objective' tw|ghw|hw".into())
                    })?;
                let format = match doc.get("format").and_then(|v| v.as_str()) {
                    None => InstanceFormat::Auto,
                    Some(f) => InstanceFormat::from_name(f).ok_or_else(|| {
                        HtdError::Unsupported(format!("format '{f}' (expected auto|gr|col|hg)"))
                    })?,
                };
                let instance = doc
                    .get("instance")
                    .and_then(|v| v.as_str())
                    .ok_or_else(|| HtdError::Parse("put_cert missing 'instance'".into()))?
                    .to_string();
                let fingerprint_hex = doc
                    .get("fingerprint")
                    .and_then(|v| v.as_str())
                    .ok_or_else(|| HtdError::Parse("put_cert missing 'fingerprint'".into()))?
                    .to_string();
                let outcome = Outcome::from_json(
                    doc.get("outcome")
                        .ok_or_else(|| HtdError::Parse("put_cert missing 'outcome'".into()))?,
                )?;
                Command::PutCert(CertPush {
                    objective,
                    format,
                    instance,
                    fingerprint_hex,
                    effort_ms: doc.get("effort_ms").and_then(|v| v.as_u64()).unwrap_or(0),
                    outcome,
                    from: doc
                        .get("from")
                        .and_then(|v| v.as_str())
                        .map(|s| s.to_string()),
                })
            }
            other => return Err(HtdError::Unsupported(format!("unknown cmd '{other}'"))),
        };
        Ok(Request { id, cmd })
    }
}

/// Shared `engines` field parsing of `solve` and `answer` requests.
fn engines_from_doc(doc: &Json) -> Result<Option<Vec<Engine>>, HtdError> {
    match doc.get("engines") {
        None => Ok(None),
        Some(Json::Arr(names)) => {
            let names: Vec<&str> = names.iter().filter_map(|v| v.as_str()).collect();
            Ok(Some(htd_search::engines_from_names(&names)?))
        }
        Some(Json::Str(list)) => Ok(Some(htd_search::engines_from_names(
            &list.split(',').map(str::trim).collect::<Vec<_>>(),
        )?)),
        Some(_) => Err(HtdError::Unsupported(
            "engines must be a name array or comma-separated string".into(),
        )),
    }
}

/// Shared `forwarded` marker parsing of `solve` and `answer` requests.
fn forwarded_from_doc(doc: &Json) -> bool {
    doc.get("forwarded")
        .and_then(|v| v.as_bool())
        .unwrap_or(false)
}

/// Shared `cache` field parsing of `solve` and `answer` requests.
fn cache_from_doc(doc: &Json) -> Result<bool, HtdError> {
    match doc.get("cache").and_then(|v| v.as_str()) {
        None | Some("use") => Ok(true),
        Some("off") => Ok(false),
        Some(c) => Err(HtdError::Unsupported(format!(
            "cache '{c}' (expected use|off)"
        ))),
    }
}

/// Response statuses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// Solved (possibly from cache; possibly inexact bounds).
    Ok,
    /// Backpressure: the work queue is full, retry after `retry_after_ms`.
    Rejected,
    /// The deadline expired before a worker could start the solve.
    Timeout,
    /// The request failed (`code` mirrors the CLI exit codes).
    Error,
    /// The server is draining and accepts no new work.
    ShuttingDown,
    /// Reply to `ping`.
    Pong,
    /// Reply to `stats` (snapshot in `stats`).
    Stats,
}

impl Status {
    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Rejected => "rejected",
            Status::Timeout => "timeout",
            Status::Error => "error",
            Status::ShuttingDown => "shutting_down",
            Status::Pong => "pong",
            Status::Stats => "stats",
        }
    }

    /// Parses the wire name.
    pub fn from_name(s: &str) -> Option<Status> {
        match s {
            "ok" => Some(Status::Ok),
            "rejected" => Some(Status::Rejected),
            "timeout" => Some(Status::Timeout),
            "error" => Some(Status::Error),
            "shutting_down" => Some(Status::ShuttingDown),
            "pong" => Some(Status::Pong),
            "stats" => Some(Status::Stats),
            _ => None,
        }
    }
}

/// A response line.
#[derive(Clone, Debug)]
pub struct Response {
    /// Echo of the request id.
    pub id: Option<String>,
    /// Outcome class.
    pub status: Status,
    /// `true` iff served from the result cache.
    pub cached: bool,
    /// Canonical fingerprint of the instance (hex), when computed.
    pub fingerprint: Option<String>,
    /// Whether the canonical form was complete (fully relabeling-invariant).
    pub canonical: bool,
    /// The solve result (status `ok`, `solve` requests).
    pub outcome: Option<Outcome>,
    /// The query answer (status `ok`, `answer` requests).
    pub answer: Option<Answer>,
    /// Error text (statuses `error`, `rejected`, `timeout`).
    pub error: Option<String>,
    /// CLI-style error code (status `error`).
    pub code: Option<i64>,
    /// Backpressure hint (status `rejected`).
    pub retry_after_ms: Option<u64>,
    /// Metrics snapshot (status `stats`).
    pub stats: Option<Json>,
    /// Server-side time spent on the request.
    pub elapsed_ms: f64,
    /// Cluster mode: the id of the node that computed/served the
    /// result (which may differ from the node the client dialed when
    /// the request was forwarded to its ring owner).
    pub node: Option<String>,
    /// On `pong`: `true` once the responding server started a graceful
    /// drain. The cluster failure detector reads this as leave-intent.
    pub draining: bool,
}

impl Response {
    /// A bare response with the given status.
    pub fn new(id: Option<String>, status: Status) -> Response {
        Response {
            id,
            status,
            cached: false,
            fingerprint: None,
            canonical: false,
            outcome: None,
            answer: None,
            error: None,
            code: None,
            retry_after_ms: None,
            stats: None,
            elapsed_ms: 0.0,
            node: None,
            draining: false,
        }
    }

    /// An error response carrying the CLI-style code for `e`.
    pub fn from_error(id: Option<String>, e: &HtdError) -> Response {
        let code = match e {
            HtdError::Parse(_) => 2,
            HtdError::Invalid(_) => 3,
            HtdError::Unsupported(_) => 4,
            HtdError::Io(_) => 5,
            HtdError::ResourceExhausted(_) => 6,
        };
        let mut r = Response::new(id, Status::Error);
        r.error = Some(e.to_string());
        r.code = Some(code);
        r
    }

    /// Serializes the response to its wire object.
    pub fn to_json(&self) -> Json {
        let mut m: Vec<(String, Json)> = Vec::new();
        if let Some(id) = &self.id {
            m.push(("id".into(), Json::Str(id.clone())));
        }
        m.push(("status".into(), Json::Str(self.status.name().into())));
        if self.status == Status::Ok {
            m.push(("cached".into(), Json::Bool(self.cached)));
        }
        if let Some(fp) = &self.fingerprint {
            m.push(("fingerprint".into(), Json::Str(fp.clone())));
            m.push(("canonical".into(), Json::Bool(self.canonical)));
        }
        if let Some(e) = &self.error {
            m.push(("error".into(), Json::Str(e.clone())));
        }
        if let Some(c) = self.code {
            m.push(("code".into(), Json::Num(c as f64)));
        }
        if let Some(r) = self.retry_after_ms {
            m.push(("retry_after_ms".into(), Json::Num(r as f64)));
        }
        if let Some(s) = &self.stats {
            m.push(("stats".into(), s.clone()));
        }
        if let Some(n) = &self.node {
            m.push(("node".into(), Json::Str(n.clone())));
        }
        if self.draining {
            m.push(("draining".into(), Json::Bool(true)));
        }
        m.push(("elapsed_ms".into(), Json::Num(self.elapsed_ms)));
        if let Some(o) = &self.outcome {
            m.push(("outcome".into(), o.to_json()));
        }
        if let Some(a) = &self.answer {
            m.push(("answer".into(), a.to_json()));
        }
        Json::Obj(m)
    }

    /// Parses a response line.
    pub fn from_json(doc: &Json) -> Result<Response, HtdError> {
        let status = doc
            .get("status")
            .and_then(|v| v.as_str())
            .and_then(Status::from_name)
            .ok_or_else(|| HtdError::Parse("response missing 'status'".into()))?;
        Ok(Response {
            id: doc
                .get("id")
                .and_then(|v| v.as_str())
                .map(|s| s.to_string()),
            status,
            cached: doc.get("cached").and_then(|v| v.as_bool()).unwrap_or(false),
            fingerprint: doc
                .get("fingerprint")
                .and_then(|v| v.as_str())
                .map(|s| s.to_string()),
            canonical: doc
                .get("canonical")
                .and_then(|v| v.as_bool())
                .unwrap_or(false),
            outcome: match doc.get("outcome") {
                Some(o) => Some(Outcome::from_json(o)?),
                None => None,
            },
            answer: match doc.get("answer") {
                Some(a) => Some(Answer::from_json(a)?),
                None => None,
            },
            error: doc
                .get("error")
                .and_then(|v| v.as_str())
                .map(|s| s.to_string()),
            code: doc.get("code").and_then(|v| v.as_u64()).map(|c| c as i64),
            retry_after_ms: doc.get("retry_after_ms").and_then(|v| v.as_u64()),
            stats: doc.get("stats").cloned(),
            elapsed_ms: doc
                .get("elapsed_ms")
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0),
            node: doc
                .get("node")
                .and_then(|v| v.as_str())
                .map(|s| s.to_string()),
            draining: doc
                .get("draining")
                .and_then(|v| v.as_bool())
                .unwrap_or(false),
        })
    }
}

/// Builds the [`Problem`] plus the hypergraph the cache key is computed
/// over. For treewidth the key hypergraph is the binary-edge view of the
/// primal graph, so `tw` requests share cache entries across every input
/// format and every hypergraph with the same primal graph.
pub fn parse_problem(
    format: InstanceFormat,
    text: &str,
    objective: Objective,
) -> Result<(Problem, Hypergraph), HtdError> {
    let format = match format {
        InstanceFormat::Auto => sniff_format(text),
        f => f,
    };
    let hypergraph = match format {
        InstanceFormat::PaceGr => {
            let g = io::parse_pace_gr(text).map_err(|e| HtdError::Parse(e.to_string()))?;
            Hypergraph::from_graph(&g)
        }
        InstanceFormat::Dimacs => {
            let g = io::parse_dimacs(text).map_err(|e| HtdError::Parse(e.to_string()))?;
            Hypergraph::from_graph(&g)
        }
        InstanceFormat::Hg => io::parse_hg(text).map_err(|e| HtdError::Parse(e.to_string()))?,
        InstanceFormat::Auto => unreachable!("resolved above"),
    };
    let problem = match objective {
        Objective::Treewidth => Problem::treewidth_of_hypergraph(hypergraph.clone()),
        Objective::GeneralizedHypertreeWidth => Problem::ghw(hypergraph.clone()),
        Objective::HypertreeWidth => Problem::hw(hypergraph.clone()),
    };
    problem.validate()?;
    let key_hypergraph = match objective {
        // tw depends only on the primal graph — normalize the key to it
        Objective::Treewidth => Hypergraph::from_graph(problem.graph()),
        _ => hypergraph,
    };
    Ok((problem, key_hypergraph))
}

/// Chooses a format from the first non-comment, non-blank line.
fn sniff_format(text: &str) -> InstanceFormat {
    for line in text.lines() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') || t.starts_with('c') {
            continue;
        }
        if t.starts_with("p tw") {
            return InstanceFormat::PaceGr;
        }
        if t.starts_with("p edge") || t.starts_with("p col") {
            return InstanceFormat::Dimacs;
        }
        return InstanceFormat::Hg;
    }
    InstanceFormat::Hg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_engine_in_request_lists_the_registry() {
        let doc = Json::parse(
            r#"{"cmd":"solve","objective":"tw","instance":"p tw 1 0","engines":["balsep","warp"]}"#,
        )
        .unwrap();
        let err = Request::from_json(&doc).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("warp"), "{msg}");
        assert!(msg.contains("registered engines"), "{msg}");
        assert!(msg.contains("branch_bound"), "{msg}");
    }

    #[test]
    fn request_round_trip() {
        let req = Request {
            id: Some("r1".into()),
            cmd: Command::Solve(SolveRequest {
                objective: Objective::GeneralizedHypertreeWidth,
                format: InstanceFormat::Hg,
                instance: "e1(a,b),\ne2(b,c).".into(),
                deadline_ms: Some(250),
                budget: Some(1000),
                threads: Some(2),
                engines: Some(vec![Engine::BalSep, Engine::BranchBound]),
                use_cache: false,
                forwarded: true,
            }),
        };
        let text = req.to_json().to_string();
        let back = Request::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.id.as_deref(), Some("r1"));
        match back.cmd {
            Command::Solve(s) => {
                assert_eq!(s.objective, Objective::GeneralizedHypertreeWidth);
                assert_eq!(s.format, InstanceFormat::Hg);
                assert_eq!(s.deadline_ms, Some(250));
                assert_eq!(s.budget, Some(1000));
                assert_eq!(s.threads, Some(2));
                assert_eq!(s.engines, Some(vec![Engine::BalSep, Engine::BranchBound]));
                assert!(!s.use_cache);
                assert!(s.forwarded);
            }
            _ => panic!("wrong cmd"),
        }
    }

    #[test]
    fn answer_request_round_trip() {
        let req = Request {
            id: Some("a1".into()),
            cmd: Command::Answer(AnswerRequest {
                query: "Q(x) :- R(x).\nR: 1 ; 2 .".into(),
                mode: AnswerMode::Enumerate,
                limit: Some(10),
                deadline_ms: Some(250),
                threads: Some(2),
                engines: Some(vec![Engine::BalSep]),
                use_cache: false,
                forwarded: false,
            }),
        };
        let back = Request::from_json(&Json::parse(&req.to_json().to_string()).unwrap()).unwrap();
        match back.cmd {
            Command::Answer(a) => {
                assert_eq!(a.mode, AnswerMode::Enumerate);
                assert_eq!(a.limit, Some(10));
                assert_eq!(a.deadline_ms, Some(250));
                assert_eq!(a.threads, Some(2));
                assert_eq!(a.engines, Some(vec![Engine::BalSep]));
                assert!(!a.use_cache);
                assert!(a.query.contains(":-"));
            }
            _ => panic!("wrong cmd"),
        }
        // mode defaults to boolean; bad mode is rejected
        let doc = Json::parse(r#"{"cmd":"answer","query":"Q() :- R(x).\nR: 1 ."}"#).unwrap();
        match Request::from_json(&doc).unwrap().cmd {
            Command::Answer(a) => {
                assert_eq!(a.mode, AnswerMode::Boolean);
                assert!(!a.forwarded);
            }
            _ => panic!("wrong cmd"),
        }
        let doc = Json::parse(r#"{"cmd":"answer","query":"x","mode":"maybe"}"#).unwrap();
        assert!(Request::from_json(&doc).is_err());
    }

    #[test]
    fn control_commands_parse() {
        for (name, want) in [
            ("ping", "ping"),
            ("stats", "stats"),
            ("shutdown", "shutdown"),
        ] {
            let doc = Json::parse(&format!("{{\"cmd\":\"{name}\"}}")).unwrap();
            let req = Request::from_json(&doc).unwrap();
            assert_eq!(
                match req.cmd {
                    Command::Ping => "ping",
                    Command::Stats => "stats",
                    Command::Shutdown => "shutdown",
                    Command::Solve(_) => "solve",
                    Command::Answer(_) => "answer",
                    Command::PutCert(_) => "put_cert",
                },
                want
            );
        }
        assert!(Request::from_json(&Json::parse("{\"cmd\":\"nope\"}").unwrap()).is_err());
        assert!(Request::from_json(&Json::parse("{}").unwrap()).is_err());
    }

    #[test]
    fn response_round_trip() {
        let mut r = Response::new(Some("q".into()), Status::Rejected);
        r.error = Some("queue full".into());
        r.retry_after_ms = Some(50);
        r.elapsed_ms = 0.3;
        r.node = Some("node-b".into());
        let back = Response::from_json(&Json::parse(&r.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back.status, Status::Rejected);
        assert_eq!(back.retry_after_ms, Some(50));
        assert_eq!(back.error.as_deref(), Some("queue full"));
        assert_eq!(back.node.as_deref(), Some("node-b"));
        assert!(!back.draining);
        // draining pong round-trips
        let mut p = Response::new(None, Status::Pong);
        p.draining = true;
        let back = Response::from_json(&Json::parse(&p.to_json().to_string()).unwrap()).unwrap();
        assert!(back.draining);
    }

    #[test]
    fn put_cert_round_trip() {
        use htd_search::{solve, SearchConfig};
        let instance = "p tw 3 3\n1 2\n2 3\n1 3\n";
        let (problem, key) =
            parse_problem(InstanceFormat::PaceGr, instance, Objective::Treewidth).unwrap();
        let outcome = solve(&problem, &SearchConfig::budgeted(50_000)).unwrap();
        let canon = htd_hypergraph::canonical_form(&key);
        let req = Request {
            id: Some("h1".into()),
            cmd: Command::PutCert(CertPush {
                objective: Objective::Treewidth,
                format: InstanceFormat::PaceGr,
                instance: instance.into(),
                fingerprint_hex: canon.hex(),
                effort_ms: 12,
                outcome,
                from: Some("node-a".into()),
            }),
        };
        let back = Request::from_json(&Json::parse(&req.to_json().to_string()).unwrap()).unwrap();
        match back.cmd {
            Command::PutCert(c) => {
                assert_eq!(c.objective, Objective::Treewidth);
                assert_eq!(c.format, InstanceFormat::PaceGr);
                assert_eq!(c.fingerprint_hex, canon.hex());
                assert_eq!(c.effort_ms, 12);
                assert_eq!(c.from.as_deref(), Some("node-a"));
                assert!(c.outcome.witness.is_some());
            }
            _ => panic!("wrong cmd"),
        }
        // a put_cert without an outcome is a parse error
        let doc = Json::parse(
            r#"{"cmd":"put_cert","objective":"tw","instance":"p tw 1 0","fingerprint":"00"}"#,
        )
        .unwrap();
        assert!(Request::from_json(&doc).is_err());
    }

    #[test]
    fn sniffing_and_problem_building() {
        let (p, key) = parse_problem(
            InstanceFormat::Auto,
            "p tw 3 2\n1 2\n2 3\n",
            Objective::Treewidth,
        )
        .unwrap();
        assert_eq!(p.graph().num_vertices(), 3);
        assert_eq!(key.num_edges(), 2);
        let (p, _) = parse_problem(
            InstanceFormat::Auto,
            "e1(a,b,c),\ne2(c,d).",
            Objective::GeneralizedHypertreeWidth,
        )
        .unwrap();
        assert_eq!(p.hypergraph().unwrap().num_edges(), 2);
        let (p, _) = parse_problem(
            InstanceFormat::Auto,
            "p edge 3 2\ne 1 2\ne 2 3\n",
            Objective::Treewidth,
        )
        .unwrap();
        assert_eq!(p.graph().num_edges(), 2);
        assert!(parse_problem(InstanceFormat::Hg, "garbage", Objective::Treewidth).is_err());
    }

    #[test]
    fn tw_key_is_primal_normalized() {
        // a hypergraph and its primal graph's edge list share the tw key
        let (_, key_hg) =
            parse_problem(InstanceFormat::Hg, "e1(a,b,c).", Objective::Treewidth).unwrap();
        let (_, key_gr) = parse_problem(
            InstanceFormat::PaceGr,
            "p tw 3 3\n1 2\n2 3\n1 3\n",
            Objective::Treewidth,
        )
        .unwrap();
        use htd_hypergraph::canonical_form;
        assert_eq!(canonical_form(&key_hg).bytes, canonical_form(&key_gr).bytes);
    }
}
