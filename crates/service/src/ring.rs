//! Consistent-hash ring over canonical fingerprints.
//!
//! Every node of an `htd serve` cluster builds the same ring from the
//! same membership list (node ids), virtual-node count and placement
//! seed, so placement is a pure function of configuration: no
//! coordination protocol, no placement state to replicate or repair.
//! Keys are the 64-bit canonical fingerprints the cache and certificate
//! store already use, so "who owns this instance" and "which cache
//! shard holds it" are the same question.
//!
//! Virtual nodes smooth the load: each physical node hashes to
//! `vnodes` points on the ring, and a key belongs to the node owning
//! the first point clockwise from the key's (seed-mixed) position.
//! Replicas are the next *distinct* nodes on the same walk, so an
//! `R`-way replica set never names a node twice and membership changes
//! move only the keys adjacent to the changed node's points — the
//! classic consistent-hashing minimal-disruption property, verified by
//! the tests below.

/// A deterministic consistent-hash ring: `points` maps hashed vnode
/// positions to indices into `nodes`.
#[derive(Clone, Debug)]
pub struct Ring {
    /// Sorted `(position, node index)` pairs.
    points: Vec<(u64, u32)>,
    /// Member node ids, sorted for construction determinism.
    nodes: Vec<String>,
    seed: u64,
}

/// Finalizer from splitmix64: a fast, well-mixed 64→64 bit hash.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn fnv1a_str(s: &str) -> u64 {
    let mut x = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        x ^= b as u64;
        x = x.wrapping_mul(0x0000_0100_0000_01b3);
    }
    x
}

impl Ring {
    /// Builds the ring. `nodes` is the full membership (self included);
    /// order does not matter — ids are sorted so every peer derives the
    /// identical ring. `vnodes` points are placed per node, seeded by
    /// `seed` (all peers must agree on both).
    pub fn new(mut nodes: Vec<String>, vnodes: usize, seed: u64) -> Ring {
        nodes.sort();
        nodes.dedup();
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(nodes.len() * vnodes);
        for (i, id) in nodes.iter().enumerate() {
            let base = fnv1a_str(id) ^ mix64(seed);
            for v in 0..vnodes {
                points.push((mix64(base ^ mix64(v as u64)), i as u32));
            }
        }
        points.sort_unstable();
        // colliding positions would make placement order-dependent;
        // astronomically unlikely, resolved deterministically by node
        // index if it ever happens (sort is on the pair)
        Ring {
            points,
            nodes,
            seed,
        }
    }

    /// Member ids, sorted.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The owner plus replicas of `key`: the first `r` *distinct* nodes
    /// clockwise from the key's position, in ring order (the first entry
    /// is the primary owner). `r` is clamped to the membership size.
    pub fn owners(&self, key: u64, r: usize) -> Vec<&str> {
        let r = r.clamp(1, self.nodes.len().max(1));
        let mut out: Vec<&str> = Vec::with_capacity(r);
        if self.points.is_empty() {
            return out;
        }
        let pos = mix64(key ^ self.seed);
        let start = self.points.partition_point(|&(p, _)| p < pos);
        for i in 0..self.points.len() {
            let (_, node) = self.points[(start + i) % self.points.len()];
            let id = self.nodes[node as usize].as_str();
            if !out.contains(&id) {
                out.push(id);
                if out.len() == r {
                    break;
                }
            }
        }
        out
    }

    /// The primary owner of `key`.
    pub fn primary(&self, key: u64) -> Option<&str> {
        self.owners(key, 1).first().copied()
    }

    /// `true` iff `id` is among the first `r` owners of `key`.
    pub fn is_owner(&self, id: &str, key: u64, r: usize) -> bool {
        self.owners(key, r).contains(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring3() -> Ring {
        Ring::new(
            vec!["a".into(), "b".into(), "c".into()],
            64,
            0xC0FF_EE00_D15E_A5E5,
        )
    }

    #[test]
    fn placement_is_deterministic_and_order_independent() {
        let r1 = ring3();
        let r2 = Ring::new(
            vec!["c".into(), "a".into(), "b".into()],
            64,
            0xC0FF_EE00_D15E_A5E5,
        );
        for key in 0..500u64 {
            assert_eq!(r1.owners(key, 2), r2.owners(key, 2), "key {key}");
        }
    }

    #[test]
    fn replicas_are_distinct_and_led_by_the_primary() {
        let r = ring3();
        for key in 0..500u64 {
            let owners = r.owners(key, 2);
            assert_eq!(owners.len(), 2);
            assert_ne!(owners[0], owners[1]);
            assert_eq!(r.primary(key), Some(owners[0]));
            assert!(r.is_owner(owners[1], key, 2));
        }
        // r clamps to membership
        assert_eq!(r.owners(7, 99).len(), 3);
    }

    #[test]
    fn virtual_nodes_balance_the_keyspace() {
        let r = ring3();
        let mut counts = [0usize; 3];
        for key in 0..3000u64 {
            let p = r.primary(mix64(key)).unwrap();
            counts[(p.as_bytes()[0] - b'a') as usize] += 1;
        }
        for &c in &counts {
            // perfect balance would be 1000 each; 64 vnodes keep every
            // node within a factor ~2 of its fair share
            assert!((500..=1800).contains(&c), "imbalanced: {counts:?}");
        }
    }

    #[test]
    fn removing_a_node_only_moves_its_keys() {
        let full = ring3();
        let reduced = Ring::new(vec!["a".into(), "b".into()], 64, 0xC0FF_EE00_D15E_A5E5);
        let mut moved = 0usize;
        for key in 0..2000u64 {
            let before = full.primary(mix64(key)).unwrap();
            let after = reduced.primary(mix64(key)).unwrap();
            if before != "c" {
                // keys not owned by the removed node must not move
                assert_eq!(before, after, "key {key} moved needlessly");
            } else {
                moved += 1;
            }
            let _ = after;
        }
        // the removed node owned roughly a third
        assert!((400..=1100).contains(&moved), "moved {moved}");
    }

    #[test]
    fn seed_changes_the_placement() {
        let a = Ring::new(vec!["a".into(), "b".into(), "c".into()], 64, 1);
        let b = Ring::new(vec!["a".into(), "b".into(), "c".into()], 64, 2);
        let differs = (0..500u64).any(|k| a.primary(k) != b.primary(k));
        assert!(differs);
    }
}
