//! A small blocking client for the newline-JSON protocol, used by
//! `htd query`, the `service_load` bench and the integration tests.
//!
//! Beyond the one-request-one-response helpers, [`Client::send`] /
//! [`Client::recv`] split the cycle for *pipelined* use against the
//! event-loop front end: write a batch of requests without waiting,
//! then collect the responses (possibly out of order — match them by
//! the request id each send returned).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use htd_core::{HtdError, Json};
use htd_search::Objective;

use htd_query::AnswerMode;

use crate::protocol::{
    AnswerRequest, Command, InstanceFormat, Request, Response, SolveRequest, Status,
};

/// One connection to a running server.
pub struct Client {
    addr: String,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
    /// Set when an I/O error interrupted a request mid-frame: the socket
    /// may hold a half-written request or a half-read response, so it
    /// must not carry another frame. The next request reconnects.
    poisoned: bool,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7878`).
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            addr: addr.to_string(),
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            next_id: 0,
            poisoned: false,
        })
    }

    /// Like [`Client::connect`], but bounds the TCP handshake: the
    /// cluster's failure detector and forwarder must never hang on a
    /// dead peer for the kernel's default connect timeout (minutes).
    pub fn connect_timeout(addr: &str, timeout: std::time::Duration) -> std::io::Result<Client> {
        use std::net::ToSocketAddrs;
        let sockaddr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("{addr} resolves to no address"),
            )
        })?;
        let stream = TcpStream::connect_timeout(&sockaddr, timeout)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            addr: addr.to_string(),
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            next_id: 0,
            poisoned: false,
        })
    }

    /// Drops the existing socket and dials the server again. Any
    /// responses still in flight on the old connection are lost.
    pub fn reconnect(&mut self) -> std::io::Result<()> {
        let stream = TcpStream::connect(&self.addr)?;
        let _ = stream.set_nodelay(true);
        self.reader = BufReader::new(stream.try_clone()?);
        self.writer = stream;
        self.poisoned = false;
        Ok(())
    }

    /// `true` when the last request died mid-frame and the connection
    /// can no longer be trusted with another frame.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Bounds how long [`Client::recv`] (and the blocking helpers) wait
    /// for a response frame. `None` waits forever. The timeout does not
    /// survive [`Client::reconnect`].
    pub fn set_read_timeout(&mut self, timeout: Option<std::time::Duration>) {
        let _ = self.reader.get_ref().set_read_timeout(timeout);
    }

    fn heal(&mut self) -> Result<(), HtdError> {
        if self.poisoned {
            self.reconnect().map_err(|e| HtdError::Io(e.to_string()))?;
        }
        Ok(())
    }

    /// Writes one request frame without waiting for the response
    /// (pipelining). Responses arrive via [`Client::recv`], matched by
    /// the request's id — the event-loop server may complete them out
    /// of send order.
    pub fn send(&mut self, req: &Request) -> Result<(), HtdError> {
        self.heal()?;
        let line = req.to_json().to_string();
        self.writer
            .write_all(line.as_bytes())
            .and_then(|_| self.writer.write_all(b"\n"))
            .and_then(|_| self.writer.flush())
            .map_err(|e| {
                self.poisoned = true;
                HtdError::Io(e.to_string())
            })
    }

    /// Reads one response frame (blocking until the server writes one).
    pub fn recv(&mut self) -> Result<Response, HtdError> {
        let mut reply = String::new();
        self.reader.read_line(&mut reply).map_err(|e| {
            self.poisoned = true;
            HtdError::Io(e.to_string())
        })?;
        if reply.is_empty() {
            self.poisoned = true;
            return Err(HtdError::Io("server closed the connection".into()));
        }
        Response::from_json(&Json::parse(reply.trim())?)
    }

    /// Sends one request and reads one response line.
    pub fn request(&mut self, req: &Request) -> Result<Response, HtdError> {
        self.send(req)?;
        self.recv()
    }

    fn fresh_id(&mut self) -> String {
        self.next_id += 1;
        format!("c{}", self.next_id)
    }

    /// Builds a solve request with a fresh id (for pipelined batches);
    /// returns the request and its id.
    pub fn solve_request(
        &mut self,
        objective: Objective,
        format: InstanceFormat,
        instance: &str,
        deadline_ms: Option<u64>,
    ) -> (Request, String) {
        let id = self.fresh_id();
        (
            Request {
                id: Some(id.clone()),
                cmd: Command::Solve(SolveRequest {
                    objective,
                    format,
                    instance: instance.to_string(),
                    deadline_ms,
                    budget: None,
                    threads: None,
                    engines: None,
                    use_cache: true,
                    forwarded: false,
                }),
            },
            id,
        )
    }

    /// Solves `instance` with the given objective and deadline.
    pub fn solve(
        &mut self,
        objective: Objective,
        format: InstanceFormat,
        instance: &str,
        deadline_ms: Option<u64>,
    ) -> Result<Response, HtdError> {
        let (req, _) = self.solve_request(objective, format, instance, deadline_ms);
        self.request(&req)
    }

    /// Answers the conjunctive query `query` (text or JSON format of
    /// `htd-query`) in the given mode. The response's `cached` flag
    /// reports whether the decomposition came from the server's shape
    /// cache; the answer itself is always evaluated fresh.
    pub fn answer(
        &mut self,
        query: &str,
        mode: AnswerMode,
        limit: Option<u64>,
        deadline_ms: Option<u64>,
    ) -> Result<Response, HtdError> {
        let id = self.fresh_id();
        self.request(&Request {
            id: Some(id),
            cmd: Command::Answer(AnswerRequest {
                query: query.to_string(),
                mode,
                limit,
                deadline_ms,
                threads: None,
                engines: None,
                use_cache: true,
                forwarded: false,
            }),
        })
    }

    /// Pushes a verified certificate to a cluster peer (`put_cert`). The
    /// receiver re-verifies it with the oracle before admitting it; an
    /// `ok` status means it was accepted.
    pub fn put_cert(&mut self, push: crate::protocol::CertPush) -> Result<Response, HtdError> {
        let id = self.fresh_id();
        self.request(&Request {
            id: Some(id),
            cmd: Command::PutCert(push),
        })
    }

    /// Like [`Client::solve`], but retries backpressure rejections with
    /// jittered exponential backoff, honoring the server's
    /// `retry_after_ms` hint as the base delay. Non-`rejected` responses
    /// (including errors) return immediately; after `max_retries`
    /// rejections the last rejection is returned as-is so the caller
    /// still sees the backpressure signal.
    ///
    /// A transport error mid-request leaves a half-written frame (or a
    /// half-read response) on the socket, so the retry **reconnects
    /// first** — re-sending on the poisoned connection would splice two
    /// frames together and desynchronize every later exchange.
    pub fn solve_with_retry(
        &mut self,
        objective: Objective,
        format: InstanceFormat,
        instance: &str,
        deadline_ms: Option<u64>,
        max_retries: u32,
        seed: u64,
    ) -> Result<Response, HtdError> {
        let mut attempt = 0u32;
        loop {
            match self.solve(objective, format, instance, deadline_ms) {
                Ok(r) if r.status != Status::Rejected || attempt >= max_retries => return Ok(r),
                Ok(r) => {
                    let hint = std::time::Duration::from_millis(r.retry_after_ms.unwrap_or(50));
                    std::thread::sleep(htd_resilience::backoff_with_jitter(
                        hint,
                        attempt,
                        seed,
                        std::time::Duration::from_secs(2),
                    ));
                }
                Err(HtdError::Io(_)) if attempt < max_retries => {
                    // poisoned transport: dial fresh before re-sending
                    self.reconnect().map_err(|e| HtdError::Io(e.to_string()))?;
                    std::thread::sleep(htd_resilience::backoff_with_jitter(
                        std::time::Duration::from_millis(50),
                        attempt,
                        seed,
                        std::time::Duration::from_secs(2),
                    ));
                }
                Err(e) => return Err(e),
            }
            attempt += 1;
        }
    }

    /// Liveness probe; `Ok(())` iff the server answered `pong`.
    pub fn ping(&mut self) -> Result<(), HtdError> {
        let id = self.fresh_id();
        let r = self.request(&Request {
            id: Some(id),
            cmd: Command::Ping,
        })?;
        if r.status == Status::Pong {
            Ok(())
        } else {
            Err(HtdError::Io(format!(
                "unexpected status {}",
                r.status.name()
            )))
        }
    }

    /// Metrics snapshot as JSON.
    pub fn stats(&mut self) -> Result<Json, HtdError> {
        let id = self.fresh_id();
        let r = self.request(&Request {
            id: Some(id),
            cmd: Command::Stats,
        })?;
        r.stats
            .ok_or_else(|| HtdError::Io("stats response without snapshot".into()))
    }

    /// Asks the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), HtdError> {
        let id = self.fresh_id();
        self.request(&Request {
            id: Some(id),
            cmd: Command::Shutdown,
        })
        .map(|_| ())
    }
}
