//! A small blocking client for the newline-JSON protocol, used by
//! `htd query`, the `service_load` bench and the integration tests.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use htd_core::{HtdError, Json};
use htd_search::Objective;

use htd_query::AnswerMode;

use crate::protocol::{
    AnswerRequest, Command, InstanceFormat, Request, Response, SolveRequest, Status,
};

/// One connection to a running server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7878`).
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            next_id: 0,
        })
    }

    /// Sends one request and reads one response line.
    pub fn request(&mut self, req: &Request) -> Result<Response, HtdError> {
        let line = req.to_json().to_string();
        self.writer
            .write_all(line.as_bytes())
            .and_then(|_| self.writer.write_all(b"\n"))
            .and_then(|_| self.writer.flush())
            .map_err(|e| HtdError::Io(e.to_string()))?;
        let mut reply = String::new();
        self.reader
            .read_line(&mut reply)
            .map_err(|e| HtdError::Io(e.to_string()))?;
        if reply.is_empty() {
            return Err(HtdError::Io("server closed the connection".into()));
        }
        Response::from_json(&Json::parse(reply.trim())?)
    }

    fn fresh_id(&mut self) -> String {
        self.next_id += 1;
        format!("c{}", self.next_id)
    }

    /// Solves `instance` with the given objective and deadline.
    pub fn solve(
        &mut self,
        objective: Objective,
        format: InstanceFormat,
        instance: &str,
        deadline_ms: Option<u64>,
    ) -> Result<Response, HtdError> {
        let id = self.fresh_id();
        self.request(&Request {
            id: Some(id),
            cmd: Command::Solve(SolveRequest {
                objective,
                format,
                instance: instance.to_string(),
                deadline_ms,
                budget: None,
                threads: None,
                engines: None,
                use_cache: true,
            }),
        })
    }

    /// Answers the conjunctive query `query` (text or JSON format of
    /// `htd-query`) in the given mode. The response's `cached` flag
    /// reports whether the decomposition came from the server's shape
    /// cache; the answer itself is always evaluated fresh.
    pub fn answer(
        &mut self,
        query: &str,
        mode: AnswerMode,
        limit: Option<u64>,
        deadline_ms: Option<u64>,
    ) -> Result<Response, HtdError> {
        let id = self.fresh_id();
        self.request(&Request {
            id: Some(id),
            cmd: Command::Answer(AnswerRequest {
                query: query.to_string(),
                mode,
                limit,
                deadline_ms,
                threads: None,
                engines: None,
                use_cache: true,
            }),
        })
    }

    /// Like [`Client::solve`], but retries backpressure rejections with
    /// jittered exponential backoff, honoring the server's
    /// `retry_after_ms` hint as the base delay. Non-`rejected` responses
    /// (including errors) return immediately; after `max_retries`
    /// rejections the last rejection is returned as-is so the caller
    /// still sees the backpressure signal.
    pub fn solve_with_retry(
        &mut self,
        objective: Objective,
        format: InstanceFormat,
        instance: &str,
        deadline_ms: Option<u64>,
        max_retries: u32,
        seed: u64,
    ) -> Result<Response, HtdError> {
        let mut attempt = 0u32;
        loop {
            let r = self.solve(objective, format, instance, deadline_ms)?;
            if r.status != Status::Rejected || attempt >= max_retries {
                return Ok(r);
            }
            let hint = std::time::Duration::from_millis(r.retry_after_ms.unwrap_or(50));
            std::thread::sleep(htd_resilience::backoff_with_jitter(
                hint,
                attempt,
                seed,
                std::time::Duration::from_secs(2),
            ));
            attempt += 1;
        }
    }

    /// Liveness probe; `Ok(())` iff the server answered `pong`.
    pub fn ping(&mut self) -> Result<(), HtdError> {
        let id = self.fresh_id();
        let r = self.request(&Request {
            id: Some(id),
            cmd: Command::Ping,
        })?;
        if r.status == Status::Pong {
            Ok(())
        } else {
            Err(HtdError::Io(format!(
                "unexpected status {}",
                r.status.name()
            )))
        }
    }

    /// Metrics snapshot as JSON.
    pub fn stats(&mut self) -> Result<Json, HtdError> {
        let id = self.fresh_id();
        let r = self.request(&Request {
            id: Some(id),
            cmd: Command::Stats,
        })?;
        r.stats
            .ok_or_else(|| HtdError::Io("stats response without snapshot".into()))
    }

    /// Asks the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), HtdError> {
        let id = self.fresh_id();
        self.request(&Request {
            id: Some(id),
            cmd: Command::Shutdown,
        })
        .map(|_| ())
    }
}
