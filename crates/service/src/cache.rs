//! Sharded LRU result cache keyed by canonical form.
//!
//! The key is the full canonical byte serialization (relabeling-invariant;
//! see `htd_hypergraph::canonical`) plus the objective — the 64-bit
//! fingerprint only picks the shard and labels log lines, because FNV can
//! collide and a cache that aliases non-isomorphic instances would serve
//! wrong answers.
//!
//! Admission is *objective-aware*: an exact entry answers every later
//! request for the same instance/objective, while an inexact (anytime
//! bound) entry only answers requests that tolerate inexact results and
//! whose own budget would not have bought a better answer — i.e. requests
//! whose deadline is at most the effort already spent producing the entry.
//! An exact entry is never replaced by an inexact one; merging two inexact
//! entries keeps the tighter bounds.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use htd_search::Outcome;
use parking_lot::Mutex;

const SHARDS: usize = 16;
/// Fixed bookkeeping charge per entry (map + queue + struct overhead).
const ENTRY_OVERHEAD: usize = 160;

/// One cached solve result.
#[derive(Debug, Clone)]
pub struct Entry {
    /// The cached outcome (bounds, witness, accounting).
    pub outcome: Outcome,
    /// Milliseconds of solve effort that produced this entry; inexact
    /// entries only answer requests with deadlines ≤ this.
    pub effort_ms: u64,
}

impl Entry {
    fn cost(&self, key_len: usize) -> usize {
        let witness = self.outcome.witness.as_ref().map_or(0, |w| w.len() * 4);
        key_len + witness + self.outcome.per_engine.len() * 100 + ENTRY_OVERHEAD
    }

    /// Whether this entry may answer a request with the given tolerance.
    ///
    /// `deadline_ms` is the requester's budget (`None` = unbounded).
    pub fn answers(&self, accept_inexact: bool, deadline_ms: Option<u64>) -> bool {
        if self.outcome.exact {
            return true;
        }
        accept_inexact && deadline_ms.is_some_and(|d| d <= self.effort_ms)
    }
}

struct Stored {
    entry: Entry,
    seq: u64,
    cost: usize,
}

#[derive(Default)]
struct Shard {
    map: HashMap<Vec<u8>, Stored>,
    /// Lazy LRU: (seq, key) pushed on every touch; stale seqs skipped on
    /// eviction. Bounded by periodic compaction.
    queue: std::collections::VecDeque<(u64, Vec<u8>)>,
    bytes: usize,
    next_seq: u64,
}

impl Shard {
    fn touch(&mut self, key: &[u8]) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(s) = self.map.get_mut(key) {
            s.seq = seq;
        }
        self.queue.push_back((seq, key.to_vec()));
        if self.queue.len() > 4 * self.map.len().max(16) {
            let map = &self.map;
            self.queue
                .retain(|(q, k)| map.get(k).is_some_and(|s| s.seq == *q));
        }
    }

    fn evict_to(&mut self, budget: usize) -> u64 {
        let mut evicted = 0;
        while self.bytes > budget {
            match self.queue.pop_front() {
                Some((seq, key)) => {
                    match self.map.get(&key) {
                        Some(s) if s.seq == seq => {}
                        _ => continue, // stale queue record
                    }
                    if let Some(s) = self.map.remove(&key) {
                        self.bytes -= s.cost;
                        evicted += 1;
                    }
                }
                None => break,
            }
        }
        evicted
    }
}

/// The sharded cache. All operations are per-shard locked; shard choice
/// comes from the canonical fingerprint, so lookups on distinct instances
/// rarely contend.
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_budget: usize,
    entries: AtomicU64,
    bytes: AtomicU64,
    evictions: AtomicU64,
}

impl ResultCache {
    /// A cache bounded to roughly `capacity_bytes` of estimated entry cost.
    pub fn new(capacity_bytes: usize) -> ResultCache {
        ResultCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_budget: (capacity_bytes / SHARDS).max(ENTRY_OVERHEAD),
            entries: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, fingerprint: u64) -> &Mutex<Shard> {
        &self.shards[(fingerprint as usize) % SHARDS]
    }

    fn key(canonical: &[u8], objective_name: &str) -> Vec<u8> {
        let mut k = Vec::with_capacity(canonical.len() + objective_name.len() + 1);
        k.extend_from_slice(objective_name.as_bytes());
        k.push(0);
        k.extend_from_slice(canonical);
        k
    }

    /// Looks up an entry that may answer the request; touches LRU on hit.
    pub fn lookup(
        &self,
        fingerprint: u64,
        canonical: &[u8],
        objective_name: &str,
        accept_inexact: bool,
        deadline_ms: Option<u64>,
    ) -> Option<Entry> {
        let key = Self::key(canonical, objective_name);
        let mut shard = self.shard(fingerprint).lock();
        let hit = match shard.map.get(&key) {
            Some(s) if s.entry.answers(accept_inexact, deadline_ms) => Some(s.entry.clone()),
            _ => None,
        };
        if hit.is_some() {
            shard.touch(&key);
        }
        hit
    }

    /// Admits an outcome. Exact entries always win over inexact ones; two
    /// inexact entries merge keeping the tighter bounds and larger effort.
    pub fn admit(
        &self,
        fingerprint: u64,
        canonical: &[u8],
        objective_name: &str,
        outcome: &Outcome,
        effort_ms: u64,
    ) {
        let key = Self::key(canonical, objective_name);
        let mut shard = self.shard(fingerprint).lock();
        let merged = match shard.map.get(&key) {
            Some(existing) => {
                let old = &existing.entry;
                if old.outcome.exact && !outcome.exact {
                    // never downgrade an exact answer
                    None
                } else if !old.outcome.exact && !outcome.exact {
                    let mut m = if outcome.upper <= old.outcome.upper {
                        outcome.clone()
                    } else {
                        old.outcome.clone()
                    };
                    m.lower = m
                        .lower
                        .max(old.outcome.lower)
                        .max(outcome.lower)
                        .min(m.upper);
                    m.exact = m.lower == m.upper;
                    Some(Entry {
                        outcome: m,
                        effort_ms: effort_ms.max(old.effort_ms),
                    })
                } else {
                    Some(Entry {
                        outcome: outcome.clone(),
                        effort_ms,
                    })
                }
            }
            None => Some(Entry {
                outcome: outcome.clone(),
                effort_ms,
            }),
        };
        let Some(entry) = merged else { return };
        let cost = entry.cost(key.len());
        if cost > self.per_shard_budget {
            return; // single oversized entry: never admit
        }
        let seq = shard.next_seq;
        let old_cost = shard
            .map
            .insert(key.clone(), Stored { entry, seq, cost })
            .map(|s| s.cost);
        shard.bytes += cost;
        if let Some(c) = old_cost {
            shard.bytes -= c;
        } else {
            self.entries.fetch_add(1, Ordering::Relaxed);
        }
        shard.touch(&key);
        let budget = self.per_shard_budget;
        let evicted = shard.evict_to(budget);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            self.entries.fetch_sub(evicted, Ordering::Relaxed);
        }
        let bytes = shard.bytes;
        drop(shard);
        // the global byte gauge is advisory; recompute cheaply per admit
        let _ = bytes;
        self.bytes.store(
            self.shards
                .iter()
                .map(|s| s.lock().bytes as u64)
                .sum::<u64>(),
            Ordering::Relaxed,
        );
    }

    /// Number of live entries.
    pub fn entries(&self) -> u64 {
        self.entries.load(Ordering::Relaxed)
    }

    /// Approximate resident bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Total LRU evictions since start.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htd_search::{Objective, Outcome};
    use std::time::Duration;

    fn outcome(lower: u32, upper: u32, exact: bool) -> Outcome {
        Outcome {
            objective: Objective::Treewidth,
            lower,
            upper,
            exact,
            witness: None,
            nodes: 0,
            elapsed: Duration::from_millis(1),
            per_engine: Vec::new(),
            winner: None,
            time_to_first_upper: None,
            time_to_best_upper: None,
            cover_cache_hits: 0,
            cover_cache_misses: 0,
            degraded: false,
            skipped_engines: Vec::new(),
        }
    }

    #[test]
    fn exact_answers_everything_inexact_is_effort_gated() {
        let c = ResultCache::new(1 << 20);
        c.admit(7, b"graph-a", "tw", &outcome(3, 3, true), 50);
        // exact: answers bounded and unbounded, inexact-tolerant or not
        assert!(c.lookup(7, b"graph-a", "tw", false, None).is_some());
        assert!(c.lookup(7, b"graph-a", "tw", true, Some(1)).is_some());

        c.admit(9, b"graph-b", "tw", &outcome(2, 5, false), 200);
        // must accept inexact AND have deadline <= recorded effort
        assert!(c.lookup(9, b"graph-b", "tw", false, None).is_none());
        assert!(c.lookup(9, b"graph-b", "tw", true, None).is_none());
        assert!(c.lookup(9, b"graph-b", "tw", true, Some(500)).is_none());
        assert!(c.lookup(9, b"graph-b", "tw", true, Some(100)).is_some());
        // objective is part of the key
        assert!(c.lookup(9, b"graph-b", "ghw", true, Some(100)).is_none());
    }

    #[test]
    fn exact_never_downgraded_and_inexact_merges_tighter() {
        let c = ResultCache::new(1 << 20);
        c.admit(1, b"g", "tw", &outcome(4, 4, true), 10);
        c.admit(1, b"g", "tw", &outcome(1, 9, false), 999);
        let e = c.lookup(1, b"g", "tw", false, None).unwrap();
        assert!(e.outcome.exact);
        assert_eq!(e.outcome.upper, 4);

        c.admit(2, b"h", "tw", &outcome(2, 8, false), 100);
        c.admit(2, b"h", "tw", &outcome(3, 6, false), 50);
        let e = c.lookup(2, b"h", "tw", true, Some(20)).unwrap();
        assert_eq!((e.outcome.lower, e.outcome.upper), (3, 6));
        assert_eq!(e.effort_ms, 100);
    }

    #[test]
    fn lru_evicts_cold_entries_under_pressure() {
        // tiny cache: per-shard budget fits ~2 entries
        let c = ResultCache::new(SHARDS * 2 * (ENTRY_OVERHEAD + 16));
        // same shard (same fingerprint), distinct keys
        c.admit(3, b"one", "tw", &outcome(1, 1, true), 1);
        c.admit(3, b"two", "tw", &outcome(1, 1, true), 1);
        // touch "one" so "two" is the LRU victim
        assert!(c.lookup(3, b"one", "tw", false, None).is_some());
        c.admit(3, b"three", "tw", &outcome(1, 1, true), 1);
        assert!(c.evictions() >= 1);
        assert!(c.lookup(3, b"one", "tw", false, None).is_some());
        assert!(c.lookup(3, b"two", "tw", false, None).is_none());
        assert!(c.entries() <= 2);
    }
}
