//! htd-cluster: the fault-tolerant multi-node layer of `htd serve`.
//!
//! N peers share one [`Ring`] (same membership, vnodes and seed on every
//! node — placement is a pure function of configuration, there is no
//! placement state to replicate) over the canonical fingerprints the
//! cache and certificate store already key by. Each request is owned by
//! the first `R` distinct nodes clockwise from its fingerprint; a node
//! receiving a request it does not own forwards it to an owner over the
//! existing newline-JSON protocol, failing over down the replica list
//! and, as a last resort, solving locally.
//!
//! ## Failure detector
//!
//! A single *agent* thread per node probes every peer with a `ping` over
//! a timeout-bounded connection. Consecutive failures walk the peer
//! through `Alive → Suspect → Down` (`suspect_after` / `down_after`),
//! a success snaps it back to `Alive`, and probes of `Down` peers back
//! off to a multiple of the probe interval. A `pong` carrying
//! `draining: true` (or a 503 `/healthz`, which reports the same flag)
//! is *leave-intent*: the peer is marked `Leaving` and excluded from
//! forwarding without ever counting as a failure.
//!
//! ## Replication and hinted handoff
//!
//! Every locally verified, cacheable solve is pushed (`put_cert`) to the
//! other owners of its fingerprint. Deliveries to peers that are not
//! currently `Alive` wait in the same bounded outbox as *hints* and
//! flush when the peer recovers; a recovery additionally replays the
//! local certificate store and queues every record the recovered peer
//! owns (incremental key handoff). The receiver re-verifies every pushed
//! certificate with the `htd-check` oracle before admitting it — remote
//! peers are untrusted exactly like disk — so a Byzantine or corrupted
//! peer costs recomputation, never a wrong answer.
//!
//! ## Degradation ladder
//!
//! owner alive → forward; owner down → next replica; all owners down →
//! solve locally + queue a hint. Every rung is observable via the
//! `htd_cluster_*` series and `cluster.*` spans.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::client::Client;
use crate::metrics::Metrics;
use crate::protocol::{CertPush, Command, Request, Status};
use crate::ring::Ring;
use crate::store::{CertStore, StoreRecord};

/// Certificates waiting for delivery (replication + hints). Overflow
/// drops the oldest entry: every queued certificate also lives in the
/// local cache/store, so a drop costs the receiver a recomputation,
/// never an answer.
const OUTBOX_CAPACITY: usize = 1024;
/// Deliveries attempted per agent tick, bounding time away from probing.
const DELIVERIES_PER_TICK: usize = 32;
/// How long a failed delivery waits before the next attempt.
const REDELIVERY_BACKOFF: Duration = Duration::from_millis(1000);
/// Probe-interval multiplier for peers already marked `Down`.
const DOWN_PROBE_BACKOFF: u32 = 4;

/// One peer: stable id + dial address.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeerSpec {
    /// Stable node id (ring placement hashes this, not the address).
    pub id: String,
    /// `host:port` the peer's server listens on.
    pub addr: String,
}

/// Cluster configuration of one node. Every peer must agree on
/// `replication`, `vnodes` and `seed` or the rings diverge.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// This node's stable id.
    pub node_id: String,
    /// The *other* members (self is implied).
    pub peers: Vec<PeerSpec>,
    /// Owners per key (primary + R-1 replicas), clamped to cluster size.
    pub replication: usize,
    /// Virtual nodes per member on the ring.
    pub vnodes: usize,
    /// Ring placement seed.
    pub seed: u64,
    /// Pause between health probes of one peer.
    pub probe_interval_ms: u64,
    /// Connect + read timeout of one probe or forwarded certificate.
    pub probe_timeout_ms: u64,
    /// Consecutive probe failures before `Alive → Suspect`.
    pub suspect_after: u32,
    /// Consecutive probe failures before `Suspect → Down`.
    pub down_after: u32,
}

impl ClusterConfig {
    /// Production defaults for a node named `node_id` with the given
    /// peer list: R=2, 64 vnodes, 250 ms probes with a 500 ms timeout,
    /// suspect after 2 misses and down after 4.
    pub fn new(node_id: impl Into<String>, peers: Vec<PeerSpec>) -> ClusterConfig {
        ClusterConfig {
            node_id: node_id.into(),
            peers,
            replication: 2,
            vnodes: 64,
            seed: 0x6874_645f_636c_7573, // "htd_clus"
            probe_interval_ms: 250,
            probe_timeout_ms: 500,
            suspect_after: 2,
            down_after: 4,
        }
    }
}

/// Failure-detector verdict on one peer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PeerState {
    /// Probes answer; forward and replicate freely.
    Alive,
    /// `suspect_after` consecutive probe misses: still a forward target
    /// of last resort, no longer preferred.
    Suspect,
    /// `down_after` consecutive misses: excluded until a probe succeeds.
    Down,
    /// The peer reported a graceful drain (leave-intent): excluded from
    /// forwarding, but not a failure — it is finishing its own work.
    Leaving,
}

impl PeerState {
    /// Lowercase label for logs and metrics.
    pub fn name(self) -> &'static str {
        match self {
            PeerState::Alive => "alive",
            PeerState::Suspect => "suspect",
            PeerState::Down => "down",
            PeerState::Leaving => "leaving",
        }
    }
}

struct PeerStatus {
    addr: String,
    state: PeerState,
    /// Consecutive probe failures since the last success.
    failures: u32,
    next_probe: Instant,
    /// Chaos hook: probes and deliveries to a partitioned peer fail
    /// artificially without touching the network.
    partitioned: bool,
}

/// Why a certificate sits in the outbox: proactive replication to a
/// live replica, or a hint parked for a peer that was not reachable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DeliveryKind {
    Replicate,
    Handoff,
}

struct Delivery {
    target: String,
    push: CertPush,
    kind: DeliveryKind,
    not_before: Instant,
}

/// Shared cluster state of one node: the ring, the peer table the
/// failure detector maintains, and the bounded certificate outbox.
pub struct Cluster {
    cfg: ClusterConfig,
    ring: Ring,
    metrics: Arc<Metrics>,
    peers: Mutex<HashMap<String, PeerStatus>>,
    outbox: Mutex<VecDeque<Delivery>>,
    log: bool,
}

impl Cluster {
    /// Builds the node's cluster view. Peers start `Alive` (optimistic:
    /// forwarding works from the first request; the detector demotes
    /// unreachable peers within `suspect_after` probe intervals).
    pub fn new(cfg: ClusterConfig, metrics: Arc<Metrics>, log: bool) -> Cluster {
        let mut members: Vec<String> = cfg.peers.iter().map(|p| p.id.clone()).collect();
        members.push(cfg.node_id.clone());
        let ring = Ring::new(members, cfg.vnodes, cfg.seed);
        let now = Instant::now();
        let peers: HashMap<String, PeerStatus> = cfg
            .peers
            .iter()
            .map(|p| {
                (
                    p.id.clone(),
                    PeerStatus {
                        addr: p.addr.clone(),
                        state: PeerState::Alive,
                        failures: 0,
                        next_probe: now,
                        partitioned: false,
                    },
                )
            })
            .collect();
        metrics
            .cluster_ring_nodes
            .store(ring.len() as i64, Ordering::Relaxed);
        let cluster = Cluster {
            cfg,
            ring,
            metrics,
            peers: Mutex::new(peers),
            outbox: Mutex::new(VecDeque::new()),
            log,
        };
        cluster.refresh_gauges(&cluster.peers.lock());
        cluster
    }

    /// This node's id.
    pub fn node_id(&self) -> &str {
        &self.cfg.node_id
    }

    /// The shared ring.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// The configuration the node was built with.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// `true` iff this node is among the `R` owners of `key` — such
    /// requests are served locally, everything else is forwarded.
    pub fn owns(&self, key: u64) -> bool {
        self.ring
            .is_owner(&self.cfg.node_id, key, self.cfg.replication)
    }

    /// Forward targets for a non-owned `key`, best first: the owners in
    /// ring order, `Alive` before `Suspect`, `Down`/`Leaving` skipped.
    /// Empty means every owner is unusable — solve locally.
    pub fn forward_candidates(&self, key: u64) -> Vec<(String, String)> {
        let peers = self.peers.lock();
        let mut alive = Vec::new();
        let mut suspect = Vec::new();
        for id in self.ring.owners(key, self.cfg.replication) {
            if id == self.cfg.node_id {
                continue;
            }
            if let Some(p) = peers.get(id) {
                match p.state {
                    PeerState::Alive => alive.push((id.to_string(), p.addr.clone())),
                    PeerState::Suspect => suspect.push((id.to_string(), p.addr.clone())),
                    PeerState::Down | PeerState::Leaving => {}
                }
            }
        }
        alive.extend(suspect);
        alive
    }

    /// The current failure-detector state of `id` (`None`: not a peer).
    pub fn peer_state(&self, id: &str) -> Option<PeerState> {
        self.peers.lock().get(id).map(|p| p.state)
    }

    /// All peers with their states, sorted by id (for `/healthz`).
    pub fn peer_states(&self) -> Vec<(String, PeerState)> {
        let peers = self.peers.lock();
        let mut v: Vec<(String, PeerState)> =
            peers.iter().map(|(id, p)| (id.clone(), p.state)).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Chaos hook: while set, every probe of and delivery to `id` fails
    /// without touching the network — from this node's point of view the
    /// peer is partitioned away.
    pub fn set_partitioned(&self, id: &str, partitioned: bool) {
        if let Some(p) = self.peers.lock().get_mut(id) {
            p.partitioned = partitioned;
        }
    }

    pub(crate) fn is_peer_partitioned(&self, id: &str) -> bool {
        self.peers.lock().get(id).is_some_and(|p| p.partitioned)
    }

    /// Queues `push` for every *other* owner of `fingerprint`: live
    /// replicas get a replication push, unreachable owners a hint that
    /// flushes on recovery. Called after every verified cacheable solve
    /// (which covers both steady-state replication and the local-fallback
    /// handoff — the owners of a non-owned key are exactly the nodes the
    /// certificate must reach).
    pub fn replicate(&self, fingerprint: u64, push: &CertPush) {
        let peers = self.peers.lock();
        let mut outbox = self.outbox.lock();
        for id in self.ring.owners(fingerprint, self.cfg.replication) {
            if id == self.cfg.node_id {
                continue;
            }
            let kind = match peers.get(id).map(|p| p.state) {
                Some(PeerState::Alive) => DeliveryKind::Replicate,
                _ => DeliveryKind::Handoff,
            };
            if kind == DeliveryKind::Handoff {
                self.metrics
                    .cluster_handoffs_queued
                    .fetch_add(1, Ordering::Relaxed);
            }
            if outbox.len() >= OUTBOX_CAPACITY {
                outbox.pop_front();
            }
            outbox.push_back(Delivery {
                target: id.to_string(),
                push: push.clone(),
                kind,
                not_before: Instant::now(),
            });
        }
    }

    /// Queues hints for every store record the recovered `peer` owns
    /// (incremental key handoff after a membership change heals).
    fn queue_handoff(&self, peer: &str, records: &[StoreRecord]) {
        let _sp = htd_trace::span!("cluster.handoff");
        let mut queued = 0u64;
        let mut outbox = self.outbox.lock();
        for rec in records {
            if !self
                .ring
                .is_owner(peer, rec.fingerprint, self.cfg.replication)
            {
                continue;
            }
            if outbox.len() >= OUTBOX_CAPACITY {
                outbox.pop_front();
            }
            outbox.push_back(Delivery {
                target: peer.to_string(),
                push: CertPush {
                    objective: htd_search::Objective::from_name(rec.objective)
                        .unwrap_or(htd_search::Objective::Treewidth),
                    format: rec.format,
                    instance: rec.instance.clone(),
                    fingerprint_hex: format!("{:016x}", rec.fingerprint),
                    effort_ms: rec.effort_ms,
                    outcome: rec.outcome.clone(),
                    from: Some(self.cfg.node_id.clone()),
                },
                kind: DeliveryKind::Handoff,
                not_before: Instant::now(),
            });
            queued += 1;
        }
        self.metrics
            .cluster_handoffs_queued
            .fetch_add(queued, Ordering::Relaxed);
        self.log(format_args!(
            "handoff queued to recovered peer={peer} records={queued}"
        ));
    }

    /// Peers whose probe is due, with their addresses.
    fn due_probes(&self, now: Instant) -> Vec<(String, String)> {
        self.peers
            .lock()
            .iter()
            .filter(|(_, p)| now >= p.next_probe)
            .map(|(id, p)| (id.clone(), p.addr.clone()))
            .collect()
    }

    /// Applies one probe result to the state machine. Returns `true`
    /// when the peer just *recovered* (was `Down`, is `Alive` again) so
    /// the agent can start a handoff.
    fn note_probe(&self, id: &str, result: Result<bool, ()>, now: Instant) -> bool {
        let mut peers = self.peers.lock();
        let Some(p) = peers.get_mut(id) else {
            return false;
        };
        let before = p.state;
        let mut recovered = false;
        match result {
            Ok(draining) => {
                p.failures = 0;
                p.state = if draining {
                    PeerState::Leaving
                } else {
                    PeerState::Alive
                };
                if before == PeerState::Down && p.state == PeerState::Alive {
                    recovered = true;
                }
                p.next_probe = now + Duration::from_millis(self.cfg.probe_interval_ms);
            }
            Err(()) => {
                self.metrics
                    .cluster_probe_failures
                    .fetch_add(1, Ordering::Relaxed);
                p.failures = p.failures.saturating_add(1);
                if p.failures >= self.cfg.down_after {
                    p.state = PeerState::Down;
                } else if p.failures >= self.cfg.suspect_after {
                    p.state = PeerState::Suspect;
                }
                // back off on peers already declared down so a long
                // outage does not burn a probe slot every interval
                let backoff = if p.state == PeerState::Down {
                    DOWN_PROBE_BACKOFF
                } else {
                    1
                };
                p.next_probe = now + Duration::from_millis(self.cfg.probe_interval_ms) * backoff;
            }
        }
        let after = p.state;
        if before != after {
            self.refresh_gauges(&peers);
            drop(peers);
            self.log(format_args!(
                "peer={id} {} -> {}",
                before.name(),
                after.name()
            ));
        }
        recovered
    }

    /// Pops the first outbox delivery whose target is `Alive` and whose
    /// backoff has passed.
    fn take_delivery(&self, now: Instant) -> Option<(Delivery, String)> {
        let peers = self.peers.lock();
        let mut outbox = self.outbox.lock();
        let idx = outbox.iter().position(|d| {
            now >= d.not_before
                && peers
                    .get(&d.target)
                    .is_some_and(|p| p.state == PeerState::Alive)
        })?;
        let d = outbox.remove(idx)?;
        let addr = peers.get(&d.target)?.addr.clone();
        Some((d, addr))
    }

    fn requeue(&self, mut d: Delivery, now: Instant) {
        // a failed replication becomes a hint: it now waits for the
        // peer rather than racing a dead connection
        d.kind = DeliveryKind::Handoff;
        d.not_before = now + REDELIVERY_BACKOFF;
        let mut outbox = self.outbox.lock();
        if outbox.len() >= OUTBOX_CAPACITY {
            outbox.pop_front();
        }
        outbox.push_back(d);
    }

    /// Certificates currently waiting in the outbox.
    pub fn outbox_len(&self) -> usize {
        self.outbox.lock().len()
    }

    fn refresh_gauges(&self, peers: &HashMap<String, PeerStatus>) {
        let count = |s: PeerState| peers.values().filter(|p| p.state == s).count() as i64;
        self.metrics
            .cluster_peers_alive
            .store(count(PeerState::Alive), Ordering::Relaxed);
        self.metrics
            .cluster_peers_suspect
            .store(count(PeerState::Suspect), Ordering::Relaxed);
        self.metrics
            .cluster_peers_down
            .store(count(PeerState::Down), Ordering::Relaxed);
        self.metrics
            .cluster_peers_leaving
            .store(count(PeerState::Leaving), Ordering::Relaxed);
    }

    fn log(&self, line: std::fmt::Arguments<'_>) {
        if self.log {
            eprintln!("[htd-cluster {}] {line}", self.cfg.node_id);
        }
    }

    /// One failure-detector + delivery pass; the agent thread calls this
    /// in a loop. Split out so tests can drive the detector without
    /// threads or sleeps.
    pub fn tick(&self, store: Option<&CertStore>) {
        let now = Instant::now();
        let timeout = Duration::from_millis(self.cfg.probe_timeout_ms);
        for (id, addr) in self.due_probes(now) {
            let _sp = htd_trace::span!("cluster.probe");
            let result = if self.is_peer_partitioned(&id) {
                Err(())
            } else {
                probe_peer(&addr, timeout)
            };
            if self.note_probe(&id, result, Instant::now()) {
                // recovery: replay the local store and hand the peer
                // every verified record it owns
                if let Some(store) = store {
                    match store.replay() {
                        Ok(records) => self.queue_handoff(&id, &records),
                        Err(e) => self.log(format_args!("store replay for handoff failed: {e}")),
                    }
                }
            }
        }
        for _ in 0..DELIVERIES_PER_TICK {
            let now = Instant::now();
            let Some((d, addr)) = self.take_delivery(now) else {
                break;
            };
            let _sp = htd_trace::span!("cluster.push");
            let delivered = !self.is_peer_partitioned(&d.target)
                && push_cert(&addr, &d.push, timeout).is_some_and(|accepted| {
                    if !accepted {
                        // the receiver's oracle rejected the claim: it
                        // recomputes on demand; re-sending cannot help
                        self.log(format_args!(
                            "peer={} rejected certificate fp={}",
                            d.target, d.push.fingerprint_hex
                        ));
                    }
                    true
                });
            if delivered {
                match d.kind {
                    DeliveryKind::Replicate => self
                        .metrics
                        .cluster_replications
                        .fetch_add(1, Ordering::Relaxed),
                    DeliveryKind::Handoff => self
                        .metrics
                        .cluster_handoffs_delivered
                        .fetch_add(1, Ordering::Relaxed),
                };
            } else {
                self.requeue(d, now);
            }
        }
    }
}

/// One health probe: dial with a timeout, `ping`, read the `pong`'s
/// `draining` flag. `Ok(draining)` on any well-formed pong.
fn probe_peer(addr: &str, timeout: Duration) -> Result<bool, ()> {
    let mut client = Client::connect_timeout(addr, timeout).map_err(|_| ())?;
    client.set_read_timeout(Some(timeout));
    let r = client
        .request(&Request {
            id: Some("probe".into()),
            cmd: Command::Ping,
        })
        .map_err(|_| ())?;
    if r.status == Status::Pong {
        Ok(r.draining)
    } else {
        Err(())
    }
}

/// Delivers one certificate. `Some(accepted)` when the peer answered at
/// all (`accepted` = oracle admitted it); `None` on transport failure.
fn push_cert(addr: &str, push: &CertPush, timeout: Duration) -> Option<bool> {
    let mut client = Client::connect_timeout(addr, timeout).ok()?;
    // verification re-solves nothing but re-checks a certificate, which
    // on large instances takes real time: give the read some slack
    client.set_read_timeout(Some(timeout * 4));
    let r = client
        .request(&Request {
            id: Some("push".into()),
            cmd: Command::PutCert(push.clone()),
        })
        .ok()?;
    Some(r.status == Status::Ok)
}

/// The cluster agent: probes peers, flushes the outbox, triggers
/// recovery handoffs. One thread per node, spawned by the server.
pub(crate) fn run_agent(cluster: &Cluster, store: Option<&CertStore>, shutdown: &AtomicBool) {
    htd_trace::set_worker("cluster");
    while !shutdown.load(Ordering::SeqCst) {
        cluster.tick(store);
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_cluster(peers: Vec<PeerSpec>) -> Cluster {
        let mut cfg = ClusterConfig::new("self", peers);
        cfg.probe_interval_ms = 1;
        Cluster::new(cfg, Arc::new(Metrics::new()), false)
    }

    fn peer(id: &str) -> PeerSpec {
        PeerSpec {
            id: id.into(),
            addr: format!("127.0.0.1:1{}", id.len()),
        }
    }

    #[test]
    fn detector_walks_suspect_then_down_then_recovers() {
        let c = test_cluster(vec![peer("a"), peer("bb")]);
        assert_eq!(c.peer_state("a"), Some(PeerState::Alive));
        let now = Instant::now();
        c.note_probe("a", Err(()), now);
        assert_eq!(c.peer_state("a"), Some(PeerState::Alive));
        c.note_probe("a", Err(()), now);
        assert_eq!(c.peer_state("a"), Some(PeerState::Suspect));
        c.note_probe("a", Err(()), now);
        c.note_probe("a", Err(()), now);
        assert_eq!(c.peer_state("a"), Some(PeerState::Down));
        assert_eq!(c.metrics.cluster_peers_down.load(Ordering::Relaxed), 1);
        // success from Down = recovery
        assert!(c.note_probe("a", Ok(false), now));
        assert_eq!(c.peer_state("a"), Some(PeerState::Alive));
        // success from Alive is not a recovery
        assert!(!c.note_probe("a", Ok(false), now));
        assert_eq!(c.metrics.cluster_probe_failures.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn a_draining_pong_is_leave_intent_not_a_failure() {
        let c = test_cluster(vec![peer("a")]);
        assert!(!c.note_probe("a", Ok(true), Instant::now()));
        assert_eq!(c.peer_state("a"), Some(PeerState::Leaving));
        assert_eq!(c.metrics.cluster_peers_leaving.load(Ordering::Relaxed), 1);
        assert_eq!(c.metrics.cluster_probe_failures.load(Ordering::Relaxed), 0);
        // leaving peers are not forward candidates
        for key in 0..64 {
            assert!(c.forward_candidates(key).is_empty());
        }
    }

    #[test]
    fn forward_candidates_prefer_alive_over_suspect_and_skip_down() {
        let c = test_cluster(vec![peer("a"), peer("bb"), peer("ccc")]);
        // find a key owned by two remote peers
        let key = (0..10_000u64)
            .find(|&k| !c.owns(k) && c.forward_candidates(k).len() == 2)
            .expect("some key has two remote owners");
        let initial = c.forward_candidates(key);
        let first = initial[0].0.clone();
        let now = Instant::now();
        for _ in 0..c.cfg.suspect_after {
            c.note_probe(&first, Err(()), now);
        }
        let after = c.forward_candidates(key);
        assert_eq!(after.len(), 2);
        assert_eq!(after.last().unwrap().0, first, "suspect sorts last");
        for _ in 0..c.cfg.down_after {
            c.note_probe(&first, Err(()), now);
        }
        assert_eq!(c.forward_candidates(key).len(), 1, "down is skipped");
    }

    #[test]
    fn replication_queues_for_remote_owners_only() {
        let c = test_cluster(vec![peer("a"), peer("bb")]);
        let push = CertPush {
            objective: htd_search::Objective::Treewidth,
            format: crate::protocol::InstanceFormat::PaceGr,
            instance: String::new(),
            fingerprint_hex: "0".repeat(16),
            effort_ms: 1,
            outcome: htd_search::Outcome {
                objective: htd_search::Objective::Treewidth,
                lower: 1,
                upper: 1,
                exact: true,
                witness: None,
                nodes: 0,
                elapsed: Duration::ZERO,
                per_engine: Vec::new(),
                winner: None,
                time_to_first_upper: None,
                time_to_best_upper: None,
                cover_cache_hits: 0,
                cover_cache_misses: 0,
                degraded: false,
                skipped_engines: Vec::new(),
            },
            from: Some("self".into()),
        };
        // R=2: exactly one remote owner gets a copy whether or not we
        // own the key ourselves
        c.replicate(7, &push);
        let remote_owners = c
            .ring()
            .owners(7, 2)
            .iter()
            .filter(|&&o| o != "self")
            .count();
        assert_eq!(c.outbox_len(), remote_owners);
    }

    #[test]
    fn partitioned_peers_fail_probes_without_a_network() {
        let c = test_cluster(vec![peer("a")]);
        c.set_partitioned("a", true);
        assert!(c.is_peer_partitioned("a"));
        // a tick probes the partitioned peer and records the failure
        // without dialing the (bogus) address
        c.tick(None);
        assert!(c.metrics.cluster_probe_failures.load(Ordering::Relaxed) >= 1);
        c.set_partitioned("a", false);
        assert!(!c.is_peer_partitioned("a"));
    }
}
