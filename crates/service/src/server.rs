//! The decomposition server: request lifecycle, worker pool, deadlines,
//! backpressure and graceful shutdown.
//!
//! ## Lifecycle of a solve request
//!
//! 1. A connection thread parses the line, builds the [`Problem`] and the
//!    canonical form of the (normalized) instance.
//! 2. Cache lookup — a hit answers immediately without queueing.
//! 3. The job enters the bounded work queue; a full queue means an
//!    immediate `rejected` response with `retry_after_ms` (backpressure)
//!    rather than unbounded buffering.
//! 4. A worker pops the job. If its deadline already expired in the queue
//!    the job is dropped with a `timeout` response (cooperative
//!    cancellation of evicted requests); otherwise the remaining time is
//!    mapped onto the solver's [`SearchConfig`] budget and a shared
//!    [`Incumbent`] is registered with the deadline watchdog, which
//!    cancels it the moment the deadline passes — so a cold solve never
//!    overshoots its deadline by more than the engines' cancellation
//!    granularity (a few milliseconds).
//! 5. The result is admitted to the cache and the response sent back on
//!    the requesting connection.
//!
//! `answer` (conjunctive-query) requests ride the same queue, deadline
//! watchdog and backpressure: the connection thread parses the query,
//! a worker runs the `htd-query` pipeline, and a per-server
//! [`ShapeCache`] lets repeated query *shapes* skip decomposition while
//! every answer is still evaluated against its own relations.
//!
//! ## Graceful shutdown
//!
//! `shutdown` (or SIGINT/SIGTERM under [`run_until_shutdown`]) flips the
//! server into *draining*: new solve requests are refused with
//! `shutting_down`, queued and in-flight work runs to completion, probes
//! (`/healthz`, `/metrics`, `ping`, `stats`) keep answering, and once the
//! queue is empty and no solve is in flight the workers, watchdog and
//! acceptor exit and a final metrics summary is flushed to the log.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use htd_core::{HtdError, Json};
use htd_hypergraph::canonical::canonical_form;
use htd_query::{parse_query, AnswerMode, AnswerOptions, FileAccess, Query, ShapeCache};
use htd_resilience::{
    quarantined, CircuitBreaker, Fault, FaultInjector, FaultPlan, InjectedFaults, MemoryBudget,
};
use htd_search::{solve, Engine, Incumbent, Problem, SearchConfig};
use parking_lot::Mutex;

use crate::cache::ResultCache;
use crate::client::Client;
use crate::cluster::{Cluster, ClusterConfig};
use crate::metrics::Metrics;
use crate::protocol::{
    parse_problem, AnswerRequest, CertPush, Command, InstanceFormat, Request, Response,
    SolveRequest, Status,
};
use crate::store::{CertStore, StoreRecord};

/// Slack subtracted from the remaining deadline when budgeting a solve,
/// covering admission/serialization overhead around the engine run.
const DEADLINE_SLACK: Duration = Duration::from_millis(10);
/// How often the watchdog scans for expired deadlines.
const WATCHDOG_PERIOD: Duration = Duration::from_millis(2);
/// Extra time a connection waits for its worker beyond the deadline.
pub(crate) const REPLY_GRACE: Duration = Duration::from_secs(2);
/// Largest accepted request frame. A line still unfinished at this many
/// bytes gets a structured protocol error instead of buffering without
/// bound, and the connection is closed (the remainder of the oversized
/// frame is never read).
pub(crate) const MAX_FRAME: u64 = 8 << 20;
/// Largest serialized response written back on a connection; anything
/// bigger is replaced by a structured internal error.
pub(crate) const MAX_RESPONSE: usize = 32 << 20;
/// Query shapes kept in the answer shape cache. Each entry is one
/// elimination ordering (a few dozen bytes), so the cache is cheap; the
/// bound only guards against unbounded shape churn.
const SHAPE_CACHE_CAPACITY: usize = 1024;
/// Server-side cap on enumerated answer tuples when the request names no
/// limit, keeping one answer under [`MAX_RESPONSE`].
const DEFAULT_ANSWER_LIMIT: u64 = 100_000;

/// Configuration of a server instance.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Listen address, e.g. `127.0.0.1:7878` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads solving requests.
    pub threads: usize,
    /// Result-cache capacity in mebibytes.
    pub cache_mb: usize,
    /// Bounded work-queue capacity; beyond it requests are rejected.
    pub queue_capacity: usize,
    /// Deadline applied to requests that do not carry one.
    pub default_deadline_ms: u64,
    /// Emit one structured log line per request to stderr.
    pub log: bool,
    /// Debug option: oracle-verify every solved outcome with `htd-check`
    /// before admitting it to the result cache. An outcome that fails the
    /// independent re-verification is still returned to the client (marked
    /// in the log and counted in `htd_oracle_failures_total`) but never
    /// cached, so one bad solve cannot poison repeat queries.
    pub verify_responses: bool,
    /// Per-request memory budget in mebibytes; solves that outgrow it
    /// degrade to their best anytime bounds (`outcome.degraded = true`)
    /// instead of growing without bound. `None` = ungoverned.
    pub memory_mb: Option<u64>,
    /// Deterministic fault injection: each solve consults the plan and may
    /// get a panicking worker, an injected stall, or an allocation-starved
    /// budget. `None` (production) injects nothing.
    pub chaos: Option<FaultPlan>,
    /// Consecutive panicked reports after which an engine's circuit
    /// breaker opens and the engine is benched from the lineup.
    pub breaker_threshold: u32,
    /// How long a benched engine stays out before the breaker half-opens
    /// and lets one probe solve try it again.
    pub breaker_probe_ms: u64,
    /// Directory of the persistent verified certificate store. `Some`
    /// opens (creating if absent) `store.log` under it, re-verifies every
    /// record with the `htd-check` oracle, warms the result cache with
    /// the survivors, and appends every new cacheable solve — so a
    /// restarted node serves warm without ever trusting disk.
    pub store_dir: Option<PathBuf>,
    /// Serve connections from the readiness-based non-blocking event
    /// loop ([`crate::event_loop`]) instead of a thread per connection.
    /// The event loop additionally supports pipelined batches: many
    /// requests in flight per connection, responses matched by id.
    pub event_loop: bool,
    /// Cluster membership: `Some` makes this node one of N peers sharding
    /// the keyspace over a consistent-hash ring (see [`crate::cluster`]).
    pub cluster: Option<ClusterConfig>,
    /// Bind with `SO_REUSEADDR` so a restarted node can reclaim its port
    /// immediately (lingering connections of a killed predecessor
    /// otherwise hold it in `TIME_WAIT`). Off by default: in production
    /// the guard against two servers on one port is worth the wait.
    pub reuse_addr: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:7878".into(),
            threads: 2,
            cache_mb: 64,
            queue_capacity: 64,
            default_deadline_ms: 10_000,
            log: false,
            verify_responses: false,
            memory_mb: None,
            chaos: None,
            breaker_threshold: 3,
            breaker_probe_ms: 500,
            store_dir: None,
            event_loop: false,
            cluster: None,
            reuse_addr: false,
        }
    }
}

/// Where a worker's finished [`Response`] goes: back to a blocking
/// connection thread over a channel, or into the event loop's completion
/// queue to be written when the connection is next writable.
pub(crate) enum ReplySink {
    /// Thread-per-connection path: the connection thread blocks on the
    /// receiving end with `recv_timeout(deadline + REPLY_GRACE)`.
    Channel(mpsc::Sender<Response>),
    /// Event-loop path: push the response, tagged with the connection id
    /// and per-connection token, and wake the loop.
    Loop {
        conn: u64,
        token: u64,
        completions: Arc<crate::event_loop::Completions>,
    },
}

impl ReplySink {
    pub(crate) fn send(&self, response: Response) {
        match self {
            // a dropped receiver means the connection went away; the
            // result is already cached, so losing the reply is harmless
            ReplySink::Channel(tx) => {
                let _ = tx.send(response);
            }
            ReplySink::Loop {
                conn,
                token,
                completions,
            } => completions.push(*conn, *token, response),
        }
    }
}

/// What admission decided about a request, before any worker ran.
// `Ready` dwarfs `Queued`, but an `Admission` lives only for the few
// instructions between `admit_request` and the caller's `match`; boxing
// would put an allocation on the cache-hit fast path for nothing.
#[allow(clippy::large_enum_variant)]
pub(crate) enum Admission {
    /// Answered on the spot: probe, cache hit, parse error, backpressure
    /// rejection, or drain refusal.
    Ready(Response),
    /// Queued for a worker; the response will arrive on the job's
    /// [`ReplySink`] no later than `deadline + REPLY_GRACE`.
    Queued {
        id: Option<String>,
        fingerprint: Option<String>,
        deadline: Instant,
        received: Instant,
    },
}

/// A unit of queued work: a decomposition solve or a conjunctive-query
/// answer. Both share the bounded queue, the deadline watchdog and the
/// backpressure machinery.
struct Job {
    id: Option<String>,
    work: Work,
    deadline: Instant,
    deadline_ms: u64,
    threads: usize,
    engines: Option<Vec<Engine>>,
    received: Instant,
    /// When the job entered the work queue; the pop-to-push delta is the
    /// queue-wait component of the latency split.
    enqueued: Instant,
    reply: ReplySink,
}

/// What a queued job actually computes.
enum Work {
    Solve(SolveWork),
    Answer(AnswerWork),
    /// Cluster mode: the request belongs to another node's shard; try
    /// the owners in order, fall back to computing locally.
    Forward(ForwardWork),
    /// Cluster mode: a peer pushed a certificate; re-verify it with the
    /// oracle before admitting it to cache and store.
    PutCert(CertPush),
}

struct ForwardWork {
    /// The command re-sent to the owner, its `forwarded` flag set so the
    /// receiver always computes locally (one hop, no forwarding loops).
    cmd: Command,
    /// Owner candidates in preference order (`(id, addr)`; ring order,
    /// alive before suspect, down/leaving excluded).
    candidates: Vec<(String, String)>,
    /// The local fallback when every owner is unusable.
    local: Box<Work>,
}

struct SolveWork {
    problem: Problem,
    fingerprint: u64,
    fingerprint_hex: String,
    canonical: Vec<u8>,
    canonical_complete: bool,
    objective_name: &'static str,
    budget: Option<u64>,
    /// The original instance text + format, kept so a cacheable outcome
    /// can be appended to the certificate store (whose loader re-parses
    /// the instance to re-verify the certificate from scratch). Empty
    /// when no store is configured.
    instance: String,
    format: InstanceFormat,
}

struct AnswerWork {
    query: Query,
    mode: AnswerMode,
    limit: Option<u64>,
    use_shape_cache: bool,
    /// Microseconds the connection thread spent parsing the query,
    /// forwarded into the pipeline's `parse` stage event.
    parse_us: u64,
}

impl Work {
    /// Short label for log lines (the solve objective, or `answer`).
    fn label(&self) -> &'static str {
        match self {
            Work::Solve(w) => w.objective_name,
            Work::Answer(_) => "answer",
            Work::Forward(_) => "forward",
            Work::PutCert(_) => "put_cert",
        }
    }

    /// The instance fingerprint when already known: solves canonicalize
    /// on admission, answers learn theirs from the pipeline afterwards.
    fn fingerprint_hex(&self) -> Option<&str> {
        match self {
            Work::Solve(w) => Some(&w.fingerprint_hex),
            Work::Answer(_) => None,
            Work::Forward(f) => f.local.fingerprint_hex(),
            Work::PutCert(p) => Some(&p.fingerprint_hex),
        }
    }
}

/// Bounded MPMC queue on std `Mutex` + `Condvar` (the vendored
/// `parking_lot` has no condvar).
struct WorkQueue {
    jobs: StdMutex<VecDeque<Job>>,
    ready: Condvar,
    capacity: usize,
}

impl WorkQueue {
    fn new(capacity: usize) -> WorkQueue {
        WorkQueue {
            jobs: StdMutex::new(VecDeque::new()),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues unless full; never blocks the submitting connection.
    /// Returns `false` (dropping the job) when the queue is at capacity.
    /// A poisoned mutex (a thread panicked while holding it) is recovered
    /// rather than propagated: the queue of `Job`s has no invariant a
    /// half-finished critical section can break, and one panicked worker
    /// must not take the whole intake path down with it.
    fn try_push(&self, job: Job) -> bool {
        let mut q = self.jobs.lock().unwrap_or_else(|p| p.into_inner());
        if q.len() >= self.capacity {
            return false;
        }
        q.push_back(job);
        drop(q);
        self.ready.notify_one();
        true
    }

    fn pop_timeout(&self, timeout: Duration) -> Option<Job> {
        let mut q = self.jobs.lock().unwrap_or_else(|p| p.into_inner());
        if q.is_empty() {
            q = match self.ready.wait_timeout(q, timeout) {
                Ok((guard, _)) => guard,
                Err(p) => p.into_inner().0,
            };
        }
        q.pop_front()
    }

    fn len(&self) -> usize {
        self.jobs.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    fn wake_all(&self) {
        self.ready.notify_all();
    }
}

/// State shared by every thread of one server.
pub(crate) struct Inner {
    opts: ServeOptions,
    cache: ResultCache,
    /// Decompositions shared across `answer` requests of the same query
    /// *shape* (canonical hypergraph): repeated shapes with different
    /// relation data skip decomposition entirely. Only the decomposition
    /// is shared — answers are always evaluated against the request's
    /// own data.
    shapes: Arc<ShapeCache>,
    pub(crate) metrics: Arc<Metrics>,
    queue: WorkQueue,
    /// Draining: refuse new solves, finish queued + in-flight work.
    draining: AtomicBool,
    /// Final stop: workers/watchdog/acceptor exit.
    pub(crate) shutdown: AtomicBool,
    /// Abrupt stop ([`Server::kill`]): exit without draining, dropping
    /// queued work and open connections — the in-process analog of
    /// `kill -9`, for crash testing.
    pub(crate) killed: AtomicBool,
    /// Cluster membership + failure detector (`opts.cluster`).
    pub(crate) cluster: Option<Arc<Cluster>>,
    /// In-flight deadline registry scanned by the watchdog.
    registry: Mutex<Vec<(Instant, Arc<Incumbent>)>>,
    pub(crate) conn_seq: AtomicU64,
    /// Seeded fault injector (`opts.chaos`); `None` in production.
    injector: Option<Arc<FaultInjector>>,
    /// One circuit breaker per portfolio engine: engines whose reports
    /// keep coming back `panicked` are benched from the lineup until the
    /// probe interval passes.
    breakers: Vec<(Engine, CircuitBreaker)>,
    /// Persistent verified certificate store (`opts.store_dir`); `None`
    /// when the server runs memory-only.
    store: Option<CertStore>,
}

impl Inner {
    pub(crate) fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Builds the engine lineup for a solve with `slots` portfolio slots:
    /// closed-breaker engines run freely, and at most one benched engine
    /// whose probe interval has elapsed is admitted — with a slot reserved
    /// for it, so a claimed probe is guaranteed to actually run and report
    /// back (otherwise the breaker would wedge half-open). `None` means
    /// the default lineup: either everything is healthy, or everything is
    /// benched with no probe ready, in which case we fail open — a
    /// degraded portfolio beats no portfolio, and successes re-close the
    /// breakers.
    fn allowed_engines(&self, slots: usize) -> Option<Vec<Engine>> {
        let closed: Vec<Engine> = self
            .breakers
            .iter()
            .filter(|(_, b)| b.state() == htd_resilience::BreakerState::Closed)
            .map(|(e, _)| *e)
            .collect();
        if closed.len() == self.breakers.len() {
            return None; // all healthy: default lineup
        }
        let probe = self.breakers.iter().find_map(|(e, b)| {
            (b.state() != htd_resilience::BreakerState::Closed && b.allow()).then_some(*e)
        });
        match probe {
            None if closed.is_empty() => None, // all benched, none probeable: fail open
            None => Some(closed),
            Some(p) => {
                // strongest closed engines first (lineup order is claim
                // order), truncated so the probe keeps a guaranteed slot
                let mut lineup: Vec<Engine> =
                    closed.into_iter().take(slots.saturating_sub(1)).collect();
                lineup.push(p);
                Some(lineup)
            }
        }
    }

    /// Records per-engine panic attribution into the breakers and
    /// refreshes the `htd_engine_quarantined` gauge (benched engines:
    /// breakers not currently closed).
    fn record_engine_outcomes(&self, reports: &[htd_search::EngineReport]) {
        for (engine, b) in &self.breakers {
            match reports.iter().find(|r| r.engine == *engine) {
                Some(rep) if rep.panicked => b.record_failure(),
                Some(_) => b.record_success(),
                None => {
                    // a half-open breaker whose probe produced no report
                    // (e.g. a zero-budget solve skipped the engines) must
                    // not wedge: re-open it so it probes again later
                    if b.state() == htd_resilience::BreakerState::HalfOpen {
                        b.record_failure();
                    }
                }
            }
        }
        self.refresh_quarantine_gauge();
    }

    fn refresh_quarantine_gauge(&self) {
        let open = self
            .breakers
            .iter()
            .filter(|(_, b)| b.state() != htd_resilience::BreakerState::Closed)
            .count();
        htd_trace::registry()
            .gauge("htd_engine_quarantined")
            .set(open as i64);
    }

    pub(crate) fn log(&self, line: std::fmt::Arguments<'_>) {
        if self.opts.log {
            eprintln!("[htd-service +{}ms] {line}", self.metrics.uptime_ms());
        }
    }

    /// Cluster mode: stamps the id of the node that produced `r`.
    /// Forwarded responses arrive already stamped by the owner that
    /// computed them and keep that stamp — it is the client-visible
    /// evidence of where the work actually ran.
    fn stamp(&self, r: &mut Response) {
        if r.node.is_none() {
            if let Some(cluster) = &self.cluster {
                r.node = Some(cluster.node_id().to_string());
            }
        }
    }
}

/// A running server; dropping it does **not** stop the threads — call
/// [`Server::request_shutdown`] then [`Server::wait`].
pub struct Server {
    inner: Arc<Inner>,
    addr: std::net::SocketAddr,
    workers: Vec<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
    acceptor: Option<JoinHandle<()>>,
    agent: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and starts acceptor, watchdog and workers.
    pub fn start(opts: ServeOptions) -> std::io::Result<Server> {
        let listener = if opts.reuse_addr {
            bind_reusable(&opts.addr)?
        } else {
            TcpListener::bind(&opts.addr)?
        };
        listener.set_nonblocking(true)?;
        widen_accept_backlog(&listener);
        let addr = listener.local_addr()?;
        let threads = opts.threads.max(1);
        let injector = opts.chaos.map(FaultInjector::new);
        let breakers = Engine::default_lineup()
            .into_iter()
            .map(|e| {
                (
                    e,
                    CircuitBreaker::new(
                        opts.breaker_threshold,
                        Duration::from_millis(opts.breaker_probe_ms),
                    ),
                )
            })
            .collect();
        // open the certificate store (if any) before serving: every
        // record is re-verified by the oracle inside `CertStore::open`,
        // and only survivors warm the result cache
        let cache = ResultCache::new(opts.cache_mb.max(1) * (1 << 20));
        let store = match &opts.store_dir {
            Some(dir) => {
                let (store, records) = CertStore::open(dir)?;
                for rec in &records {
                    cache.admit(
                        rec.fingerprint,
                        &rec.canonical,
                        rec.objective,
                        &rec.outcome,
                        rec.effort_ms,
                    );
                }
                Some(store)
            }
            None => None,
        };
        let metrics = Arc::new(Metrics::new());
        let cluster = opts
            .cluster
            .clone()
            .map(|cfg| Arc::new(Cluster::new(cfg, Arc::clone(&metrics), opts.log)));
        let inner = Arc::new(Inner {
            cache,
            shapes: Arc::new(ShapeCache::new(SHAPE_CACHE_CAPACITY)),
            metrics,
            queue: WorkQueue::new(opts.queue_capacity),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            killed: AtomicBool::new(false),
            cluster,
            registry: Mutex::new(Vec::new()),
            conn_seq: AtomicU64::new(0),
            injector,
            breakers,
            store,
            opts,
        });
        inner.log(format_args!(
            "listening on {addr} workers={threads} cache_mb={} queue={} chaos={} memory_mb={} \
             event_loop={} store={}",
            inner.opts.cache_mb,
            inner.opts.queue_capacity,
            inner
                .opts
                .chaos
                .map_or("off".to_string(), |p| format!("seed:{}", p.seed)),
            inner
                .opts
                .memory_mb
                .map_or("-".to_string(), |m| m.to_string()),
            inner.opts.event_loop,
            inner
                .opts
                .store_dir
                .as_deref()
                .map_or("-".to_string(), |d| d.display().to_string()),
        ));
        if let Some(store) = &inner.store {
            let st = store.stats();
            inner.log(format_args!(
                "store warm: loaded={} rejected={} truncated={} bytes={}",
                st.loaded,
                st.rejected,
                st.truncated,
                store.bytes(),
            ));
        }
        // pre-register the solver-level series so `/metrics` exposes them
        // (at zero) before the first solve instead of popping in later
        let reg = htd_trace::registry();
        reg.counter("htd_solver_expansions_total");
        reg.counter("htd_cover_cache_hits_total");
        reg.counter("htd_cover_cache_misses_total");
        reg.counter("htd_deadline_cancellations_total");
        reg.counter("htd_oracle_failures_total");
        reg.counter("htd_worker_panics_total");
        reg.counter("htd_mem_budget_aborts_total");
        reg.counter("htd_degraded_responses_total");
        reg.gauge("htd_engine_quarantined");
        // certificate-store + event-loop series (zero when those
        // subsystems are off, so dashboards see a stable schema)
        reg.counter("htd_store_loaded_total");
        reg.counter("htd_store_rejects_total");
        reg.counter("htd_store_truncated_total");
        reg.counter("htd_store_appends_total");
        reg.gauge("htd_store_bytes");
        reg.gauge("htd_eventloop_connections");
        reg.counter("htd_eventloop_wakeups_total");
        reg.counter("htd_pipelined_requests_total");
        // ... and the answer-pipeline series of htd-query
        reg.counter("htd_answers_total");
        reg.counter("htd_answer_shape_cache_hits_total");
        reg.counter("htd_answer_shape_cache_misses_total");
        reg.counter("htd_answer_tuples_scanned_total");
        reg.counter("htd_answer_refusals_total");
        reg.histogram(
            "htd_answer_latency_ms",
            htd_query::ANSWER_LATENCY_BUCKETS_MS,
        );
        // the service keeps span aggregation on for the whole process:
        // per-stage spans feed the htd_span_seconds{span=...} histograms
        // on /metrics at bounded (counter-batch-like) cost
        htd_trace::set_spans_enabled(true);
        let workers = (0..threads)
            .map(|w| {
                let inner = Arc::clone(&inner);
                let label: &'static str = Box::leak(format!("svc-{w}").into_boxed_str());
                thread::Builder::new()
                    .name(format!("htd-worker-{w}"))
                    .spawn(move || {
                        htd_trace::set_worker(label);
                        worker_loop(&inner)
                    })
                    .expect("spawn worker")
            })
            .collect();
        let watchdog = {
            let inner = Arc::clone(&inner);
            thread::Builder::new()
                .name("htd-watchdog".into())
                .spawn(move || watchdog_loop(&inner))
                .expect("spawn watchdog")
        };
        let acceptor = {
            let inner = Arc::clone(&inner);
            let event_loop = inner.opts.event_loop;
            thread::Builder::new()
                .name("htd-acceptor".into())
                .spawn(move || {
                    if event_loop {
                        if let Err(e) = crate::event_loop::run(&inner, listener) {
                            inner.log(format_args!("event loop exited with error: {e}"));
                        }
                    } else {
                        acceptor_loop(&inner, listener)
                    }
                })
                .expect("spawn acceptor")
        };
        let agent = inner.cluster.as_ref().map(|cluster| {
            inner.log(format_args!(
                "cluster node={} ring={} replication={} peers={}",
                cluster.node_id(),
                cluster.ring().len(),
                cluster.config().replication,
                cluster
                    .config()
                    .peers
                    .iter()
                    .map(|p| format!("{}={}", p.id, p.addr))
                    .collect::<Vec<_>>()
                    .join(","),
            ));
            let inner = Arc::clone(&inner);
            let cluster = Arc::clone(cluster);
            thread::Builder::new()
                .name("htd-cluster".into())
                .spawn(move || {
                    crate::cluster::run_agent(&cluster, inner.store.as_ref(), &inner.shutdown)
                })
                .expect("spawn cluster agent")
        });
        Ok(Server {
            inner,
            addr,
            workers,
            watchdog: Some(watchdog),
            acceptor: Some(acceptor),
            agent,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Shared metrics of this instance.
    pub fn metrics(&self) -> &Metrics {
        self.inner.metrics.as_ref()
    }

    /// The cluster layer, when this node runs as part of one.
    pub fn cluster(&self) -> Option<&Arc<Cluster>> {
        self.inner.cluster.as_ref()
    }

    /// Begins a graceful drain: refuse new solves, finish running work.
    pub fn request_shutdown(&self) {
        if !self.inner.draining.swap(true, Ordering::SeqCst) {
            self.inner.log(format_args!("drain requested"));
        }
    }

    /// `true` once a drain has been requested (by command or signal).
    pub fn is_draining(&self) -> bool {
        self.inner.draining()
    }

    /// Blocks until the drain completes, then stops and joins every
    /// thread and flushes a final metrics summary to the log.
    pub fn wait(mut self) {
        loop {
            if self.inner.draining()
                && self.inner.queue.len() == 0
                && self.inner.metrics.inflight.load(Ordering::SeqCst) == 0
            {
                break;
            }
            thread::sleep(Duration::from_millis(10));
        }
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.queue.wake_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(w) = self.watchdog.take() {
            let _ = w.join();
        }
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        if let Some(a) = self.agent.take() {
            let _ = a.join();
        }
        // Workers (the only appenders) are joined; release the store's
        // single-writer lock now rather than when the last Arc<Inner>
        // drops, so a same-process reopen of the same --store directory
        // succeeds even while detached connection threads linger.
        if let Some(store) = self.inner.store.as_ref() {
            store.unlock();
        }
        let m = &self.inner.metrics;
        self.inner.log(format_args!(
            "drained; served={} hits={} misses={} timeouts={} rejected={} p50={:.1}ms p95={:.1}ms",
            m.ok_responses.load(Ordering::Relaxed),
            m.cache_hits.load(Ordering::Relaxed),
            m.cache_misses.load(Ordering::Relaxed),
            m.timeout_responses.load(Ordering::Relaxed),
            m.rejected_responses.load(Ordering::Relaxed),
            m.solve_latency.quantile(0.5),
            m.solve_latency.quantile(0.95),
        ));
    }

    /// Stops the node *abruptly*: no drain, queued work dropped,
    /// in-flight solves cancelled, connections severed mid-request — the
    /// in-process analog of `kill -9`, for crash and failover testing.
    /// With the event-loop front end every open connection dies with the
    /// loop (clients see a reset); the blocking front end can only sever
    /// future connections, since its per-connection threads are detached.
    /// The certificate store's exclusive lock is released on return, so
    /// a replacement node can reopen the same `--store` directory.
    pub fn kill(mut self) {
        self.inner
            .log(format_args!("killed (abrupt stop, no drain)"));
        self.inner.killed.store(true, Ordering::SeqCst);
        self.inner.draining.store(true, Ordering::SeqCst);
        self.inner.shutdown.store(true, Ordering::SeqCst);
        for (_, incumbent) in self.inner.registry.lock().iter() {
            incumbent.cancel();
        }
        self.inner.queue.wake_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(w) = self.watchdog.take() {
            let _ = w.join();
        }
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        if let Some(a) = self.agent.take() {
            let _ = a.join();
        }
        if let Some(store) = self.inner.store.as_ref() {
            store.unlock();
        }
    }
}

/// `std::net` listens with a fixed backlog of 128, which a connection
/// storm (hundreds of clients dialing the same instant) overflows —
/// the kernel then drops or resets handshakes before the loop ever
/// sees them. Linux allows re-calling `listen(2)` on a listening
/// socket to widen the queue; ask for more and let the kernel clamp
/// to `somaxconn`. Best-effort: a failure leaves the default backlog.
#[cfg(unix)]
fn widen_accept_backlog(listener: &TcpListener) {
    use std::os::unix::io::AsRawFd;
    extern "C" {
        fn listen(fd: i32, backlog: i32) -> i32;
    }
    unsafe {
        listen(listener.as_raw_fd(), 4096);
    }
}

#[cfg(not(unix))]
fn widen_accept_backlog(_listener: &TcpListener) {}

/// Binds with `SO_REUSEADDR` ([`ServeOptions::reuse_addr`]): a node
/// restarted after a crash must reclaim its port immediately even while
/// connections of its killed predecessor linger in `TIME_WAIT`. `std`'s
/// `TcpListener::bind` sets no socket options, so the v4 path builds the
/// socket by hand; anything else falls back to the plain bind.
#[cfg(target_os = "linux")]
fn bind_reusable(addr: &str) -> std::io::Result<TcpListener> {
    use std::net::{SocketAddr, ToSocketAddrs};
    use std::os::unix::io::FromRawFd;
    let Some(SocketAddr::V4(v4)) = addr.to_socket_addrs()?.next() else {
        return TcpListener::bind(addr);
    };
    #[repr(C)]
    struct SockaddrIn {
        family: u16,
        port: u16,
        addr: u32,
        zero: [u8; 8],
    }
    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
        fn bind(fd: i32, addr: *const SockaddrIn, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }
    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;
    unsafe {
        let fd = socket(AF_INET, SOCK_STREAM, 0);
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        let one: i32 = 1;
        setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, 4);
        let sin = SockaddrIn {
            family: AF_INET as u16,
            port: v4.port().to_be(),
            addr: u32::from(*v4.ip()).to_be(),
            zero: [0; 8],
        };
        if bind(fd, &sin, std::mem::size_of::<SockaddrIn>() as u32) != 0 || listen(fd, 4096) != 0 {
            let e = std::io::Error::last_os_error();
            close(fd);
            return Err(e);
        }
        Ok(TcpListener::from_raw_fd(fd))
    }
}

#[cfg(not(target_os = "linux"))]
fn bind_reusable(addr: &str) -> std::io::Result<TcpListener> {
    TcpListener::bind(addr)
}

#[cfg(unix)]
fn install_signal_drain() -> &'static AtomicBool {
    static SIGNALLED: AtomicBool = AtomicBool::new(false);
    extern "C" fn on_signal(_: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    // SIGINT = 2, SIGTERM = 15 on every unix the workspace targets
    unsafe {
        signal(2, on_signal as *const () as usize);
        signal(15, on_signal as *const () as usize);
    }
    &SIGNALLED
}

/// The CLI entry point: serve until a `shutdown` command or (on unix)
/// SIGINT/SIGTERM, then drain and exit.
pub fn run_until_shutdown(opts: ServeOptions) -> std::io::Result<()> {
    let server = Server::start(opts)?;
    println!("htd-service listening on {}", server.addr());
    #[cfg(unix)]
    let signalled = install_signal_drain();
    loop {
        #[cfg(unix)]
        if signalled.load(Ordering::SeqCst) {
            server.request_shutdown();
        }
        if server.is_draining() {
            break;
        }
        thread::sleep(Duration::from_millis(20));
    }
    server.wait();
    Ok(())
}

/// Cancels the shared incumbents of expired in-flight solves. Only the
/// first cancellation of a solve is counted and logged: a flag already
/// set means either a previous scan got it or the solve finished (exact
/// proofs cancel their own incumbent), neither of which is a new kill.
fn watchdog_loop(inner: &Inner) {
    while !inner.shutdown.load(Ordering::SeqCst) {
        let now = Instant::now();
        {
            let registry = inner.registry.lock();
            for (deadline, incumbent) in registry.iter() {
                if now >= *deadline && !incumbent.is_cancelled() {
                    incumbent.cancel();
                    inner
                        .metrics
                        .deadline_cancellations
                        .fetch_add(1, Ordering::Relaxed);
                    inner.log(format_args!(
                        "watchdog cancelled expired solve overshoot_ms={:.1} best_upper={}",
                        now.saturating_duration_since(*deadline).as_secs_f64() * 1e3,
                        match incumbent.upper() {
                            u32::MAX => "-".into(),
                            u => u.to_string(),
                        },
                    ));
                }
            }
        }
        thread::sleep(WATCHDOG_PERIOD);
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        if inner.shutdown.load(Ordering::SeqCst)
            && (inner.killed.load(Ordering::SeqCst) || inner.queue.len() == 0)
        {
            return;
        }
        let Some(job) = inner.queue.pop_timeout(Duration::from_millis(50)) else {
            continue;
        };
        inner.metrics.queue_depth.fetch_sub(1, Ordering::SeqCst);
        let now = Instant::now();
        let queued = now.saturating_duration_since(job.enqueued);
        inner.metrics.queue_wait.observe(queued.as_secs_f64());
        if now >= job.deadline {
            // expired while queued: evict without running
            inner
                .metrics
                .timeout_responses
                .fetch_add(1, Ordering::Relaxed);
            let mut r = Response::new(job.id.clone(), Status::Timeout);
            inner.stamp(&mut r);
            r.fingerprint = job.work.fingerprint_hex().map(str::to_string);
            r.canonical = matches!(&job.work, Work::Solve(w) if w.canonical_complete);
            r.error = Some("deadline expired in queue".into());
            r.elapsed_ms = job.received.elapsed().as_secs_f64() * 1000.0;
            inner.log(format_args!(
                "req={} obj={} fp={} status=timeout queued_ms={:.1}",
                job.id.as_deref().unwrap_or("-"),
                job.work.label(),
                job.work.fingerprint_hex().unwrap_or("-"),
                r.elapsed_ms
            ));
            job.reply.send(r);
            continue;
        }
        inner.metrics.inflight.fetch_add(1, Ordering::SeqCst);
        let incumbent = Arc::new(Incumbent::new());
        inner
            .registry
            .lock()
            .push((job.deadline, Arc::clone(&incumbent)));

        // seeded fault injection (chaos mode): a request may be stalled,
        // allocation-starved, or handed a panicking portfolio worker
        let fault = inner
            .injector
            .as_ref()
            .map(|i| i.next_request())
            .unwrap_or_default();
        if let Some(d) = fault.delay {
            thread::sleep(d);
        }

        let mut r = match &job.work {
            Work::Solve(w) => {
                let _sp = htd_trace::span!("service.solve");
                run_solve(inner, &job, w, &incumbent, &fault, queued)
            }
            Work::Answer(w) => {
                let _sp = htd_trace::span!("service.answer");
                run_answer(inner, &job, w, &incumbent, &fault, queued)
            }
            Work::Forward(f) => {
                let _sp = htd_trace::span!("cluster.forward");
                run_forward(inner, &job, f, &incumbent, &fault, queued)
            }
            Work::PutCert(p) => {
                let _sp = htd_trace::span!("cluster.put_cert");
                run_put_cert(inner, &job, p)
            }
        };

        {
            let mut registry = inner.registry.lock();
            registry.retain(|(_, i)| !Arc::ptr_eq(i, &incumbent));
        }
        inner.metrics.inflight.fetch_sub(1, Ordering::SeqCst);
        if r.status == Status::Ok {
            inner.metrics.request_latency.observe(r.elapsed_ms);
        }
        inner.stamp(&mut r);
        let _sp = htd_trace::span!("service.respond");
        job.reply.send(r);
    }
}

/// Runs one solve job on a worker: budget the remaining deadline into
/// the search, quarantine the solve, verify/admit the outcome, respond.
fn run_solve(
    inner: &Inner,
    job: &Job,
    w: &SolveWork,
    incumbent: &Arc<Incumbent>,
    fault: &Fault,
    queued: Duration,
) -> Response {
    let remaining = job.deadline.saturating_duration_since(Instant::now());
    let mut cfg = match w.budget {
        Some(b) => SearchConfig::budgeted(b),
        None => SearchConfig::portfolio(),
    };
    cfg = cfg
        .with_time_limit(remaining.saturating_sub(DEADLINE_SLACK))
        .with_threads(job.threads);
    cfg.shared = Some(Arc::clone(incumbent));
    if fault.alloc_fail {
        // near-zero budget: the solve degrades to its anytime bounds
        cfg = cfg.with_memory_budget(16 << 10);
    } else if let Some(mb) = inner.opts.memory_mb {
        cfg = cfg.with_memory_budget(mb << 20);
    }
    if fault.panic_worker {
        cfg = cfg.with_faults(InjectedFaults::with_panics(1));
    }
    // an explicit per-request lineup wins; otherwise bench engines
    // with open breakers (and admit at most one probe)
    let lineup = job
        .engines
        .clone()
        .or_else(|| inner.allowed_engines(job.threads.max(1)));
    if let Some(engines) = lineup.clone() {
        cfg = cfg.with_engines(engines);
    }

    let solve_start = Instant::now();
    // last line of defense: a panic anywhere in the solve path is
    // quarantined into a structured internal error instead of taking
    // the worker thread (and with it the whole pool) down
    let result = quarantined(|| solve(&w.problem, &cfg)).unwrap_or_else(|message| {
        htd_trace::registry()
            .counter("htd_worker_panics_total")
            .inc();
        // the panic escaped per-engine attribution; charge the whole
        // lineup so a persistently crashing path still gets benched
        for (engine, b) in &inner.breakers {
            match lineup.as_ref() {
                Some(l) if !l.contains(engine) => {}
                _ => b.record_failure(),
            }
        }
        inner.refresh_quarantine_gauge();
        Err(HtdError::Io(format!(
            "solver panicked (quarantined): {message}"
        )))
    });
    let solve_elapsed = solve_start.elapsed();
    let solve_ms = solve_elapsed.as_secs_f64() * 1000.0;
    inner
        .metrics
        .solve_time
        .observe(solve_elapsed.as_secs_f64());

    let mut r = match result {
        Ok(outcome) => {
            inner.metrics.solve_latency.observe(solve_ms);
            inner.record_engine_outcomes(&outcome.per_engine);
            let survived_panic = outcome.per_engine.iter().any(|e| e.panicked);
            let degraded = outcome.degraded || survived_panic;
            if degraded {
                htd_trace::registry()
                    .counter("htd_degraded_responses_total")
                    .inc();
            }
            // degraded results carry weaker bounds than a healthy solve
            // of the same instance would; never let them shadow a
            // future clean answer in the cache
            let mut cacheable = !degraded;
            if inner.opts.verify_responses {
                let report = htd_check::verify_outcome(&w.problem, &outcome);
                if !report.is_valid() {
                    cacheable = false;
                    htd_trace::registry()
                        .counter("htd_oracle_failures_total")
                        .inc();
                    inner.log(format_args!(
                        "req={} obj={} fp={} ORACLE VIOLATION (response served, not cached): {}",
                        job.id.as_deref().unwrap_or("-"),
                        w.objective_name,
                        w.fingerprint_hex,
                        report
                    ));
                }
            }
            if cacheable {
                inner.cache.admit(
                    w.fingerprint,
                    &w.canonical,
                    w.objective_name,
                    &outcome,
                    solve_ms.ceil() as u64,
                );
                // persist what the cache learned: only clean, cacheable
                // outcomes reach the log, and `CertStore::append` itself
                // refuses anything the loader could not later re-verify
                if let Some(store) = &inner.store {
                    let rec = StoreRecord {
                        objective: w.objective_name,
                        format: w.format,
                        instance: w.instance.clone(),
                        fingerprint: w.fingerprint,
                        canonical: w.canonical.clone(),
                        effort_ms: solve_ms.ceil() as u64,
                        outcome: outcome.clone(),
                    };
                    if let Err(e) = store.append(&rec) {
                        inner.log(format_args!(
                            "store append failed fp={}: {e}",
                            w.fingerprint_hex
                        ));
                    }
                }
                // cluster mode: push the verified certificate to the
                // other owners of this fingerprint. Only store-admissible
                // outcomes travel (the receiver's oracle gate mirrors the
                // store's), and the push covers both steady-state
                // replication and the hinted handoff of a local-fallback
                // solve — the owners are exactly the nodes that need it.
                if let Some(cluster) = &inner.cluster {
                    if !w.instance.is_empty()
                        && w.objective_name != "hw"
                        && outcome.witness.is_some()
                    {
                        cluster.replicate(
                            w.fingerprint,
                            &CertPush {
                                objective: outcome.objective,
                                format: w.format,
                                instance: w.instance.clone(),
                                fingerprint_hex: w.fingerprint_hex.clone(),
                                effort_ms: solve_ms.ceil() as u64,
                                outcome: outcome.clone(),
                                from: Some(cluster.node_id().to_string()),
                            },
                        );
                    }
                }
            }
            inner.metrics.record_served(outcome.upper, outcome.exact);
            inner.metrics.ok_responses.fetch_add(1, Ordering::Relaxed);
            let mut r = Response::new(job.id.clone(), Status::Ok);
            r.outcome = Some(outcome);
            r
        }
        Err(e) => {
            inner
                .metrics
                .error_responses
                .fetch_add(1, Ordering::Relaxed);
            Response::from_error(job.id.clone(), &e)
        }
    };
    r.fingerprint = Some(w.fingerprint_hex.clone());
    r.canonical = w.canonical_complete;
    r.elapsed_ms = job.received.elapsed().as_secs_f64() * 1000.0;
    inner.log(format_args!(
        "req={} obj={} fp={} cache=miss status={} width={} exact={} winner={} queued_ms={:.2} solve_ms={:.1} total_ms={:.1} deadline_ms={}",
        job.id.as_deref().unwrap_or("-"),
        w.objective_name,
        w.fingerprint_hex,
        r.status.name(),
        r.outcome.as_ref().map_or(0, |o| o.upper),
        r.outcome.as_ref().is_some_and(|o| o.exact),
        r.outcome
            .as_ref()
            .and_then(|o| o.winner)
            .map_or("-", |w| w.name()),
        queued.as_secs_f64() * 1e3,
        solve_ms,
        r.elapsed_ms,
        job.deadline_ms,
    ));
    r
}

/// Runs one answer job through the `htd-query` pipeline: decomposition
/// (shape-cache first), then Yannakakis evaluation against the
/// request's own relations — under the same deadline, thread and
/// memory governance as a solve. A memory-budget overrun *refuses* the
/// query with a size estimate ([`HtdError::ResourceExhausted`]) rather
/// than returning a wrong answer.
fn run_answer(
    inner: &Inner,
    job: &Job,
    w: &AnswerWork,
    incumbent: &Arc<Incumbent>,
    fault: &Fault,
    queued: Duration,
) -> Response {
    let remaining = job.deadline.saturating_duration_since(Instant::now());
    let mut cfg = SearchConfig::default()
        .with_max_nodes(200_000)
        .with_time_limit(remaining.saturating_sub(DEADLINE_SLACK))
        .with_threads(job.threads);
    cfg.shared = Some(Arc::clone(incumbent));
    if fault.panic_worker {
        cfg = cfg.with_faults(InjectedFaults::with_panics(1));
    }
    if let Some(engines) = job.engines.clone() {
        cfg = cfg.with_engines(engines);
    }
    let budget = if fault.alloc_fail {
        // allocation starvation: the evaluation must refuse, never lie
        Some(MemoryBudget::new(16 << 10))
    } else {
        inner.opts.memory_mb.map(|mb| MemoryBudget::new(mb << 20))
    };
    let opts = AnswerOptions {
        mode: w.mode,
        limit: w.limit.unwrap_or(DEFAULT_ANSWER_LIMIT),
        search: cfg,
        memory_budget: budget,
        shape_cache: w.use_shape_cache.then(|| Arc::clone(&inner.shapes)),
        deadline: Some(
            job.deadline
                .checked_sub(DEADLINE_SLACK)
                .unwrap_or(job.deadline),
        ),
        parse_us: w.parse_us,
    };

    let eval_start = Instant::now();
    // the pipeline quarantines its evaluation pass; this outer
    // quarantine additionally covers the decomposition search
    let result = quarantined(|| htd_query::answer(&w.query, &opts)).unwrap_or_else(|message| {
        htd_trace::registry()
            .counter("htd_worker_panics_total")
            .inc();
        Err(HtdError::Io(format!(
            "answer pipeline panicked (quarantined): {message}"
        )))
    });
    let eval_elapsed = eval_start.elapsed();
    inner.metrics.solve_time.observe(eval_elapsed.as_secs_f64());

    let mut r = match result {
        Ok(ans) => {
            inner.metrics.ok_responses.fetch_add(1, Ordering::Relaxed);
            let mut r = Response::new(job.id.clone(), Status::Ok);
            // `cached` on an answer means the *decomposition* was reused;
            // the semijoin passes always ran against this request's data
            r.cached = ans.stats.shape_cache_hit;
            r.fingerprint = Some(ans.stats.fingerprint.clone());
            r.canonical = ans.stats.canonical_complete;
            r.answer = Some(ans);
            r
        }
        Err(e) => {
            inner
                .metrics
                .error_responses
                .fetch_add(1, Ordering::Relaxed);
            Response::from_error(job.id.clone(), &e)
        }
    };
    r.elapsed_ms = job.received.elapsed().as_secs_f64() * 1000.0;
    inner.log(format_args!(
        "req={} obj=answer mode={} fp={} shape_cache={} status={} tuples={} queued_ms={:.2} eval_ms={:.1} total_ms={:.1} deadline_ms={}",
        job.id.as_deref().unwrap_or("-"),
        w.mode.name(),
        r.fingerprint.as_deref().unwrap_or("-"),
        if r.cached { "hit" } else { "miss" },
        r.status.name(),
        r.answer.as_ref().map_or(0, |a| a.stats.tuples_scanned),
        queued.as_secs_f64() * 1e3,
        eval_elapsed.as_secs_f64() * 1e3,
        r.elapsed_ms,
        job.deadline_ms,
    ));
    r
}

/// Runs one forwarded request on a worker: dial the owners in order and
/// relay the first usable response; when every owner is unreachable,
/// shutting down or partitioned away, compute locally (the certificate
/// then travels to the owners as a hint via the replication path).
/// Forwarding runs on the worker pool — never on the event loop — so a
/// slow peer stalls one worker slot, not the whole front end.
fn run_forward(
    inner: &Inner,
    job: &Job,
    f: &ForwardWork,
    incumbent: &Arc<Incumbent>,
    fault: &Fault,
    queued: Duration,
) -> Response {
    let cluster = inner
        .cluster
        .as_ref()
        .expect("forward work queued without a cluster");
    let dial_timeout = Duration::from_millis(cluster.config().probe_timeout_ms);
    for (hop, (peer, addr)) in f.candidates.iter().enumerate() {
        let attempt = (|| -> Option<Response> {
            if cluster.is_peer_partitioned(peer) {
                return None;
            }
            let mut c = Client::connect_timeout(addr, dial_timeout).ok()?;
            let remaining = job.deadline.saturating_duration_since(Instant::now());
            c.set_read_timeout(Some(remaining + REPLY_GRACE));
            let r = c
                .request(&Request {
                    id: job.id.clone(),
                    cmd: f.cmd.clone(),
                })
                .ok()?;
            // a draining owner refuses new work; treat like a dead one
            (r.status != Status::ShuttingDown).then_some(r)
        })();
        match attempt {
            Some(mut r) => {
                inner
                    .metrics
                    .cluster_forwards
                    .fetch_add(1, Ordering::Relaxed);
                r.id = job.id.clone();
                r.elapsed_ms = job.received.elapsed().as_secs_f64() * 1000.0;
                inner.log(format_args!(
                    "req={} fp={} forwarded to={} hop={hop} status={} ms={:.1}",
                    job.id.as_deref().unwrap_or("-"),
                    f.local.fingerprint_hex().unwrap_or("-"),
                    peer,
                    r.status.name(),
                    r.elapsed_ms,
                ));
                return r;
            }
            None => {
                inner
                    .metrics
                    .cluster_failovers
                    .fetch_add(1, Ordering::Relaxed);
                inner.log(format_args!(
                    "req={} fp={} owner={peer} unreachable, failing over",
                    job.id.as_deref().unwrap_or("-"),
                    f.local.fingerprint_hex().unwrap_or("-"),
                ));
            }
        }
    }
    // last rung of the ladder: every owner unusable — answer the client
    // from here rather than failing, and let replication hint the owner
    inner
        .metrics
        .cluster_local_fallbacks
        .fetch_add(1, Ordering::Relaxed);
    inner.log(format_args!(
        "req={} fp={} all {} owner(s) unusable: solving locally",
        job.id.as_deref().unwrap_or("-"),
        f.local.fingerprint_hex().unwrap_or("-"),
        f.candidates.len(),
    ));
    match &*f.local {
        Work::Solve(w) => run_solve(inner, job, w, incumbent, fault, queued),
        Work::Answer(w) => run_answer(inner, job, w, incumbent, fault, queued),
        // admission never nests Forward/PutCert inside a fallback
        Work::Forward(_) | Work::PutCert(_) => unreachable!("invalid forward fallback"),
    }
}

/// Handles a `put_cert` push from a peer: the claim is re-verified from
/// scratch (re-parse, re-canonicalize, oracle re-proof) before anything
/// is admitted — a remote peer is exactly as untrusted as bytes on disk.
fn run_put_cert(inner: &Inner, job: &Job, p: &CertPush) -> Response {
    let claimed = u64::from_str_radix(&p.fingerprint_hex, 16).unwrap_or(0);
    let mut r = match crate::store::verify_claim(
        p.objective,
        p.format,
        p.instance.clone(),
        claimed,
        p.effort_ms,
        p.outcome.clone(),
    ) {
        Some(rec) => {
            inner.cache.admit(
                rec.fingerprint,
                &rec.canonical,
                rec.objective,
                &rec.outcome,
                rec.effort_ms,
            );
            if let Some(store) = &inner.store {
                if let Err(e) = store.append(&rec) {
                    inner.log(format_args!(
                        "store append of pushed cert failed fp={}: {e}",
                        p.fingerprint_hex
                    ));
                }
            }
            inner
                .metrics
                .cluster_certs_accepted
                .fetch_add(1, Ordering::Relaxed);
            inner.metrics.ok_responses.fetch_add(1, Ordering::Relaxed);
            let mut r = Response::new(job.id.clone(), Status::Ok);
            r.fingerprint = Some(p.fingerprint_hex.clone());
            r
        }
        None => {
            inner
                .metrics
                .cluster_cert_rejects
                .fetch_add(1, Ordering::Relaxed);
            inner
                .metrics
                .error_responses
                .fetch_add(1, Ordering::Relaxed);
            let e =
                HtdError::Invalid("pushed certificate failed oracle re-verification".to_string());
            let mut r = Response::from_error(job.id.clone(), &e);
            r.fingerprint = Some(p.fingerprint_hex.clone());
            r
        }
    };
    r.elapsed_ms = job.received.elapsed().as_secs_f64() * 1000.0;
    inner.log(format_args!(
        "put_cert from={} fp={} status={} ms={:.1}",
        p.from.as_deref().unwrap_or("-"),
        p.fingerprint_hex,
        r.status.name(),
        r.elapsed_ms,
    ));
    r
}

fn acceptor_loop(inner: &Arc<Inner>, listener: TcpListener) {
    // keeps accepting while draining so probes stay reachable; only the
    // final shutdown flag stops it
    while !inner.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let inner = Arc::clone(inner);
                let conn = inner.conn_seq.fetch_add(1, Ordering::Relaxed);
                let _ = thread::Builder::new()
                    .name(format!("htd-conn-{conn}"))
                    .spawn(move || {
                        let _ = serve_connection(&inner, stream);
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn serve_connection(inner: &Arc<Inner>, stream: TcpStream) -> std::io::Result<()> {
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        // bound the frame: a line still unterminated at MAX_FRAME bytes is
        // a protocol violation, answered structurally and disconnected —
        // never buffered to completion
        let n = std::io::Read::take(&mut reader, MAX_FRAME).read_line(&mut line)?;
        if n == 0 {
            return Ok(()); // client closed
        }
        if n as u64 >= MAX_FRAME && !line.ends_with('\n') {
            inner
                .metrics
                .error_responses
                .fetch_add(1, Ordering::Relaxed);
            let e = HtdError::Parse(format!(
                "request frame exceeds {} bytes without a newline",
                MAX_FRAME
            ));
            write_response(&mut writer, &Response::from_error(None, &e))?;
            return Ok(());
        }
        if line.starts_with("GET ") || line.starts_with("HEAD ") {
            return serve_http(inner, &line, &mut reader, &mut writer);
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let response = match Json::parse(trimmed).and_then(|doc| Request::from_json(&doc)) {
            Err(e) => Response::from_error(None, &e),
            Ok(req) => dispatch(inner, req),
        };
        write_response(&mut writer, &response)?;
    }
}

/// Serializes one response line (newline included), enforcing
/// [`MAX_RESPONSE`]: an oversized body is replaced by a structured
/// internal error so a single pathological result cannot monopolize the
/// connection. Shared by the blocking writer and the event loop.
pub(crate) fn response_line(response: &Response) -> Vec<u8> {
    let mut body = response.to_json().to_string();
    if body.len() > MAX_RESPONSE {
        let e = HtdError::Io(format!(
            "response of {} bytes exceeds the {} byte limit",
            body.len(),
            MAX_RESPONSE
        ));
        let mut r = Response::from_error(response.id.clone(), &e);
        r.elapsed_ms = response.elapsed_ms;
        body = r.to_json().to_string();
    }
    body.push('\n');
    body.into_bytes()
}

fn write_response(writer: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    writer.write_all(&response_line(response))?;
    writer.flush()
}

/// Blocking dispatch for the thread-per-connection path: admit, then
/// wait on the reply channel when the request was queued.
fn dispatch(inner: &Arc<Inner>, req: Request) -> Response {
    let (tx, rx) = mpsc::channel();
    match admit_request(inner, req, ReplySink::Channel(tx)) {
        Admission::Ready(r) => r,
        Admission::Queued {
            id,
            fingerprint,
            deadline,
            received,
        } => {
            let timeout = (deadline + REPLY_GRACE).saturating_duration_since(Instant::now());
            match rx.recv_timeout(timeout) {
                Ok(r) => r,
                Err(_) => {
                    // worker lost (should not happen); report as timeout
                    inner
                        .metrics
                        .timeout_responses
                        .fetch_add(1, Ordering::Relaxed);
                    let mut r = Response::new(id, Status::Timeout);
                    r.error = Some("no worker response before deadline".into());
                    r.fingerprint = fingerprint;
                    r.elapsed_ms = received.elapsed().as_secs_f64() * 1000.0;
                    r
                }
            }
        }
    }
}

/// Non-blocking admission shared by both front ends: probes answer on
/// the spot, solves/answers either answer immediately (cache hit, parse
/// error, drain refusal, backpressure rejection) or enter the bounded
/// work queue with their reply routed to `sink`.
pub(crate) fn admit_request(inner: &Arc<Inner>, req: Request, sink: ReplySink) -> Admission {
    match admit_request_inner(inner, req, sink) {
        Admission::Ready(mut r) => {
            inner.stamp(&mut r);
            Admission::Ready(r)
        }
        queued => queued,
    }
}

fn admit_request_inner(inner: &Arc<Inner>, req: Request, sink: ReplySink) -> Admission {
    match req.cmd {
        Command::Ping => {
            inner.metrics.ping_requests.fetch_add(1, Ordering::Relaxed);
            let mut r = Response::new(req.id, Status::Pong);
            // leave-intent signal: the cluster failure detector reads this
            // to mark a draining peer `Leaving` instead of failing it
            r.draining = inner.draining();
            Admission::Ready(r)
        }
        Command::Stats => {
            inner.metrics.stats_requests.fetch_add(1, Ordering::Relaxed);
            let mut r = Response::new(req.id, Status::Stats);
            r.stats = Some(inner.metrics.snapshot_json(
                inner.cache.entries(),
                inner.cache.bytes(),
                inner.draining(),
            ));
            Admission::Ready(r)
        }
        Command::Shutdown => {
            if !inner.draining.swap(true, Ordering::SeqCst) {
                inner.log(format_args!("drain requested by client"));
            }
            Admission::Ready(Response::new(req.id, Status::ShuttingDown))
        }
        Command::Solve(s) => admit_solve(inner, req.id, s, sink),
        Command::Answer(a) => admit_answer(inner, req.id, a, sink),
        Command::PutCert(p) => admit_put_cert(inner, req.id, p, sink),
    }
}

/// Admission path of a peer's `put_cert` push: the oracle re-proof is
/// real work (a full `htd check` of the claimed decomposition), so it
/// rides the bounded queue like any other job instead of stalling the
/// connection thread or event loop.
fn admit_put_cert(
    inner: &Arc<Inner>,
    id: Option<String>,
    p: CertPush,
    sink: ReplySink,
) -> Admission {
    let received = Instant::now();
    inner
        .metrics
        .put_cert_requests
        .fetch_add(1, Ordering::Relaxed);
    if inner.draining() {
        inner
            .metrics
            .shedding_responses
            .fetch_add(1, Ordering::Relaxed);
        let mut r = Response::new(id, Status::ShuttingDown);
        r.error = Some("server is draining".into());
        return Admission::Ready(r);
    }
    let deadline_ms = inner.opts.default_deadline_ms;
    let deadline = received + Duration::from_millis(deadline_ms);
    let fingerprint_hex = p.fingerprint_hex.clone();
    let job = Job {
        id: id.clone(),
        work: Work::PutCert(p),
        deadline,
        deadline_ms,
        threads: 1,
        engines: None,
        received,
        enqueued: Instant::now(),
        reply: sink,
    };
    inner.metrics.queue_depth.fetch_add(1, Ordering::SeqCst);
    if !inner.queue.try_push(job) {
        inner.metrics.queue_depth.fetch_sub(1, Ordering::SeqCst);
        inner
            .metrics
            .rejected_responses
            .fetch_add(1, Ordering::Relaxed);
        // the sender's outbox redelivers with backoff; a plain rejection
        // is all the backpressure signal it needs
        let mut r = Response::new(id, Status::Rejected);
        r.error = Some("work queue full".into());
        r.fingerprint = Some(fingerprint_hex);
        r.elapsed_ms = received.elapsed().as_secs_f64() * 1000.0;
        return Admission::Ready(r);
    }
    Admission::Queued {
        id,
        fingerprint: Some(fingerprint_hex),
        deadline,
        received,
    }
}

fn admit_solve(
    inner: &Arc<Inner>,
    id: Option<String>,
    s: SolveRequest,
    sink: ReplySink,
) -> Admission {
    let received = Instant::now();
    inner.metrics.solve_requests.fetch_add(1, Ordering::Relaxed);
    let deadline_ms = s.deadline_ms.unwrap_or(inner.opts.default_deadline_ms);
    let deadline = received + Duration::from_millis(deadline_ms);
    let objective_name = s.objective.name();

    let (problem, key_hypergraph) = match parse_problem(s.format, &s.instance, s.objective) {
        Ok(pair) => pair,
        Err(e) => {
            inner
                .metrics
                .error_responses
                .fetch_add(1, Ordering::Relaxed);
            let mut r = Response::from_error(id.clone(), &e);
            r.elapsed_ms = received.elapsed().as_secs_f64() * 1000.0;
            inner.log(format_args!(
                "req={} obj={objective_name} status=error err={:?}",
                id.as_deref().unwrap_or("-"),
                r.error.as_deref().unwrap_or("")
            ));
            return Admission::Ready(r);
        }
    };
    let canon = canonical_form(&key_hypergraph);
    let fingerprint_hex = canon.hex();

    if s.use_cache {
        if let Some(hit) = inner.cache.lookup(
            canon.fingerprint,
            &canon.bytes,
            objective_name,
            true,
            Some(deadline_ms),
        ) {
            inner.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            inner.metrics.ok_responses.fetch_add(1, Ordering::Relaxed);
            inner
                .metrics
                .record_served(hit.outcome.upper, hit.outcome.exact);
            let mut r = Response::new(id.clone(), Status::Ok);
            r.cached = true;
            r.outcome = Some(hit.outcome);
            r.fingerprint = Some(fingerprint_hex.clone());
            r.canonical = canon.complete;
            r.elapsed_ms = received.elapsed().as_secs_f64() * 1000.0;
            inner.metrics.request_latency.observe(r.elapsed_ms);
            inner.log(format_args!(
                "req={} obj={objective_name} fp={fingerprint_hex} cache=hit status=ok width={} ms={:.2}",
                id.as_deref().unwrap_or("-"),
                r.outcome.as_ref().map_or(0, |o| o.upper),
                r.elapsed_ms
            ));
            return Admission::Ready(r);
        }
    }
    inner.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);

    if inner.draining() {
        inner
            .metrics
            .shedding_responses
            .fetch_add(1, Ordering::Relaxed);
        let mut r = Response::new(id, Status::ShuttingDown);
        r.error = Some("server is draining".into());
        return Admission::Ready(r);
    }

    let solve_work = SolveWork {
        problem,
        fingerprint: canon.fingerprint,
        fingerprint_hex: fingerprint_hex.clone(),
        canonical: canon.bytes,
        canonical_complete: canon.complete,
        objective_name,
        budget: s.budget,
        // the instance text is only re-read by the store's loader and
        // the cluster's replication push; keep the job lean otherwise
        instance: if inner.store.is_some() || inner.cluster.is_some() {
            s.instance.clone()
        } else {
            String::new()
        },
        format: s.format,
    };
    let threads = s.threads.unwrap_or(1).max(1);
    let engines = s.engines.clone();
    // keys this node does not own route to their owners; the `forwarded`
    // flag breaks the cycle (a forwarded request always computes where
    // it lands). Cache hits above stay local either way — replicas hold
    // verified entries legitimately.
    let work = match &inner.cluster {
        Some(cl) if !s.forwarded && !cl.owns(canon.fingerprint) => {
            let candidates = cl.forward_candidates(canon.fingerprint);
            let mut fwd = s;
            fwd.forwarded = true;
            Work::Forward(ForwardWork {
                cmd: Command::Solve(fwd),
                candidates,
                local: Box::new(Work::Solve(solve_work)),
            })
        }
        _ => Work::Solve(solve_work),
    };
    let job = Job {
        id: id.clone(),
        work,
        deadline,
        deadline_ms,
        threads,
        engines,
        received,
        enqueued: Instant::now(),
        reply: sink,
    };
    inner.metrics.queue_depth.fetch_add(1, Ordering::SeqCst);
    if !inner.queue.try_push(job) {
        inner.metrics.queue_depth.fetch_sub(1, Ordering::SeqCst);
        inner
            .metrics
            .rejected_responses
            .fetch_add(1, Ordering::Relaxed);
        // hint: half the median solve so retries spread out, floor 10ms
        let p50 = inner.metrics.solve_latency.quantile(0.5);
        let mut r = Response::new(id.clone(), Status::Rejected);
        r.error = Some("work queue full".into());
        r.retry_after_ms = Some(((p50 / 2.0) as u64).clamp(10, 1000));
        r.fingerprint = Some(fingerprint_hex.clone());
        r.elapsed_ms = received.elapsed().as_secs_f64() * 1000.0;
        inner.log(format_args!(
            "req={} obj={objective_name} fp={fingerprint_hex} status=rejected retry_after_ms={}",
            id.as_deref().unwrap_or("-"),
            r.retry_after_ms.unwrap_or(0)
        ));
        return Admission::Ready(r);
    }

    Admission::Queued {
        id,
        fingerprint: Some(fingerprint_hex),
        deadline,
        received,
    }
}

/// Admission path of an `answer` request: parse the query on the
/// connection thread (cheap, and a parse error must not occupy a
/// worker), then queue the evaluation under the same backpressure and
/// deadline rules as a solve. Unlike the solve result cache, the shape
/// cache cannot answer from the connection thread — a shape hit only
/// skips the decomposition, the semijoin passes still run against this
/// request's own relations — so the lookup happens inside the pipeline
/// on the worker.
fn admit_answer(
    inner: &Arc<Inner>,
    id: Option<String>,
    a: AnswerRequest,
    sink: ReplySink,
) -> Admission {
    let received = Instant::now();
    inner
        .metrics
        .answer_requests
        .fetch_add(1, Ordering::Relaxed);
    let deadline_ms = a.deadline_ms.unwrap_or(inner.opts.default_deadline_ms);
    let deadline = received + Duration::from_millis(deadline_ms);

    // the service never reads relation files on behalf of a remote peer
    let query = match parse_query(&a.query, &FileAccess::Deny) {
        Ok(q) => q,
        Err(e) => {
            inner
                .metrics
                .error_responses
                .fetch_add(1, Ordering::Relaxed);
            let mut r = Response::from_error(id.clone(), &e);
            r.elapsed_ms = received.elapsed().as_secs_f64() * 1000.0;
            inner.log(format_args!(
                "req={} obj=answer status=error err={:?}",
                id.as_deref().unwrap_or("-"),
                r.error.as_deref().unwrap_or("")
            ));
            return Admission::Ready(r);
        }
    };
    let parse_us = received.elapsed().as_micros() as u64;

    if inner.draining() {
        inner
            .metrics
            .shedding_responses
            .fetch_add(1, Ordering::Relaxed);
        let mut r = Response::new(id, Status::ShuttingDown);
        r.error = Some("server is draining".into());
        return Admission::Ready(r);
    }

    // answers route on the same key the shape cache uses: the canonical
    // fingerprint of the query's hypergraph (only computed when clustered)
    let routing_key = inner
        .cluster
        .as_ref()
        .map(|_| canonical_form(&query.csp.hypergraph()).fingerprint);
    let answer_work = AnswerWork {
        query,
        mode: a.mode,
        limit: a.limit,
        use_shape_cache: a.use_cache,
        parse_us,
    };
    let threads = a.threads.unwrap_or(1).max(1);
    let engines = a.engines.clone();
    let work = match (&inner.cluster, routing_key) {
        (Some(cl), Some(key)) if !a.forwarded && !cl.owns(key) => {
            let candidates = cl.forward_candidates(key);
            let mut fwd = a;
            fwd.forwarded = true;
            Work::Forward(ForwardWork {
                cmd: Command::Answer(fwd),
                candidates,
                local: Box::new(Work::Answer(answer_work)),
            })
        }
        _ => Work::Answer(answer_work),
    };
    let job = Job {
        id: id.clone(),
        work,
        deadline,
        deadline_ms,
        threads,
        engines,
        received,
        enqueued: Instant::now(),
        reply: sink,
    };
    inner.metrics.queue_depth.fetch_add(1, Ordering::SeqCst);
    if !inner.queue.try_push(job) {
        inner.metrics.queue_depth.fetch_sub(1, Ordering::SeqCst);
        inner
            .metrics
            .rejected_responses
            .fetch_add(1, Ordering::Relaxed);
        // hint: half the median solve so retries spread out, floor 10ms
        let p50 = inner.metrics.solve_latency.quantile(0.5);
        let mut r = Response::new(id.clone(), Status::Rejected);
        r.error = Some("work queue full".into());
        r.retry_after_ms = Some(((p50 / 2.0) as u64).clamp(10, 1000));
        r.elapsed_ms = received.elapsed().as_secs_f64() * 1000.0;
        inner.log(format_args!(
            "req={} obj=answer status=rejected retry_after_ms={}",
            id.as_deref().unwrap_or("-"),
            r.retry_after_ms.unwrap_or(0)
        ));
        return Admission::Ready(r);
    }

    Admission::Queued {
        id,
        fingerprint: None,
        deadline,
        received,
    }
}

fn serve_http(
    inner: &Arc<Inner>,
    request_line: &str,
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
) -> std::io::Result<()> {
    // drain the header block (per-line bounded: probe headers are tiny,
    // and an adversarial endless header must not buffer unboundedly)
    let mut hdr = String::new();
    loop {
        hdr.clear();
        if std::io::Read::take(&mut *reader, 64 << 10).read_line(&mut hdr)? == 0
            || hdr.trim().is_empty()
        {
            break;
        }
    }
    writer.write_all(&http_response_bytes(inner, request_line))?;
    writer.flush()
}

/// Renders a full HTTP probe response (status line + headers + body) for
/// `/healthz`, `/metrics` and friends. Shared by the blocking path and
/// the event loop.
pub(crate) fn http_response_bytes(inner: &Inner, request_line: &str) -> Vec<u8> {
    inner.metrics.http_requests.fetch_add(1, Ordering::Relaxed);
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let (status, content_type, body) = match path {
        "/healthz" => {
            let draining = inner.draining();
            let mut fields = vec![
                (
                    "status".to_string(),
                    Json::Str(if draining { "draining" } else { "ok" }.into()),
                ),
                (
                    "uptime_ms".into(),
                    Json::Num(inner.metrics.uptime_ms() as f64),
                ),
                (
                    "queue_depth".into(),
                    Json::Num(inner.metrics.queue_depth.load(Ordering::SeqCst) as f64),
                ),
                (
                    "inflight".into(),
                    Json::Num(inner.metrics.inflight.load(Ordering::SeqCst) as f64),
                ),
                ("draining".into(), Json::Bool(draining)),
            ];
            if let Some(cluster) = &inner.cluster {
                fields.push(("node".into(), Json::Str(cluster.node_id().to_string())));
                fields.push(("ring_nodes".into(), Json::Num(cluster.ring().len() as f64)));
                fields.push((
                    "peers".into(),
                    Json::Obj(
                        cluster
                            .peer_states()
                            .into_iter()
                            .map(|(id, st)| (id, Json::Str(st.name().into())))
                            .collect(),
                    ),
                ));
            }
            let body = Json::Obj(fields).to_string();
            // 503 while draining: load balancers and the cluster failure
            // detector both read drain as leave-intent, not liveness
            let status = if draining {
                "503 Service Unavailable"
            } else {
                "200 OK"
            };
            (status, "application/json", body)
        }
        "/metrics" => {
            let mut body = inner.metrics.render_prometheus(
                inner.cache.entries(),
                inner.cache.bytes(),
                inner.draining(),
            );
            // solver-level series (expansions, per-engine wins, cover-cache
            // traffic) live in the process-wide htd-trace registry
            let reg = htd_trace::registry();
            let hits = reg.counter_value("htd_cover_cache_hits_total").unwrap_or(0);
            let misses = reg
                .counter_value("htd_cover_cache_misses_total")
                .unwrap_or(0);
            use std::fmt::Write as _;
            let _ = writeln!(
                body,
                "# HELP htd_cover_cache_hit_ratio Hit fraction of the exact cover cache.\n\
                 # TYPE htd_cover_cache_hit_ratio gauge\n\
                 htd_cover_cache_hit_ratio {}",
                hits as f64 / (hits + misses).max(1) as f64
            );
            reg.render_prometheus(&mut body);
            ("200 OK", "text/plain; version=0.0.4", body)
        }
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };
    let mut out = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    if !request_line.starts_with("HEAD ") {
        out.extend_from_slice(body.as_bytes());
    }
    out
}
