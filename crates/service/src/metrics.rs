//! Service observability: lock-free counters, latency/width histograms,
//! and the Prometheus text rendering behind `GET /metrics`.
//!
//! Everything is plain atomics so the hot path (one solve) costs a handful
//! of relaxed increments. Quantiles (p50/p95) are interpolated from the
//! fixed-bucket latency histogram at scrape time, never maintained online.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Instant;

use htd_core::Json;

/// Upper bounds (ms) of the solve-latency histogram buckets; the last
/// bucket is +Inf.
pub const LATENCY_BUCKETS_MS: [f64; 14] = [
    0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
];

/// Upper bounds (seconds) for the queue-wait / solve-time split. Finer at
/// the low end: queue waits on a healthy server are sub-millisecond.
pub const SECONDS_BUCKETS: [f64; 12] = [
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 5.0,
];

/// Widths `0..=MAX_TRACKED_WIDTH-1` get their own counter; anything wider
/// lands in the overflow bucket.
pub const MAX_TRACKED_WIDTH: usize = 32;

/// A fixed-bucket histogram (counts + sum), Prometheus-compatible. The
/// bucket bounds — and therefore the observation unit — are chosen at
/// construction (`LATENCY_BUCKETS_MS` for the ms histograms,
/// `SECONDS_BUCKETS` for the queue/solve split).
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [f64],
    /// counts[i] = observations ≤ bounds[i]; the final slot is the +Inf
    /// bucket. Cumulative form is produced at render time.
    counts: Vec<AtomicU64>,
    /// Sum in millionths of the observation unit (µs for ms histograms).
    sum_micro: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new(bounds: &'static [f64]) -> Histogram {
        Histogram {
            bounds,
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_micro: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation (in the unit of the bucket bounds).
    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_micro
            .fetch_add((v * 1e6).max(0.0) as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// The bucket bounds this histogram was built with.
    pub fn bounds(&self) -> &'static [f64] {
        self.bounds
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations, in the observation unit.
    pub fn sum(&self) -> f64 {
        self.sum_micro.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Interpolated quantile (`0.0..=1.0`) from the buckets; 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        let mut lo = 0.0;
        for (i, c) in self.counts.iter().enumerate() {
            let n = c.load(Ordering::Relaxed);
            let hi = self
                .bounds
                .get(i)
                .copied()
                .unwrap_or(2.0 * self.bounds[self.bounds.len() - 1]);
            if seen + n >= target {
                // linear interpolation inside the bucket
                let into = (target - seen) as f64 / n.max(1) as f64;
                return lo + (hi - lo) * into;
            }
            seen += n;
            lo = hi;
        }
        lo
    }
}

/// All counters and gauges of one server instance.
#[derive(Debug)]
pub struct Metrics {
    start: Instant,
    /// Total requests by kind.
    pub solve_requests: AtomicU64,
    /// `answer` (conjunctive-query) requests.
    pub answer_requests: AtomicU64,
    /// `ping` requests.
    pub ping_requests: AtomicU64,
    /// `stats` requests.
    pub stats_requests: AtomicU64,
    /// `put_cert` pushes received from cluster peers.
    pub put_cert_requests: AtomicU64,
    /// HTTP scrapes (`/healthz` + `/metrics`).
    pub http_requests: AtomicU64,
    /// Responses with status `ok`.
    pub ok_responses: AtomicU64,
    /// Responses with status `rejected` (backpressure).
    pub rejected_responses: AtomicU64,
    /// Responses with status `timeout` (deadline expired in queue).
    pub timeout_responses: AtomicU64,
    /// Responses with status `error`.
    pub error_responses: AtomicU64,
    /// Responses with status `shutting_down`.
    pub shedding_responses: AtomicU64,
    /// Cache hits / misses (solve requests with cache enabled).
    pub cache_hits: AtomicU64,
    /// Cache misses.
    pub cache_misses: AtomicU64,
    /// Requests currently waiting in the work queue.
    pub queue_depth: AtomicI64,
    /// Solves currently running on workers.
    pub inflight: AtomicI64,
    /// Wall-clock latency of cold solves (worker time), ms.
    pub solve_latency: Histogram,
    /// End-to-end service latency of `ok` responses (incl. cache hits), ms.
    pub request_latency: Histogram,
    /// Time a job spent waiting in the work queue, seconds.
    pub queue_wait: Histogram,
    /// Time a job spent actually solving on a worker, seconds. Together
    /// with [`Metrics::queue_wait`] this splits end-to-end latency into
    /// its queueing and compute parts.
    pub solve_time: Histogram,
    /// In-flight solves cancelled by the deadline watchdog.
    pub deadline_cancellations: AtomicU64,
    /// Upper widths served, by value (capped at [`MAX_TRACKED_WIDTH`]).
    pub widths: Vec<AtomicU64>,
    /// Exact answers served.
    pub exact_served: AtomicU64,
    /// Inexact (anytime-bound) answers served.
    pub inexact_served: AtomicU64,
    /// Cluster: non-owned requests forwarded to a ring owner.
    pub cluster_forwards: AtomicU64,
    /// Cluster: forwards that failed over past at least one owner.
    pub cluster_failovers: AtomicU64,
    /// Cluster: every owner unusable — the request was solved locally.
    pub cluster_local_fallbacks: AtomicU64,
    /// Cluster: certificates replicated to a live replica.
    pub cluster_replications: AtomicU64,
    /// Cluster: certificates queued as hints for unreachable owners.
    pub cluster_handoffs_queued: AtomicU64,
    /// Cluster: hinted certificates delivered after recovery.
    pub cluster_handoffs_delivered: AtomicU64,
    /// Cluster: pushed certificates the local oracle verified + admitted.
    pub cluster_certs_accepted: AtomicU64,
    /// Cluster: pushed certificates the local oracle rejected.
    pub cluster_cert_rejects: AtomicU64,
    /// Cluster: failed peer health probes.
    pub cluster_probe_failures: AtomicU64,
    /// Cluster: ring membership size (self included; 0 = not clustered).
    pub cluster_ring_nodes: AtomicI64,
    /// Cluster: peers currently in each failure-detector state.
    pub cluster_peers_alive: AtomicI64,
    /// Peers the detector currently suspects.
    pub cluster_peers_suspect: AtomicI64,
    /// Peers the detector declared down.
    pub cluster_peers_down: AtomicI64,
    /// Peers that announced a graceful drain (leave-intent).
    pub cluster_peers_leaving: AtomicI64,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Fresh, all-zero metrics anchored at "now".
    pub fn new() -> Metrics {
        Metrics {
            start: Instant::now(),
            solve_requests: AtomicU64::new(0),
            answer_requests: AtomicU64::new(0),
            ping_requests: AtomicU64::new(0),
            put_cert_requests: AtomicU64::new(0),
            stats_requests: AtomicU64::new(0),
            http_requests: AtomicU64::new(0),
            ok_responses: AtomicU64::new(0),
            rejected_responses: AtomicU64::new(0),
            timeout_responses: AtomicU64::new(0),
            error_responses: AtomicU64::new(0),
            shedding_responses: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            queue_depth: AtomicI64::new(0),
            inflight: AtomicI64::new(0),
            solve_latency: Histogram::new(&LATENCY_BUCKETS_MS),
            request_latency: Histogram::new(&LATENCY_BUCKETS_MS),
            queue_wait: Histogram::new(&SECONDS_BUCKETS),
            solve_time: Histogram::new(&SECONDS_BUCKETS),
            deadline_cancellations: AtomicU64::new(0),
            widths: (0..=MAX_TRACKED_WIDTH).map(|_| AtomicU64::new(0)).collect(),
            exact_served: AtomicU64::new(0),
            inexact_served: AtomicU64::new(0),
            cluster_forwards: AtomicU64::new(0),
            cluster_failovers: AtomicU64::new(0),
            cluster_local_fallbacks: AtomicU64::new(0),
            cluster_replications: AtomicU64::new(0),
            cluster_handoffs_queued: AtomicU64::new(0),
            cluster_handoffs_delivered: AtomicU64::new(0),
            cluster_certs_accepted: AtomicU64::new(0),
            cluster_cert_rejects: AtomicU64::new(0),
            cluster_probe_failures: AtomicU64::new(0),
            cluster_ring_nodes: AtomicI64::new(0),
            cluster_peers_alive: AtomicI64::new(0),
            cluster_peers_suspect: AtomicI64::new(0),
            cluster_peers_down: AtomicI64::new(0),
            cluster_peers_leaving: AtomicI64::new(0),
        }
    }

    /// Milliseconds since server start.
    pub fn uptime_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    /// Records a served outcome (width + exactness).
    pub fn record_served(&self, upper: u32, exact: bool) {
        let idx = (upper as usize).min(MAX_TRACKED_WIDTH);
        self.widths[idx].fetch_add(1, Ordering::Relaxed);
        if exact {
            self.exact_served.fetch_add(1, Ordering::Relaxed);
        } else {
            self.inexact_served.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The Prometheus text exposition (version 0.0.4) for `GET /metrics`.
    pub fn render_prometheus(
        &self,
        cache_entries: u64,
        cache_bytes: u64,
        draining: bool,
    ) -> String {
        use std::fmt::Write as _;
        let mut o = String::with_capacity(4096);
        let c = |o: &mut String, name: &str, help: &str, v: u64| {
            let _ = writeln!(o, "# HELP {name} {help}");
            let _ = writeln!(o, "# TYPE {name} counter");
            let _ = writeln!(o, "{name} {v}");
        };
        let g = |o: &mut String, name: &str, help: &str, v: f64| {
            let _ = writeln!(o, "# HELP {name} {help}");
            let _ = writeln!(o, "# TYPE {name} gauge");
            let _ = writeln!(o, "{name} {v}");
        };
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);

        let _ = writeln!(o, "# HELP htd_requests_total Requests by command.");
        let _ = writeln!(o, "# TYPE htd_requests_total counter");
        for (k, v) in [
            ("solve", ld(&self.solve_requests)),
            ("answer", ld(&self.answer_requests)),
            ("ping", ld(&self.ping_requests)),
            ("stats", ld(&self.stats_requests)),
            ("put_cert", ld(&self.put_cert_requests)),
            ("http", ld(&self.http_requests)),
        ] {
            let _ = writeln!(o, "htd_requests_total{{cmd=\"{k}\"}} {v}");
        }
        let _ = writeln!(o, "# HELP htd_responses_total Responses by status.");
        let _ = writeln!(o, "# TYPE htd_responses_total counter");
        for (k, v) in [
            ("ok", ld(&self.ok_responses)),
            ("rejected", ld(&self.rejected_responses)),
            ("timeout", ld(&self.timeout_responses)),
            ("error", ld(&self.error_responses)),
            ("shutting_down", ld(&self.shedding_responses)),
        ] {
            let _ = writeln!(o, "htd_responses_total{{status=\"{k}\"}} {v}");
        }
        c(
            &mut o,
            "htd_cache_hits_total",
            "Result-cache hits.",
            ld(&self.cache_hits),
        );
        c(
            &mut o,
            "htd_cache_misses_total",
            "Result-cache misses.",
            ld(&self.cache_misses),
        );
        g(
            &mut o,
            "htd_cache_entries",
            "Entries in the result cache.",
            cache_entries as f64,
        );
        g(
            &mut o,
            "htd_cache_bytes",
            "Approximate result-cache size.",
            cache_bytes as f64,
        );
        g(
            &mut o,
            "htd_queue_depth",
            "Requests waiting in the work queue.",
            self.queue_depth.load(Ordering::Relaxed) as f64,
        );
        g(
            &mut o,
            "htd_inflight",
            "Solves currently running.",
            self.inflight.load(Ordering::Relaxed) as f64,
        );
        g(
            &mut o,
            "htd_draining",
            "1 while a graceful shutdown drains in-flight work.",
            if draining { 1.0 } else { 0.0 },
        );
        g(
            &mut o,
            "htd_uptime_ms",
            "Milliseconds since start.",
            self.uptime_ms() as f64,
        );
        c(
            &mut o,
            "htd_exact_served_total",
            "Exact answers served.",
            ld(&self.exact_served),
        );
        c(
            &mut o,
            "htd_inexact_served_total",
            "Anytime-bound answers served.",
            ld(&self.inexact_served),
        );
        c(
            &mut o,
            "htd_deadline_cancellations_total",
            "In-flight solves cancelled by the deadline watchdog.",
            ld(&self.deadline_cancellations),
        );

        // cluster series, zero outside cluster mode (stable schema)
        for (name, help, v) in [
            (
                "htd_cluster_forwards_total",
                "Non-owned requests forwarded to their ring owner.",
                ld(&self.cluster_forwards),
            ),
            (
                "htd_cluster_failovers_total",
                "Forwards that failed over past at least one owner.",
                ld(&self.cluster_failovers),
            ),
            (
                "htd_cluster_local_fallbacks_total",
                "Requests solved locally because every owner was unusable.",
                ld(&self.cluster_local_fallbacks),
            ),
            (
                "htd_cluster_replications_total",
                "Certificates replicated to live replicas.",
                ld(&self.cluster_replications),
            ),
            (
                "htd_cluster_handoffs_queued_total",
                "Certificates queued as hints for unreachable owners.",
                ld(&self.cluster_handoffs_queued),
            ),
            (
                "htd_cluster_handoffs_delivered_total",
                "Hinted certificates delivered after peer recovery.",
                ld(&self.cluster_handoffs_delivered),
            ),
            (
                "htd_cluster_certs_accepted_total",
                "Pushed certificates the local oracle verified and admitted.",
                ld(&self.cluster_certs_accepted),
            ),
            (
                "htd_cluster_cert_rejects_total",
                "Pushed certificates the local oracle rejected.",
                ld(&self.cluster_cert_rejects),
            ),
            (
                "htd_cluster_probe_failures_total",
                "Failed peer health probes.",
                ld(&self.cluster_probe_failures),
            ),
        ] {
            c(&mut o, name, help, v);
        }
        g(
            &mut o,
            "htd_cluster_ring_size",
            "Ring membership size, self included (0 = not clustered).",
            self.cluster_ring_nodes.load(Ordering::Relaxed) as f64,
        );
        let _ = writeln!(
            o,
            "# HELP htd_cluster_peers Peers by failure-detector state."
        );
        let _ = writeln!(o, "# TYPE htd_cluster_peers gauge");
        for (state, v) in [
            ("alive", &self.cluster_peers_alive),
            ("suspect", &self.cluster_peers_suspect),
            ("down", &self.cluster_peers_down),
            ("leaving", &self.cluster_peers_leaving),
        ] {
            let _ = writeln!(
                o,
                "htd_cluster_peers{{state=\"{state}\"}} {}",
                v.load(Ordering::Relaxed)
            );
        }

        for (hist, name, help) in [
            (
                &self.solve_latency,
                "htd_solve_latency_ms",
                "Cold solve latency (worker wall clock), ms.",
            ),
            (
                &self.request_latency,
                "htd_request_latency_ms",
                "End-to-end request latency of ok responses, ms.",
            ),
            (
                &self.queue_wait,
                "htd_queue_seconds",
                "Time jobs waited in the work queue, seconds.",
            ),
            (
                &self.solve_time,
                "htd_solve_seconds",
                "Time jobs spent solving on a worker, seconds.",
            ),
        ] {
            let _ = writeln!(o, "# HELP {name} {help}");
            let _ = writeln!(o, "# TYPE {name} histogram");
            let mut cum = 0u64;
            for (i, b) in hist.bounds().iter().enumerate() {
                cum += hist.counts[i].load(Ordering::Relaxed);
                let _ = writeln!(o, "{name}_bucket{{le=\"{b}\"}} {cum}");
            }
            cum += hist.counts[hist.bounds().len()].load(Ordering::Relaxed);
            let _ = writeln!(o, "{name}_bucket{{le=\"+Inf\"}} {cum}");
            let _ = writeln!(o, "{name}_sum {}", hist.sum());
            let _ = writeln!(o, "{name}_count {}", hist.count());
            let _ = writeln!(o, "{name}_p50 {}", hist.quantile(0.5));
            let _ = writeln!(o, "{name}_p95 {}", hist.quantile(0.95));
        }

        let _ = writeln!(o, "# HELP htd_width_served_total Served upper widths.");
        let _ = writeln!(o, "# TYPE htd_width_served_total counter");
        for (w, v) in self.widths.iter().enumerate() {
            let v = v.load(Ordering::Relaxed);
            if v > 0 {
                if w == MAX_TRACKED_WIDTH {
                    let _ = writeln!(
                        o,
                        "htd_width_served_total{{width=\"{MAX_TRACKED_WIDTH}+\"}} {v}"
                    );
                } else {
                    let _ = writeln!(o, "htd_width_served_total{{width=\"{w}\"}} {v}");
                }
            }
        }
        o
    }

    /// The JSON snapshot behind the `stats` command and `/healthz`.
    pub fn snapshot_json(&self, cache_entries: u64, cache_bytes: u64, draining: bool) -> Json {
        let ld = |a: &AtomicU64| Json::Num(a.load(Ordering::Relaxed) as f64);
        Json::Obj(vec![
            ("uptime_ms".into(), Json::Num(self.uptime_ms() as f64)),
            ("draining".into(), Json::Bool(draining)),
            ("solve_requests".into(), ld(&self.solve_requests)),
            ("answer_requests".into(), ld(&self.answer_requests)),
            ("ok".into(), ld(&self.ok_responses)),
            ("rejected".into(), ld(&self.rejected_responses)),
            ("timeouts".into(), ld(&self.timeout_responses)),
            ("errors".into(), ld(&self.error_responses)),
            ("cache_hits".into(), ld(&self.cache_hits)),
            ("cache_misses".into(), ld(&self.cache_misses)),
            ("cache_entries".into(), Json::Num(cache_entries as f64)),
            ("cache_bytes".into(), Json::Num(cache_bytes as f64)),
            (
                "queue_depth".into(),
                Json::Num(self.queue_depth.load(Ordering::Relaxed) as f64),
            ),
            (
                "inflight".into(),
                Json::Num(self.inflight.load(Ordering::Relaxed) as f64),
            ),
            (
                "solve_p50_ms".into(),
                Json::Num(self.solve_latency.quantile(0.5)),
            ),
            (
                "solve_p95_ms".into(),
                Json::Num(self.solve_latency.quantile(0.95)),
            ),
            (
                "queue_p95_ms".into(),
                Json::Num(self.queue_wait.quantile(0.95) * 1e3),
            ),
            (
                "deadline_cancellations".into(),
                ld(&self.deadline_cancellations),
            ),
            ("cluster_forwards".into(), ld(&self.cluster_forwards)),
            ("cluster_failovers".into(), ld(&self.cluster_failovers)),
            (
                "cluster_cert_rejects".into(),
                ld(&self.cluster_cert_rejects),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles() {
        let h = Histogram::new(&LATENCY_BUCKETS_MS);
        for _ in 0..90 {
            h.observe(1.5); // bucket (1, 2]
        }
        for _ in 0..10 {
            h.observe(400.0); // bucket (250, 500]
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.5);
        assert!(p50 > 1.0 && p50 <= 2.0, "{p50}");
        let p95 = h.quantile(0.95);
        assert!(p95 > 250.0 && p95 <= 500.0, "{p95}");
        assert_eq!(Histogram::new(&LATENCY_BUCKETS_MS).quantile(0.5), 0.0);
    }

    #[test]
    fn seconds_histograms_render_with_their_own_buckets() {
        let m = Metrics::new();
        m.queue_wait.observe(0.0007); // bucket (0.0005, 0.001]
        m.solve_time.observe(0.3); // bucket (0.25, 0.5]
        m.deadline_cancellations.fetch_add(2, Ordering::Relaxed);
        let text = m.render_prometheus(0, 0, false);
        assert!(text.contains("htd_queue_seconds_bucket{le=\"0.001\"} 1"));
        assert!(text.contains("htd_queue_seconds_count 1"));
        assert!(text.contains("htd_solve_seconds_bucket{le=\"0.5\"} 1"));
        assert!(text.contains("htd_solve_seconds_sum 0.3"));
        assert!(text.contains("htd_deadline_cancellations_total 2"));
        let snap = m.snapshot_json(0, 0, false);
        assert_eq!(
            snap.get("deadline_cancellations").unwrap().as_u64(),
            Some(2)
        );
        let q = snap.get("queue_p95_ms").unwrap().as_f64().unwrap();
        assert!(q > 0.5 && q <= 1.0, "{q}");
    }

    #[test]
    fn cluster_series_render_with_states() {
        let m = Metrics::new();
        m.cluster_forwards.fetch_add(3, Ordering::Relaxed);
        m.cluster_cert_rejects.fetch_add(1, Ordering::Relaxed);
        m.cluster_peers_down.store(2, Ordering::Relaxed);
        m.cluster_ring_nodes.store(3, Ordering::Relaxed);
        let text = m.render_prometheus(0, 0, false);
        assert!(text.contains("htd_cluster_forwards_total 3"));
        assert!(text.contains("htd_cluster_cert_rejects_total 1"));
        assert!(text.contains("htd_cluster_peers{state=\"down\"} 2"));
        assert!(text.contains("htd_cluster_peers{state=\"alive\"} 0"));
        assert!(text.contains("htd_cluster_ring_size 3"));
        let snap = m.snapshot_json(0, 0, false);
        assert_eq!(snap.get("cluster_forwards").unwrap().as_u64(), Some(3));
        assert_eq!(snap.get("cluster_cert_rejects").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn prometheus_rendering_contains_series() {
        let m = Metrics::new();
        m.solve_requests.fetch_add(3, Ordering::Relaxed);
        m.cache_hits.fetch_add(2, Ordering::Relaxed);
        m.solve_latency.observe(7.0);
        m.record_served(4, true);
        m.record_served(100, false);
        let text = m.render_prometheus(5, 1024, false);
        assert!(text.contains("htd_requests_total{cmd=\"solve\"} 3"));
        assert!(text.contains("htd_cache_hits_total 2"));
        assert!(text.contains("htd_solve_latency_ms_bucket{le=\"10\"} 1"));
        assert!(text.contains("htd_solve_latency_ms_count 1"));
        assert!(text.contains("htd_width_served_total{width=\"4\"} 1"));
        assert!(text.contains("htd_width_served_total{width=\"32+\"} 1"));
        assert!(text.contains("htd_cache_entries 5"));
        // snapshot mirrors the counters
        let snap = m.snapshot_json(5, 1024, true);
        assert_eq!(snap.get("cache_hits").unwrap().as_u64(), Some(2));
        assert_eq!(snap.get("draining").unwrap().as_bool(), Some(true));
    }
}
