//! Concurrency integration tests for the event-loop front end: one
//! poll-driven thread owning accept/read/write for every connection,
//! with per-connection state machines and pipelined batches.
//!
//! Unix-only by construction — the readiness loop is built on poll(2);
//! on other platforms the server falls back to the blocking front end.
#![cfg(unix)]

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use htd_core::Json;
use htd_hypergraph::{gen, io};
use htd_search::Objective;
use htd_service::{
    Client, Command, InstanceFormat, Request, Response, ServeOptions, Server, SolveRequest, Status,
};

fn start(opts: ServeOptions) -> (Server, String) {
    let server = Server::start(opts).expect("bind loopback");
    let addr = server.addr().to_string();
    (server, addr)
}

fn loop_opts() -> ServeOptions {
    ServeOptions {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        cache_mb: 8,
        queue_capacity: 64,
        default_deadline_ms: 10_000,
        log: false,
        verify_responses: false,
        event_loop: true,
        ..ServeOptions::default()
    }
}

fn solve_line(id: &str, objective: Objective, instance: &str, deadline_ms: u64) -> String {
    let req = Request {
        id: Some(id.to_string()),
        cmd: Command::Solve(SolveRequest {
            objective,
            format: InstanceFormat::Auto,
            instance: instance.to_string(),
            deadline_ms: Some(deadline_ms),
            budget: None,
            threads: None,
            engines: None,
            use_cache: true,
            forwarded: false,
        }),
    };
    format!("{}\n", req.to_json())
}

fn read_response(reader: &mut BufReader<TcpStream>) -> Response {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    assert!(!line.is_empty(), "connection closed before a response");
    Response::from_json(&Json::parse(line.trim()).expect("valid JSON")).expect("valid response")
}

/// A slow-loris connection trickling a frame one byte at a time must
/// neither stall other clients (single loop thread!) nor lose its own
/// request once the newline finally lands.
#[test]
fn slow_loris_partial_frames_do_not_block_other_connections() {
    let (server, addr) = start(loop_opts());

    // warm one instance so the fast client's requests are cache hits
    let grid = io::write_pace_gr(&gen::grid_graph(3, 3));
    let mut warm = Client::connect(&addr).unwrap();
    let r = warm
        .solve(Objective::Treewidth, InstanceFormat::Auto, &grid, None)
        .unwrap();
    assert_eq!(r.status, Status::Ok, "{:?}", r.error);

    let loris_addr = addr.clone();
    let loris = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(&loris_addr).unwrap();
        let line = "{\"cmd\":\"ping\",\"id\":\"slow\"}\n";
        for b in line.as_bytes() {
            stream.write_all(std::slice::from_ref(b)).unwrap();
            stream.flush().unwrap();
            std::thread::sleep(Duration::from_millis(3));
        }
        let mut reader = BufReader::new(stream);
        read_response(&mut reader)
    });

    // while the loris trickles, a well-behaved client gets fast answers
    let mut fast = Client::connect(&addr).unwrap();
    for _ in 0..10 {
        let t = Instant::now();
        let r = fast
            .solve(Objective::Treewidth, InstanceFormat::Auto, &grid, None)
            .unwrap();
        assert_eq!(r.status, Status::Ok);
        assert!(r.cached);
        assert!(
            t.elapsed() < Duration::from_secs(5),
            "cached request stalled behind a slow-loris connection"
        );
    }

    let slow_response = loris.join().unwrap();
    assert_eq!(slow_response.status, Status::Pong);
    assert_eq!(slow_response.id.as_deref(), Some("slow"));

    warm.shutdown().unwrap();
    server.wait();
}

/// Connections that die mid-frame must be reaped without poisoning the
/// loop: the server keeps answering afterwards.
#[test]
fn mid_frame_disconnects_are_reaped() {
    let (server, addr) = start(loop_opts());
    for i in 0..25 {
        let mut stream = TcpStream::connect(&addr).unwrap();
        // a valid prefix of a frame, never terminated
        let partial = format!("{{\"cmd\":\"solve\",\"id\":\"dead{i}\",\"objective");
        stream.write_all(partial.as_bytes()).unwrap();
        drop(stream); // RST/FIN mid-frame
    }
    // the loop survived all of it and still answers
    let mut client = Client::connect(&addr).unwrap();
    client.ping().unwrap();
    let grid = io::write_pace_gr(&gen::grid_graph(3, 3));
    let r = client
        .solve(Objective::Treewidth, InstanceFormat::Auto, &grid, None)
        .unwrap();
    assert_eq!(r.status, Status::Ok, "{:?}", r.error);
    client.shutdown().unwrap();
    server.wait();
}

/// Pipelined batch where a cheap request is sent *after* an expensive
/// one on the same connection: the cheap response must come back first
/// — the whole point of matching responses by id instead of by order.
#[test]
fn pipelined_responses_complete_out_of_order() {
    let (server, addr) = start(ServeOptions {
        threads: 1,
        ..loop_opts()
    });

    let grid = io::write_pace_gr(&gen::grid_graph(3, 3));
    let mut warm = Client::connect(&addr).unwrap();
    let r = warm
        .solve(Objective::Treewidth, InstanceFormat::Auto, &grid, None)
        .unwrap();
    assert_eq!(r.status, Status::Ok);

    // one connection, two frames back to back: a cold ~600ms solve,
    // then a cache hit
    let hard = io::write_pace_gr(&gen::random_gnp(40, 0.5, 123));
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
        .write_all(solve_line("slow", Objective::Treewidth, &hard, 600).as_bytes())
        .unwrap();
    stream
        .write_all(solve_line("fast", Objective::Treewidth, &grid, 600).as_bytes())
        .unwrap();
    let mut reader = BufReader::new(stream);

    let first = read_response(&mut reader);
    assert_eq!(
        first.id.as_deref(),
        Some("fast"),
        "the cached response must overtake the in-flight solve"
    );
    assert_eq!(first.status, Status::Ok);
    assert!(first.cached);

    let second = read_response(&mut reader);
    assert_eq!(second.id.as_deref(), Some("slow"));
    assert!(
        second.status == Status::Ok || second.status == Status::Timeout,
        "{:?}",
        second.error
    );

    warm.shutdown().unwrap();
    server.wait();
}

/// 500 concurrent connections submit short-deadline solves while the
/// single worker is wedged on a long-deadline blocker. No worker will
/// touch them before they expire, so the event loop itself must
/// synthesize their timeouts at `deadline + REPLY_GRACE` — one response
/// per connection, on time, none dropped, none duplicated (the late
/// worker evictions that follow must be swallowed, not double-sent).
#[test]
fn deadline_expiry_under_500_concurrent_connections() {
    let (server, addr) = start(ServeOptions {
        threads: 1,
        queue_capacity: 2048,
        ..loop_opts()
    });
    let n = 500usize;
    let deadline_ms = 300u64;

    // wedge the worker: a dense instance with a 6 s deadline
    let blocker_addr = addr.clone();
    let blocker = std::thread::spawn(move || {
        let mut c = Client::connect(&blocker_addr).unwrap();
        let hard = io::write_pace_gr(&gen::random_gnp(40, 0.5, 424242));
        c.solve(
            Objective::Treewidth,
            InstanceFormat::Auto,
            &hard,
            Some(6_000),
        )
        .unwrap()
    });
    std::thread::sleep(Duration::from_millis(200));

    let t0 = Instant::now();
    let mut streams: Vec<TcpStream> = Vec::with_capacity(n);
    for i in 0..n {
        let mut s = TcpStream::connect(&addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        let inst = io::write_pace_gr(&gen::random_gnp(18, 0.4, i as u64));
        s.write_all(
            solve_line(&format!("r{i}"), Objective::Treewidth, &inst, deadline_ms).as_bytes(),
        )
        .unwrap();
        streams.push(s);
    }

    let mut timeout = 0usize;
    let mut other = 0usize;
    for (i, s) in streams.iter_mut().enumerate() {
        let mut reader = BufReader::new(s.try_clone().unwrap());
        let r = read_response(&mut reader);
        assert_eq!(r.id.as_deref(), Some(format!("r{i}").as_str()));
        match r.status {
            Status::Timeout => {
                timeout += 1;
                // synthesized by the loop at deadline + grace, never later
                assert!(
                    r.elapsed_ms < 4_000.0,
                    "r{i} expired late: {:.0}ms",
                    r.elapsed_ms
                );
            }
            Status::Ok | Status::Rejected => other += 1,
            s => panic!("connection {i}: unexpected status {}", s.name()),
        }
    }
    assert_eq!(timeout + other, n);
    assert!(
        timeout > n * 9 / 10,
        "worker is wedged: almost all of {n} must expire ({timeout} timeout, {other} other)"
    );
    // all n expiries resolve in a few seconds, not n * deadline
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "deadline sweep took {:?}",
        t0.elapsed()
    );

    // the worker will eventually pop the expired jobs and try to answer
    // them again; those late completions must be dropped, not duplicated
    let b = blocker.join().unwrap();
    assert_eq!(b.status, Status::Ok, "{:?}", b.error);
    std::thread::sleep(Duration::from_millis(500));
    for (i, s) in streams.iter_mut().take(20).enumerate() {
        s.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
        let mut buf = [0u8; 64];
        use std::io::Read;
        match s.read(&mut buf) {
            Ok(0) => {} // server closed: fine
            Ok(m) => panic!("connection {i} got {m} extra bytes: a duplicate response"),
            Err(_) => {} // nothing to read within 50ms: fine
        }
    }

    Client::connect(&addr).unwrap().shutdown().unwrap();
    server.wait();
}

/// Graceful drain with a pipelined batch in flight: every admitted
/// request still gets its response (solved or expired) before the
/// server exits, and the connection sees a clean close afterwards.
#[test]
fn graceful_drain_answers_inflight_batch() {
    let (server, addr) = start(ServeOptions {
        threads: 1,
        ..loop_opts()
    });
    let grid = io::write_pace_gr(&gen::grid_graph(3, 3));
    let mut warm = Client::connect(&addr).unwrap();
    assert_eq!(
        warm.solve(Objective::Treewidth, InstanceFormat::Auto, &grid, None)
            .unwrap()
            .status,
        Status::Ok
    );

    let hard = io::write_pace_gr(&gen::random_gnp(40, 0.5, 321));
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(solve_line("inflight", Objective::Treewidth, &hard, 800).as_bytes())
        .unwrap();
    for i in 0..3 {
        stream
            .write_all(solve_line(&format!("hit{i}"), Objective::Treewidth, &grid, 800).as_bytes())
            .unwrap();
    }
    // let the batch get admitted, then start the drain
    std::thread::sleep(Duration::from_millis(150));
    server.request_shutdown();

    let mut reader = BufReader::new(stream);
    let mut got: Vec<String> = (0..4)
        .map(|_| read_response(&mut reader))
        .map(|r| {
            assert!(
                r.status == Status::Ok || r.status == Status::Timeout,
                "{:?} for {:?}",
                r.status.name(),
                r.id
            );
            r.id.unwrap_or_default()
        })
        .collect();
    got.sort();
    assert_eq!(got, vec!["hit0", "hit1", "hit2", "inflight"]);
    // after the batch is answered the server closes the connection
    let mut line = String::new();
    assert_eq!(reader.read_line(&mut line).unwrap_or(0), 0);
    server.wait();
}
