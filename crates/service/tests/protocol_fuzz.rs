//! Loop-driven protocol fuzzing against both front ends (blocking and
//! event loop): seeded garbage, frames split at every byte boundary,
//! and oversize floods. The server must answer every terminated frame
//! with a structured response (or hang up after a structured protocol
//! error) and must **never panic or hang** — every socket here carries
//! a read timeout, and each phase ends by proving the server still
//! answers `ping`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use htd_core::Json;
use htd_hypergraph::{gen, io};
use htd_search::Objective;
use htd_service::{Client, InstanceFormat, ServeOptions, Server, Status};

fn start(event_loop: bool) -> (Server, String) {
    let server = Server::start(ServeOptions {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        cache_mb: 8,
        queue_capacity: 32,
        default_deadline_ms: 5_000,
        log: false,
        verify_responses: false,
        event_loop,
        ..ServeOptions::default()
    })
    .expect("bind loopback");
    let addr = server.addr().to_string();
    (server, addr)
}

fn front_ends() -> Vec<bool> {
    if cfg!(unix) {
        vec![false, true]
    } else {
        vec![false]
    }
}

fn connect(addr: &str) -> TcpStream {
    let s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s
}

/// Reads one line; `None` means the server hung up (allowed), otherwise
/// the line must be a structured JSON response carrying a status.
fn read_structured(reader: &mut BufReader<TcpStream>) -> Option<Json> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => None,
        Ok(_) => {
            let doc = Json::parse(line.trim())
                .unwrap_or_else(|e| panic!("unstructured reply {line:?}: {e:?}"));
            assert!(
                doc.get("status").and_then(|v| v.as_str()).is_some(),
                "reply without status: {line:?}"
            );
            Some(doc)
        }
        // a read timeout here would mean the server hung — fail loudly
        Err(e) => panic!("server neither answered nor hung up: {e}"),
    }
}

/// Every prefix/suffix split of a valid frame, delivered in two writes
/// with a flush and a pause in between, must produce exactly the same
/// response as the unsplit frame — partial-frame buffering must never
/// truncate, duplicate, or merge frames.
#[test]
fn split_at_every_byte_preserves_framing() {
    for event_loop in front_ends() {
        let (server, addr) = start(event_loop);
        // warm the solve used below so split requests answer instantly
        let grid = io::write_pace_gr(&gen::grid_graph(3, 3));
        let mut warm = Client::connect(&addr).unwrap();
        assert_eq!(
            warm.solve(Objective::Treewidth, InstanceFormat::Auto, &grid, None)
                .unwrap()
                .status,
            Status::Ok
        );

        let ping = "{\"cmd\":\"ping\",\"id\":\"p\"}\n".to_string();
        let solve = {
            let (req, _) =
                warm.solve_request(Objective::Treewidth, InstanceFormat::Auto, &grid, None);
            format!("{}\n", req.to_json())
        };
        for (frame, want) in [(&ping, "pong"), (&solve, "ok")] {
            for cut in 0..frame.len() {
                let mut s = connect(&addr);
                s.write_all(&frame.as_bytes()[..cut]).unwrap();
                s.flush().unwrap();
                std::thread::sleep(Duration::from_millis(1));
                s.write_all(&frame.as_bytes()[cut..]).unwrap();
                let mut reader = BufReader::new(s);
                let doc = read_structured(&mut reader).expect("a terminated frame gets a reply");
                assert_eq!(
                    doc.get("status").and_then(|v| v.as_str()),
                    Some(want),
                    "front_end={event_loop} frame split at byte {cut}"
                );
            }
        }
        Client::connect(&addr).unwrap().shutdown().unwrap();
        server.wait();
    }
}

/// Seeded garbage — random bytes, random lengths, always terminated by
/// a newline or EOF — must only ever produce structured errors or a
/// clean hangup. 150 shapes per front end.
#[test]
fn seeded_garbage_never_panics_or_hangs() {
    for event_loop in front_ends() {
        let (server, addr) = start(event_loop);
        let mut x = 0x0dd_b1a5ed_u64 ^ u64::from(event_loop);
        for i in 0..150 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let len = (x >> 33) as usize % 4096;
            let mut bytes: Vec<u8> = (0..len)
                .map(|j| {
                    let z = x.wrapping_add(j as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    (z >> 56) as u8
                })
                // newline bytes inside would just split the garbage into
                // more garbage frames; strip them so each shape is one frame
                .filter(|&b| b != b'\n')
                .collect();
            bytes.push(b'\n');
            let mut s = connect(&addr);
            s.write_all(&bytes).unwrap();
            let _ = s.shutdown(std::net::Shutdown::Write);
            let mut reader = BufReader::new(s);
            if let Some(doc) = read_structured(&mut reader) {
                assert_eq!(
                    doc.get("status").and_then(|v| v.as_str()),
                    Some("error"),
                    "garbage shape {i} must answer a structured error"
                );
                assert_eq!(doc.get("code").and_then(|v| v.as_u64()), Some(2));
            }
        }
        // after 150 garbage shapes the server is still healthy
        let mut client = Client::connect(&addr).unwrap();
        client.ping().unwrap();
        client.shutdown().unwrap();
        server.wait();
    }
}

/// Frames beyond `MAX_FRAME` with no newline in sight: the server must
/// cut the flood off with a structured protocol error after a bounded
/// number of bytes and hang up — on both front ends, for JSON-looking
/// and binary-looking floods alike.
#[test]
fn oversize_floods_get_bounded_structured_errors() {
    for event_loop in front_ends() {
        let (server, addr) = start(event_loop);
        for fill in [b'x', b'{'] {
            let mut s = connect(&addr);
            s.set_write_timeout(Some(Duration::from_millis(200)))
                .unwrap();
            let chunk = vec![fill; 1 << 20];
            for _ in 0..12 {
                // once the server errors out and closes, writes fail —
                // that is the bounded cutoff working
                if s.write_all(&chunk).is_err() {
                    break;
                }
            }
            let mut reader = BufReader::new(s);
            let doc =
                read_structured(&mut reader).expect("flood must be answered before the hangup");
            assert_eq!(doc.get("status").and_then(|v| v.as_str()), Some("error"));
            assert_eq!(doc.get("code").and_then(|v| v.as_u64()), Some(2));
            let msg = doc
                .get("error")
                .and_then(|v| v.as_str())
                .unwrap_or_default()
                .to_string();
            assert!(msg.contains("frame exceeds"), "{msg}");
            // and then the connection is gone
            let mut rest = String::new();
            let mut inner = reader.into_inner();
            let _ = inner.set_read_timeout(Some(Duration::from_secs(10)));
            // an Err means reset by the server: equally closed
            if let Ok(n) = inner.read_to_string(&mut rest) {
                assert_eq!(n, 0, "data after the protocol error: {rest:?}");
            }
        }
        let mut client = Client::connect(&addr).unwrap();
        client.ping().unwrap();
        client.shutdown().unwrap();
        server.wait();
    }
}
