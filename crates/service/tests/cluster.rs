//! Fault-tolerance tests of the cluster layer: real servers on loopback
//! ports, killed without drain (`Server::kill`, the in-process analog of
//! `kill -9`), partitioned via the chaos hook, and fed tampered
//! certificates — answers must stay correct through all of it.

use std::time::{Duration, Instant};

use htd_hypergraph::canonical::canonical_form;
use htd_hypergraph::{gen, io};
use htd_search::Objective;
use htd_service::{
    parse_problem, CertPush, Client, ClusterConfig, InstanceFormat, PeerSpec, ServeOptions, Server,
    Status,
};

/// Reserves a loopback port by binding it and letting it go; the servers
/// rebind it with `SO_REUSEADDR`, which also lets the restart tests
/// reclaim a killed node's port without waiting out TIME_WAIT.
fn free_port() -> u16 {
    std::net::TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .port()
}

fn cluster_config(ids: &[&str], addrs: &[String], me: usize, replication: usize) -> ClusterConfig {
    let peers = ids
        .iter()
        .zip(addrs)
        .enumerate()
        .filter(|(i, _)| *i != me)
        .map(|(_, (id, addr))| PeerSpec {
            id: id.to_string(),
            addr: addr.clone(),
        })
        .collect();
    let mut cfg = ClusterConfig::new(ids[me], peers);
    cfg.replication = replication;
    // fast detector so state transitions land inside test timeouts
    cfg.probe_interval_ms = 10;
    cfg.probe_timeout_ms = 200;
    cfg
}

fn start_node(ids: &[&str], addrs: &[String], me: usize, replication: usize) -> Server {
    Server::start(ServeOptions {
        addr: addrs[me].clone(),
        threads: 2,
        cache_mb: 8,
        queue_capacity: 16,
        default_deadline_ms: 10_000,
        log: false,
        verify_responses: false,
        event_loop: true,
        reuse_addr: true,
        cluster: Some(cluster_config(ids, addrs, me, replication)),
        ..ServeOptions::default()
    })
    .expect("bind loopback")
}

fn start_cluster(ids: &[&str], replication: usize) -> (Vec<Server>, Vec<String>) {
    let addrs: Vec<String> = ids
        .iter()
        .map(|_| format!("127.0.0.1:{}", free_port()))
        .collect();
    let servers = (0..ids.len())
        .map(|me| start_node(ids, &addrs, me, replication))
        .collect();
    (servers, addrs)
}

fn fingerprint_of(instance: &str) -> u64 {
    let (_, h) = parse_problem(InstanceFormat::PaceGr, instance, Objective::Treewidth).unwrap();
    canonical_form(&h).fingerprint
}

/// Generates instances until one's primary owner is `owner` and `other`
/// is not an owner at all (so a request to `other` must forward).
fn instance_owned_by(cluster: &htd_service::Cluster, owner: &str, other: &str) -> String {
    let r = cluster.config().replication;
    for seed in 0..2_000u64 {
        let inst = io::write_pace_gr(&gen::random_gnp(10, 0.35, seed));
        let fp = fingerprint_of(&inst);
        let owners = cluster.ring().owners(fp, r);
        if owners.first() == Some(&owner) && !owners.contains(&other) {
            return inst;
        }
    }
    panic!("no instance with primary owner {owner} avoiding {other} in 2000 seeds");
}

fn wait_for(what: &str, timeout: Duration, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn forwarding_routes_to_the_owner_and_stamps_its_node_id() {
    let ids = ["a", "b", "c"];
    let (mut servers, addrs) = start_cluster(&ids, 2);
    let c = servers.remove(2);
    let inst = instance_owned_by(c.cluster().unwrap(), "a", "c");

    let mut client = Client::connect(&addrs[2]).unwrap();
    let r = client
        .solve(Objective::Treewidth, InstanceFormat::PaceGr, &inst, None)
        .unwrap();
    assert_eq!(r.status, Status::Ok, "{:?}", r.error);
    // the response reports where the work ran: the key's owner, not the
    // node the client happened to dial
    assert_eq!(r.node.as_deref(), Some("a"));
    assert!(
        c.metrics()
            .cluster_forwards
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );

    // a key this node owns is solved locally
    let local = instance_owned_by(c.cluster().unwrap(), "c", "a");
    let r = client
        .solve(Objective::Treewidth, InstanceFormat::PaceGr, &local, None)
        .unwrap();
    assert_eq!(r.status, Status::Ok, "{:?}", r.error);
    assert_eq!(r.node.as_deref(), Some("c"));

    drop(client);
    for s in servers {
        s.kill();
    }
    c.kill();
}

#[test]
fn killing_the_owner_mid_pipeline_fails_over_with_correct_answers() {
    let ids = ["a", "b", "c"];
    let (mut servers, addrs) = start_cluster(&ids, 2);
    let node_a = servers.remove(0);
    let gateway = addrs[2].clone();

    // four distinct keys, all primarily owned by the node we will kill
    let ring_view = node_a.cluster().unwrap();
    let instances: Vec<String> = (0..4)
        .map(|_| instance_owned_by(ring_view, "a", "c"))
        .collect();

    // ground truth from the live owner, before any failures
    let mut client = Client::connect(&gateway).unwrap();
    let mut truth = Vec::new();
    for inst in &instances {
        let r = client
            .solve(Objective::Treewidth, InstanceFormat::PaceGr, inst, None)
            .unwrap();
        assert_eq!(r.status, Status::Ok, "{:?}", r.error);
        let o = r.outcome.unwrap();
        assert!(o.exact);
        truth.push(o.upper);
    }

    // pipeline the same batch again (cache off so the work is real) and
    // kill -9 the owner while it is in flight
    let mut ids_sent = Vec::new();
    for inst in &instances {
        let (mut req, id) = client.solve_request(
            Objective::Treewidth,
            InstanceFormat::PaceGr,
            inst,
            Some(10_000),
        );
        if let htd_service::Command::Solve(s) = &mut req.cmd {
            s.use_cache = false;
        }
        client.send(&req).unwrap();
        ids_sent.push(id);
    }
    node_a.kill();

    // every pipelined request must come back (zero lost) with the true
    // width (zero wrong) — whether the owner answered before dying, a
    // replica took over, or the gateway fell back to solving locally
    let mut got = std::collections::HashMap::new();
    for _ in 0..instances.len() {
        let r = client.recv().unwrap();
        assert_eq!(r.status, Status::Ok, "{:?}", r.error);
        got.insert(r.id.clone().unwrap(), r.outcome.unwrap());
    }
    for (id, want) in ids_sent.iter().zip(&truth) {
        let o = &got[id];
        assert!(o.exact, "failover answer must stay exact");
        assert_eq!(o.upper, *want, "wrong answer after owner kill");
    }

    // the dead owner is really dead: a fresh request to the gateway for
    // one of its keys still answers correctly without it
    let r = client
        .solve(
            Objective::Treewidth,
            InstanceFormat::PaceGr,
            &instances[0],
            None,
        )
        .unwrap();
    assert_eq!(r.status, Status::Ok, "{:?}", r.error);
    assert_ne!(r.node.as_deref(), Some("a"));
    assert_eq!(r.outcome.unwrap().upper, truth[0]);

    for s in servers {
        s.kill();
    }
}

#[test]
fn partition_walks_suspect_down_and_recovery_delivers_hints() {
    use std::sync::atomic::Ordering;
    let ids = ["a", "b"];
    // R=1: each key has exactly one owner, so a partitioned owner forces
    // the local-fallback + hint path
    let (mut servers, addrs) = start_cluster(&ids, 1);
    let node_b = servers.remove(1);
    let node_a = servers.remove(0);
    let a = node_a.cluster().unwrap();

    wait_for("b alive", Duration::from_secs(5), || {
        a.peer_state("b") == Some(htd_service::PeerState::Alive)
    });

    // chaos hook: from a's point of view, b drops off the network
    a.set_partitioned("b", true);
    wait_for("b suspect", Duration::from_secs(5), || {
        a.peer_state("b") != Some(htd_service::PeerState::Alive)
    });
    wait_for("b down", Duration::from_secs(5), || {
        a.peer_state("b") == Some(htd_service::PeerState::Down)
    });
    assert!(
        node_a
            .metrics()
            .cluster_probe_failures
            .load(Ordering::Relaxed)
            >= 4
    );

    // a key owned by b, requested at a while b is "down": every owner is
    // unusable, so a answers locally and parks the certificate as a hint
    let inst = instance_owned_by(a, "b", "__nobody__");
    let mut client = Client::connect(&addrs[0]).unwrap();
    let r = client
        .solve(Objective::Treewidth, InstanceFormat::PaceGr, &inst, None)
        .unwrap();
    assert_eq!(r.status, Status::Ok, "{:?}", r.error);
    assert_eq!(r.node.as_deref(), Some("a"), "local fallback expected");
    assert!(
        node_a
            .metrics()
            .cluster_local_fallbacks
            .load(Ordering::Relaxed)
            >= 1
    );
    assert!(
        node_a
            .metrics()
            .cluster_handoffs_queued
            .load(Ordering::Relaxed)
            >= 1
    );

    // the partition heals: b walks back to alive and the parked hint is
    // delivered, re-verified by b's oracle, and admitted to b's cache
    a.set_partitioned("b", false);
    wait_for("b alive again", Duration::from_secs(5), || {
        a.peer_state("b") == Some(htd_service::PeerState::Alive)
    });
    wait_for("hint delivered", Duration::from_secs(10), || {
        node_a
            .metrics()
            .cluster_handoffs_delivered
            .load(Ordering::Relaxed)
            >= 1
    });
    wait_for("cert accepted at b", Duration::from_secs(10), || {
        node_b
            .metrics()
            .cluster_certs_accepted
            .load(Ordering::Relaxed)
            >= 1
    });
    assert_eq!(
        node_b
            .metrics()
            .cluster_cert_rejects
            .load(Ordering::Relaxed),
        0
    );

    // b now answers the handed-off key from its own cache
    let mut client_b = Client::connect(&addrs[1]).unwrap();
    let r = client_b
        .solve(Objective::Treewidth, InstanceFormat::PaceGr, &inst, None)
        .unwrap();
    assert_eq!(r.status, Status::Ok, "{:?}", r.error);
    assert!(r.cached, "handed-off certificate should warm b's cache");

    node_a.kill();
    node_b.kill();
}

#[test]
fn tampered_handoff_certificate_is_rejected_by_the_oracle() {
    use std::sync::atomic::Ordering;
    let ids = ["a", "b"];
    let (mut servers, addrs) = start_cluster(&ids, 2);
    let node_b = servers.remove(1);
    let node_a = servers.remove(0);

    // a genuine certificate, solved out-of-band
    let inst = io::write_pace_gr(&gen::random_gnp(10, 0.35, 7));
    let (problem, h) = parse_problem(InstanceFormat::PaceGr, &inst, Objective::Treewidth).unwrap();
    let canon = canonical_form(&h);
    let outcome = htd_search::solve(&problem, &htd_search::SearchConfig::default()).unwrap();
    assert!(outcome.exact && outcome.witness.is_some());
    let genuine = CertPush {
        objective: Objective::Treewidth,
        format: InstanceFormat::PaceGr,
        instance: inst.clone(),
        fingerprint_hex: canon.hex(),
        effort_ms: 5,
        outcome: outcome.clone(),
        from: Some("a".into()),
    };

    let mut client_b = Client::connect(&addrs[1]).unwrap();
    let r = client_b.put_cert(genuine.clone()).unwrap();
    assert_eq!(r.status, Status::Ok, "{:?}", r.error);
    assert!(
        node_b
            .metrics()
            .cluster_certs_accepted
            .load(Ordering::Relaxed)
            >= 1
    );

    // tamper 1: the claimed width is lowered — the witness no longer
    // proves the claim and the oracle must refuse it
    let mut lying = genuine.clone();
    lying.outcome.upper = lying.outcome.upper.saturating_sub(1);
    lying.outcome.lower = lying.outcome.upper;
    let r = client_b.put_cert(lying).unwrap();
    assert_eq!(r.status, Status::Error, "a lowered width must be rejected");

    // tamper 2: the fingerprint does not match the instance
    let mut mismatched = genuine;
    mismatched.fingerprint_hex = format!("{:016x}", canon.fingerprint ^ 1);
    let r = client_b.put_cert(mismatched).unwrap();
    assert_eq!(r.status, Status::Error);
    assert!(
        node_b
            .metrics()
            .cluster_cert_rejects
            .load(Ordering::Relaxed)
            >= 2
    );

    // the tampered pushes poisoned nothing: solving the instance at b
    // still yields the true width
    let r = client_b
        .solve(Objective::Treewidth, InstanceFormat::PaceGr, &inst, None)
        .unwrap();
    assert_eq!(r.status, Status::Ok, "{:?}", r.error);
    let o = r.outcome.unwrap();
    assert_eq!(
        o.upper, outcome.upper,
        "tampered cert must not change answers"
    );

    node_a.kill();
    node_b.kill();
}
