//! Crash- and tamper-tolerance tests for the persistent certificate
//! store: truncation at randomized kill points, single-byte tampering,
//! and a fingerprint-collision-free round trip over a seeded corpus.
//!
//! The property under test is the store's one-line contract: *it can
//! cost time, never correctness*. However the log is damaged, a reopen
//! must (a) never serve an entry the oracle has not re-proved and
//! (b) leave the server able to answer every request by recomputing.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;

use htd_hypergraph::{gen, io};
use htd_search::{solve, Objective, SearchConfig};
use htd_service::{
    parse_problem, CertStore, Client, InstanceFormat, ServeOptions, Server, Status, StoreRecord,
};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("htd-store-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Solves one instance outside the server and packages it as a record.
fn solved_record(objective: Objective, format: InstanceFormat, instance: String) -> StoreRecord {
    let (problem, key) = parse_problem(format, &instance, objective).unwrap();
    let outcome = solve(&problem, &SearchConfig::budgeted(300_000)).unwrap();
    let canon = htd_hypergraph::canonical::canonical_form(&key);
    StoreRecord {
        objective: objective.name(),
        format,
        instance,
        fingerprint: canon.fingerprint,
        canonical: canon.bytes,
        effort_ms: 25,
        outcome,
    }
}

fn seeded_corpus() -> Vec<StoreRecord> {
    let mut recs = Vec::new();
    for k in 3..=5 {
        recs.push(solved_record(
            Objective::Treewidth,
            InstanceFormat::PaceGr,
            io::write_pace_gr(&gen::grid_graph(k, k)),
        ));
    }
    for seed in 0..6u64 {
        recs.push(solved_record(
            Objective::Treewidth,
            InstanceFormat::PaceGr,
            io::write_pace_gr(&gen::random_gnp(12 + (seed as u32 % 4), 0.4, seed)),
        ));
    }
    for k in 2..=3 {
        recs.push(solved_record(
            Objective::GeneralizedHypertreeWidth,
            InstanceFormat::Hg,
            io::write_hg(&gen::grid2d(k)),
        ));
    }
    recs
}

/// Kill -9 mid-append leaves an arbitrary prefix of the log on disk.
/// Simulate it exhaustively-ish: truncate the log at 64 seeded offsets
/// (plus every record boundary) and reopen each time. Every entry that
/// survives must be one we actually appended, re-proved by the oracle;
/// a cut mid-record must be counted as crash residue, not an error.
#[test]
fn truncation_at_random_kill_points_never_serves_corrupt_entries() {
    let dir = tmp_dir("trunc");
    let corpus = seeded_corpus();
    let (store, loaded) = CertStore::open(&dir).unwrap();
    assert!(loaded.is_empty());
    let mut boundaries = vec![0u64];
    for rec in &corpus {
        assert!(store.append(rec).unwrap());
        boundaries.push(store.bytes());
    }
    drop(store);
    let log = dir.join("store.log");
    let full = std::fs::read(&log).unwrap();
    assert_eq!(full.len() as u64, *boundaries.last().unwrap());

    let mut cuts: Vec<u64> = boundaries.clone();
    let mut x = 0xdead_beefu64;
    for _ in 0..64 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        cuts.push((x >> 16) % (full.len() as u64 + 1));
    }
    let known: std::collections::HashSet<u64> = corpus.iter().map(|r| r.fingerprint).collect();

    for cut in cuts {
        std::fs::write(&log, &full[..cut as usize]).unwrap();
        let (reopened, recovered) = CertStore::open(&dir).unwrap();
        let stats = reopened.stats();
        drop(reopened);
        // whole-record prefixes load; a mid-record cut is crash residue
        let at_boundary = boundaries.contains(&cut);
        assert_eq!(
            stats.truncated,
            u64::from(!at_boundary),
            "cut at {cut} of {}",
            full.len()
        );
        assert_eq!(stats.rejected, 0, "a clean truncation is not tampering");
        let whole_records_before_cut = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
        assert_eq!(recovered.len(), whole_records_before_cut, "cut at {cut}");
        for rec in &recovered {
            assert!(
                known.contains(&rec.fingerprint),
                "recovered a fingerprint we never appended"
            );
        }
        // recovery truncates the residue away: the next open is clean
        let (again, recovered_again) = CertStore::open(&dir).unwrap();
        assert_eq!(again.stats().truncated, 0);
        assert_eq!(recovered_again.len(), whole_records_before_cut);
    }
}

/// After a truncating crash the next append must produce a clean log —
/// the torn tail may not corrupt the record that follows it.
#[test]
fn append_after_crash_recovery_produces_clean_log() {
    let dir = tmp_dir("reappend");
    let rec3 = solved_record(
        Objective::Treewidth,
        InstanceFormat::PaceGr,
        io::write_pace_gr(&gen::grid_graph(3, 3)),
    );
    let rec4 = solved_record(
        Objective::Treewidth,
        InstanceFormat::PaceGr,
        io::write_pace_gr(&gen::grid_graph(4, 4)),
    );
    let (store, _) = CertStore::open(&dir).unwrap();
    store.append(&rec3).unwrap();
    let keep = store.bytes();
    store.append(&rec4).unwrap();
    drop(store);
    let log = dir.join("store.log");
    let full = std::fs::read(&log).unwrap();
    // crash mid-way through the second record
    std::fs::write(&log, &full[..keep as usize + 7]).unwrap();

    let (store, recovered) = CertStore::open(&dir).unwrap();
    assert_eq!(recovered.len(), 1);
    assert_eq!(store.stats().truncated, 1);
    assert!(store.append(&rec4).unwrap(), "re-append after recovery");
    drop(store);
    let (store, recovered) = CertStore::open(&dir).unwrap();
    assert_eq!(
        store.stats(),
        htd_service::StoreStats {
            loaded: 2,
            rejected: 0,
            truncated: 0,
        }
    );
    assert_eq!(recovered.len(), 2);
}

fn http_metrics(addr: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut reader = BufReader::new(stream);
    let mut text = String::new();
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line).unwrap() == 0 {
            break;
        }
        text.push_str(&line);
    }
    text
}

fn metric_value(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(name))
        .and_then(|rest| rest.trim().parse().ok())
        .unwrap_or_else(|| panic!("missing {name} in:\n{metrics}"))
}

/// End-to-end tamper test through a real server: populate the store,
/// flip one byte in a record payload, reboot. The oracle (or checksum)
/// must reject the damaged entry, `htd_store_rejects_total` must say
/// so, and the request whose certificate was lost must fall through to
/// a fresh recompute — never a wrong answer.
#[test]
fn tampered_byte_is_rejected_on_reopen_and_request_recomputes() {
    let dir = tmp_dir("tamper");
    let corpus: Vec<(Objective, String)> = vec![
        (
            Objective::Treewidth,
            io::write_pace_gr(&gen::grid_graph(4, 4)),
        ),
        (
            Objective::Treewidth,
            io::write_pace_gr(&gen::grid_graph(5, 5)),
        ),
        (
            Objective::GeneralizedHypertreeWidth,
            io::write_hg(&gen::grid2d(3)),
        ),
    ];
    let opts = || ServeOptions {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        default_deadline_ms: 10_000,
        log: false,
        verify_responses: false,
        store_dir: Some(dir.clone()),
        ..ServeOptions::default()
    };

    // populate the store
    let server = Server::start(opts()).unwrap();
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    for (obj, text) in &corpus {
        let r = client
            .solve(*obj, InstanceFormat::Auto, text, Some(10_000))
            .unwrap();
        assert_eq!(r.status, Status::Ok, "{:?}", r.error);
    }
    client.shutdown().unwrap();
    server.wait();

    // flip one byte in the middle of the first record's payload: the
    // framing stays intact, so only the checksum/oracle can catch it
    let log = dir.join("store.log");
    let mut bytes = std::fs::read(&log).unwrap();
    assert!(bytes.len() > 32, "store.log should have content");
    let len0 = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
    let at = 16 + len0 / 2;
    bytes[at] ^= 0x41;
    std::fs::write(&log, &bytes).unwrap();

    // reboot onto the tampered store
    let server = Server::start(opts()).unwrap();
    let addr = server.addr().to_string();
    // the registry is process-global (other tests in this binary also
    // open stores), so assert monotone: the reject counter must be live
    // and nonzero after loading a tampered log
    let metrics = http_metrics(&addr);
    let rejects = metric_value(&metrics, "htd_store_rejects_total");
    assert!(
        rejects >= 1,
        "tampered record must be counted as rejected:\n{metrics}"
    );

    // every request still answers correctly — lost certificates
    // recompute, surviving ones may serve from the warmed cache
    let mut client = Client::connect(&addr).unwrap();
    let mut recomputed = 0;
    for (obj, text) in &corpus {
        let r = client
            .solve(*obj, InstanceFormat::Auto, text, Some(10_000))
            .unwrap();
        assert_eq!(r.status, Status::Ok, "{:?}", r.error);
        if !r.cached {
            recomputed += 1;
        }
    }
    assert!(
        recomputed >= 1,
        "at least the tampered entry must fall through to a recompute"
    );
    client.shutdown().unwrap();
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Round trip over the seeded corpus: distinct instances must have
/// distinct fingerprints (collision-free), and a reopen must return
/// exactly the appended set with byte-identical canonical keys.
#[test]
fn seeded_corpus_round_trips_without_fingerprint_collisions() {
    let dir = tmp_dir("corpus");
    let corpus = seeded_corpus();

    // (objective, fingerprint) keys must be unique across the corpus
    let mut keys: Vec<(&str, u64)> = corpus
        .iter()
        .map(|r| (r.objective, r.fingerprint))
        .collect();
    keys.sort_unstable();
    let before = keys.len();
    keys.dedup();
    assert_eq!(keys.len(), before, "fingerprint collision in the corpus");

    let (store, _) = CertStore::open(&dir).unwrap();
    for rec in &corpus {
        assert!(store.append(rec).unwrap());
        assert!(!store.append(rec).unwrap(), "duplicate keys are refused");
    }
    drop(store);

    let (store, recovered) = CertStore::open(&dir).unwrap();
    assert_eq!(store.stats().loaded, corpus.len() as u64);
    assert_eq!(store.stats().rejected, 0);
    assert_eq!(recovered.len(), corpus.len());
    for rec in &corpus {
        let back = recovered
            .iter()
            .find(|r| r.objective == rec.objective && r.fingerprint == rec.fingerprint)
            .expect("appended record recovered");
        assert_eq!(back.canonical, rec.canonical, "canonical key round-trips");
        assert_eq!(back.outcome.upper, rec.outcome.upper);
        assert_eq!(back.outcome.lower, rec.outcome.lower);
        assert_eq!(back.outcome.exact, rec.outcome.exact);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
