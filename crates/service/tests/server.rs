//! End-to-end tests: a real server on a loopback port, driven through
//! the TCP client and raw HTTP probes.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use htd_hypergraph::{gen, io};
use htd_search::Objective;
use htd_service::{Client, InstanceFormat, ServeOptions, Server, Status};

fn start(opts: ServeOptions) -> (Server, String) {
    let server = Server::start(opts).expect("bind loopback");
    let addr = server.addr().to_string();
    (server, addr)
}

fn quiet_opts() -> ServeOptions {
    ServeOptions {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        cache_mb: 8,
        queue_capacity: 8,
        default_deadline_ms: 10_000,
        log: false,
        verify_responses: false,
        ..ServeOptions::default()
    }
}

fn http_get(addr: &str, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut reader = BufReader::new(stream);
    let mut status = String::new();
    reader.read_line(&mut status).unwrap();
    let mut body = String::new();
    let mut line = String::new();
    // skip headers
    loop {
        line.clear();
        if reader.read_line(&mut line).unwrap() == 0 || line.trim().is_empty() {
            break;
        }
    }
    loop {
        line.clear();
        if reader.read_line(&mut line).unwrap() == 0 {
            break;
        }
        body.push_str(&line);
    }
    (status, body)
}

#[test]
fn solve_roundtrip_and_cache_hit() {
    let (server, addr) = start(quiet_opts());
    let mut client = Client::connect(&addr).unwrap();
    client.ping().unwrap();

    let grid = io::write_pace_gr(&gen::grid_graph(4, 4));
    let cold = client
        .solve(
            Objective::Treewidth,
            InstanceFormat::Auto,
            &grid,
            Some(5_000),
        )
        .unwrap();
    assert_eq!(cold.status, Status::Ok, "{:?}", cold.error);
    assert!(!cold.cached);
    let outcome = cold.outcome.as_ref().unwrap();
    assert_eq!(outcome.exact_width(), Some(4));
    let fp = cold.fingerprint.clone().unwrap();

    // same instance, relabeled by a different vertex order in the file,
    // must hit the cache via the canonical form
    let warm = client
        .solve(
            Objective::Treewidth,
            InstanceFormat::Auto,
            &grid,
            Some(5_000),
        )
        .unwrap();
    assert_eq!(warm.status, Status::Ok);
    assert!(warm.cached, "second identical request must be a cache hit");
    assert_eq!(warm.fingerprint.as_deref(), Some(fp.as_str()));
    assert_eq!(warm.outcome.unwrap().exact_width(), Some(4));

    // ghw on a hypergraph over the wire in .hg format
    let hg = io::write_hg(&gen::grid2d(3));
    let r = client
        .solve(
            Objective::GeneralizedHypertreeWidth,
            InstanceFormat::Hg,
            &hg,
            Some(5_000),
        )
        .unwrap();
    assert_eq!(r.status, Status::Ok, "{:?}", r.error);
    assert!(r.outcome.unwrap().upper >= 1);

    let stats = client.stats().unwrap();
    assert!(stats.get("cache_hits").unwrap().as_u64().unwrap() >= 1);

    client.shutdown().unwrap();
    server.wait();
}

#[test]
fn verify_responses_oracle_checks_before_caching() {
    let (server, addr) = start(ServeOptions {
        verify_responses: true,
        ..quiet_opts()
    });
    let mut client = Client::connect(&addr).unwrap();

    // honest solves pass the oracle, get cached, and leave the failure
    // counter at zero
    let grid = io::write_pace_gr(&gen::grid_graph(4, 4));
    let cold = client
        .solve(
            Objective::Treewidth,
            InstanceFormat::Auto,
            &grid,
            Some(5_000),
        )
        .unwrap();
    assert_eq!(cold.status, Status::Ok, "{:?}", cold.error);
    assert_eq!(cold.outcome.unwrap().exact_width(), Some(4));
    let warm = client
        .solve(
            Objective::Treewidth,
            InstanceFormat::Auto,
            &grid,
            Some(5_000),
        )
        .unwrap();
    assert!(warm.cached, "verified response must still be cacheable");

    let hg = io::write_hg(&gen::grid2d(3));
    let r = client
        .solve(
            Objective::GeneralizedHypertreeWidth,
            InstanceFormat::Hg,
            &hg,
            Some(5_000),
        )
        .unwrap();
    assert_eq!(r.status, Status::Ok, "{:?}", r.error);

    let (_, metrics) = http_get(&addr, "/metrics");
    assert!(
        metrics.contains("htd_oracle_failures_total 0"),
        "oracle failure counter must exist at zero:\n{metrics}"
    );

    client.shutdown().unwrap();
    server.wait();
}

#[test]
fn deadline_bounded_cold_solve_returns_in_time() {
    let (server, addr) = start(quiet_opts());
    let mut client = Client::connect(&addr).unwrap();

    // dense 40-vertex random graph: exact treewidth is far out of reach,
    // so the solve runs to its deadline and must come back anytime-style
    let hard = io::write_pace_gr(&gen::random_gnp(40, 0.5, 42));
    let deadline_ms = 400u64;
    let t0 = Instant::now();
    let r = client
        .solve(
            Objective::Treewidth,
            InstanceFormat::Auto,
            &hard,
            Some(deadline_ms),
        )
        .unwrap();
    let elapsed = t0.elapsed();
    assert_eq!(r.status, Status::Ok, "{:?}", r.error);
    let outcome = r.outcome.unwrap();
    assert!(
        !outcome.exact,
        "instance must not be solved exactly in 400ms"
    );
    assert!(outcome.upper < u32::MAX);
    assert!(outcome.lower <= outcome.upper);
    // acceptance criterion: never exceed the deadline by more than 100ms
    assert!(
        elapsed <= Duration::from_millis(deadline_ms + 100),
        "took {elapsed:?} for a {deadline_ms}ms deadline"
    );

    client.shutdown().unwrap();
    server.wait();
}

#[test]
fn backpressure_rejects_and_queued_requests_time_out() {
    let (server, addr) = start(ServeOptions {
        threads: 1,
        queue_capacity: 1,
        ..quiet_opts()
    });
    let hard = io::write_pace_gr(&gen::random_gnp(40, 0.5, 7));

    // occupy the single worker with a long-deadline solve
    let addr_a = addr.clone();
    let hard_a = hard.clone();
    let blocker = std::thread::spawn(move || {
        let mut c = Client::connect(&addr_a).unwrap();
        c.solve(
            Objective::Treewidth,
            InstanceFormat::Auto,
            &hard_a,
            Some(1_500),
        )
        .unwrap()
    });
    std::thread::sleep(Duration::from_millis(300));

    // fill the queue with a request whose deadline expires while queued
    let addr_b = addr.clone();
    let queued = std::thread::spawn(move || {
        let mut c = Client::connect(&addr_b).unwrap();
        // distinct instance so it cannot be served from cache
        let other = io::write_pace_gr(&gen::random_gnp(38, 0.5, 8));
        c.solve(
            Objective::Treewidth,
            InstanceFormat::Auto,
            &other,
            Some(200),
        )
        .unwrap()
    });
    std::thread::sleep(Duration::from_millis(100));

    // queue (capacity 1) now full: this request must be rejected at once
    let mut c = Client::connect(&addr).unwrap();
    let third = io::write_pace_gr(&gen::random_gnp(36, 0.5, 9));
    let t0 = Instant::now();
    let r = c
        .solve(
            Objective::Treewidth,
            InstanceFormat::Auto,
            &third,
            Some(2_000),
        )
        .unwrap();
    assert_eq!(r.status, Status::Rejected, "{:?}", r.error);
    assert!(r.retry_after_ms.unwrap_or(0) >= 10);
    assert!(
        t0.elapsed() < Duration::from_millis(500),
        "rejection must not queue"
    );

    let queued_response = queued.join().unwrap();
    assert_eq!(
        queued_response.status,
        Status::Timeout,
        "a request whose deadline expires in the queue is evicted: {:?}",
        queued_response.error
    );
    let blocker_response = blocker.join().unwrap();
    assert_eq!(blocker_response.status, Status::Ok);

    c.shutdown().unwrap();
    server.wait();
}

#[test]
fn healthz_and_metrics_respond_and_errors_carry_codes() {
    let (server, addr) = start(quiet_opts());

    let (status, body) = http_get(&addr, "/healthz");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("\"status\":\"ok\""), "{body}");

    let mut client = Client::connect(&addr).unwrap();
    // parse error → code 2
    let r = client
        .solve(
            Objective::Treewidth,
            InstanceFormat::PaceGr,
            "p tw garbage",
            None,
        )
        .unwrap();
    assert_eq!(r.status, Status::Error);
    assert_eq!(r.code, Some(2));
    // invalid instance (uncovered vertex for ghw) → code 3
    let r = client
        .solve(
            Objective::GeneralizedHypertreeWidth,
            InstanceFormat::PaceGr,
            "p tw 3 1\n1 2\n",
            None,
        )
        .unwrap();
    assert_eq!(r.status, Status::Error);
    assert_eq!(r.code, Some(3));

    // a real solve, then the metrics must expose it
    let grid = io::write_pace_gr(&gen::grid_graph(3, 3));
    let ok = client
        .solve(
            Objective::Treewidth,
            InstanceFormat::Auto,
            &grid,
            Some(5_000),
        )
        .unwrap();
    assert_eq!(ok.status, Status::Ok);

    let (status, metrics) = http_get(&addr, "/metrics");
    assert!(status.contains("200"), "{status}");
    for series in [
        "htd_requests_total{cmd=\"solve\"}",
        "htd_responses_total{status=\"ok\"}",
        "htd_cache_misses_total",
        "htd_solve_latency_ms_p50",
        "htd_width_served_total",
        "htd_queue_depth",
        // queueing vs compute latency split
        "htd_queue_seconds_bucket",
        "htd_queue_seconds_count 1",
        "htd_solve_seconds_bucket",
        "htd_solve_seconds_count 1",
        "htd_deadline_cancellations_total",
        // solver-level series appended from the htd-trace registry
        "htd_solver_expansions_total",
        "htd_cover_cache_hit_ratio",
    ] {
        assert!(metrics.contains(series), "missing {series} in:\n{metrics}");
    }
    // the solve above ran through the portfolio: its per-engine expansion
    // series and win attribution must be visible
    assert!(
        metrics.contains("htd_solver_expansions{engine="),
        "missing per-engine expansions in:\n{metrics}"
    );
    assert!(
        metrics.contains("htd_solver_wins{engine="),
        "missing per-engine wins in:\n{metrics}"
    );

    client.shutdown().unwrap();
    server.wait();
}

#[test]
fn graceful_shutdown_drains_inflight_work() {
    let (server, addr) = start(ServeOptions {
        threads: 1,
        ..quiet_opts()
    });
    let hard = io::write_pace_gr(&gen::random_gnp(40, 0.5, 99));

    // a solve that takes ~1s occupies the worker…
    let addr_a = addr.clone();
    let inflight = std::thread::spawn(move || {
        let mut c = Client::connect(&addr_a).unwrap();
        c.solve(
            Objective::Treewidth,
            InstanceFormat::Auto,
            &hard,
            Some(1_000),
        )
        .unwrap()
    });
    std::thread::sleep(Duration::from_millis(250));

    // …drain starts while it is running
    let mut c = Client::connect(&addr).unwrap();
    c.shutdown().unwrap();

    // probes stay up during the drain but flip to 503 (load balancers
    // and cluster peers read drain as leave-intent); new solves refused
    let (status, body) = http_get(&addr, "/healthz");
    assert!(status.contains("503"), "{status}");
    assert!(body.contains("\"status\":\"draining\""), "{body}");
    assert!(body.contains("\"draining\":true"), "{body}");
    let refused = c
        .solve(
            Objective::Treewidth,
            InstanceFormat::Auto,
            &io::write_pace_gr(&gen::grid_graph(3, 3)),
            Some(1_000),
        )
        .unwrap();
    assert_eq!(refused.status, Status::ShuttingDown);

    // the in-flight solve still completes with a real answer
    let r = inflight.join().unwrap();
    assert_eq!(r.status, Status::Ok, "{:?}", r.error);
    assert!(r.outcome.unwrap().upper < u32::MAX);

    server.wait();
}

#[test]
fn oversized_and_malformed_frames_get_structured_errors() {
    let (server, addr) = start(quiet_opts());

    // a 100 MB garbage frame with no newline: the server must answer with
    // a structured protocol error after at most MAX_FRAME bytes and hang
    // up, never buffering the rest
    {
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream
            .set_write_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        let chunk = vec![b'x'; 1 << 20];
        for _ in 0..100 {
            // once the server responds and closes, writes start failing —
            // that is the expected backpressure, keep going to the read
            if stream.write_all(&chunk).is_err() {
                break;
            }
        }
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        let mut reader = BufReader::new(stream);
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        let doc = htd_core::Json::parse(reply.trim()).expect("structured reply");
        assert_eq!(
            doc.get("status").and_then(|v| v.as_str()),
            Some("error"),
            "{reply}"
        );
        assert_eq!(doc.get("code").and_then(|v| v.as_u64()), Some(2));
        assert!(reply.contains("frame exceeds"), "{reply}");
        // connection is closed after the violation
        reply.clear();
        assert_eq!(reader.read_line(&mut reply).unwrap(), 0);
    }

    // malformed JSON in a well-terminated frame: structured parse error,
    // connection stays usable
    {
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream.write_all(b"this is { not json\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        let doc = htd_core::Json::parse(reply.trim()).expect("structured reply");
        assert_eq!(doc.get("status").and_then(|v| v.as_str()), Some("error"));
        assert_eq!(doc.get("code").and_then(|v| v.as_u64()), Some(2));
        // same connection still answers a valid request afterwards
        stream.write_all(b"{\"cmd\":\"ping\"}\n").unwrap();
        reply.clear();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.contains("pong"), "{reply}");
    }

    server.request_shutdown();
    server.wait();
}

#[test]
fn chaos_mode_survives_panics_and_serves_every_request() {
    let (server, addr) = start(ServeOptions {
        chaos: Some(htd_service::FaultPlan::chaos(42)),
        memory_mb: Some(64),
        ..quiet_opts()
    });
    let mut client = Client::connect(&addr).unwrap();
    let instances: Vec<String> = (0..6)
        .map(|s| io::write_pace_gr(&gen::random_gnp(14, 0.3, s)))
        .collect();
    for i in 0..30u64 {
        let inst = &instances[(i % 6) as usize];
        let mut req = htd_service::SolveRequest {
            objective: Objective::Treewidth,
            format: InstanceFormat::PaceGr,
            instance: inst.clone(),
            deadline_ms: Some(3_000),
            budget: None,
            threads: Some(3),
            engines: None,
            use_cache: false,
            forwarded: false,
        };
        // mix of objectives to exercise more of the portfolio
        if i % 5 == 4 {
            req.objective = Objective::GeneralizedHypertreeWidth;
        }
        let r = client
            .request(&htd_service::Request {
                id: Some(format!("c{i}")),
                cmd: htd_service::Command::Solve(req),
            })
            .expect("server alive");
        // every request gets a valid terminal response: a (possibly
        // degraded) outcome, or an explicit backpressure/timeout/error
        match r.status {
            Status::Ok => {
                let o = r.outcome.expect("ok carries outcome");
                assert!(o.lower <= o.upper);
            }
            Status::Rejected => assert!(r.retry_after_ms.is_some()),
            Status::Timeout | Status::Error => {}
            s => panic!("unexpected status {}", s.name()),
        }
    }
    // the injected panics were quarantined and counted
    let (_, metrics) = http_get(&addr, "/metrics");
    let panics = metrics
        .lines()
        .find(|l| l.starts_with("htd_worker_panics_total"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    assert!(
        panics > 0,
        "chaos mode should have injected panics:\n{metrics}"
    );
    assert!(
        metrics.contains("htd_engine_quarantined"),
        "quarantine gauge exported"
    );
    assert!(
        metrics.contains("htd_degraded_responses_total"),
        "degraded counter exported"
    );
    server.request_shutdown();
    server.wait();
}
