//! Span-layer integration: nesting, attribution, aggregation and
//! event well-formedness under concurrent workers.
//!
//! The collector and the enable flag are process-global, so every test
//! here serializes on one mutex and uses test-unique span names.

use std::sync::{Mutex, OnceLock};

use htd_trace::event::Event;
use htd_trace::span::{set_spans_enabled, set_worker};
use htd_trace::{span, validate_stream, RingBuffer, Tracer};

fn global_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

#[test]
fn concurrent_workers_aggregate_without_imbalance() {
    let _g = global_lock();
    span::reset();
    set_spans_enabled(true);
    let workers = ["t-alpha", "t-beta", "t-gamma", "t-delta"];
    std::thread::scope(|s| {
        for w in workers {
            s.spawn(move || {
                set_worker(w);
                for _ in 0..50 {
                    let _outer = span!("it.outer");
                    for _ in 0..4 {
                        let _inner = span!("it.inner");
                        std::hint::black_box(0u64);
                    }
                }
            });
        }
    });
    set_spans_enabled(false);
    let stats = span::snapshot();

    // one (worker, path) node per worker per span name
    let outers: Vec<_> = stats.iter().filter(|s| s.name == "it.outer").collect();
    let inners: Vec<_> = stats.iter().filter(|s| s.name == "it.inner").collect();
    assert_eq!(outers.len(), workers.len());
    assert_eq!(inners.len(), workers.len());
    for o in &outers {
        assert_eq!(o.count, 50, "worker {}", o.worker);
        assert!(o.parent.is_none(), "outer spans are roots");
        assert!(o.wall_us >= o.self_us, "self time never exceeds wall");
    }
    for i in &inners {
        assert_eq!(i.count, 200, "worker {}", i.worker);
        let p = i.parent.expect("inner nests under outer");
        assert_eq!(stats[p].name, "it.outer");
        assert_eq!(stats[p].worker, i.worker, "attribution follows the thread");
        // the parent's child bookkeeping keeps totals consistent:
        // inner wall is part of outer wall, not of outer self
        assert!(i.wall_us <= stats[p].wall_us + 1000);
    }
    // every worker label that entered spans shows up in the aggregate
    let mut seen: Vec<_> = outers.iter().map(|o| o.worker).collect();
    seen.sort();
    let mut expect = workers.to_vec();
    expect.sort();
    assert_eq!(seen, expect);

    // folded output: one line per node, parseable "path count" pairs
    let folded = span::folded();
    for w in workers {
        assert!(
            folded.contains(&format!("{w};it.outer;it.inner ")),
            "folded stack missing {w}:\n{folded}"
        );
    }
    for line in folded.lines() {
        let (_path, val) = line.rsplit_once(' ').expect("`path self_us` shape");
        val.parse::<u64>().expect("self_us is an integer");
    }
    span::reset();
    assert!(span::snapshot().is_empty(), "reset clears the collector");
}

#[test]
fn traced_spans_emit_balanced_events() {
    let _g = global_lock();
    span::reset();
    let ring = RingBuffer::new(10_000);
    let tracer = Tracer::new(Box::new(std::sync::Arc::clone(&ring)));
    // spans_enabled stays OFF: the enabled tracer alone activates the
    // guards it is passed to
    std::thread::scope(|s| {
        for w in ["e-one", "e-two"] {
            let t = std::sync::Arc::clone(&tracer);
            s.spawn(move || {
                set_worker(w);
                for _ in 0..20 {
                    let _outer = span!("ev.solve", &t);
                    let _inner = span!("ev.phase", &t);
                }
            });
        }
    });
    let records = ring.records();
    // stream passes full validation including span multiset balancing
    validate_stream(&records).unwrap();
    let enters = records
        .iter()
        .filter(|r| matches!(r.event, Event::SpanEnter { .. }))
        .count();
    let exits = records
        .iter()
        .filter(|r| matches!(r.event, Event::SpanExit { .. }))
        .count();
    assert_eq!(enters, 80, "2 workers x 20 iterations x 2 spans");
    assert_eq!(enters, exits, "every span_enter has a matching span_exit");
    // depth never goes negative and attribution is per-thread: track a
    // per-worker depth counter over the ordered stream
    let mut depth = std::collections::HashMap::new();
    for r in &records {
        match r.event {
            Event::SpanEnter {
                worker, depth: d, ..
            } => {
                let c = depth.entry(worker).or_insert(0i64);
                assert_eq!(*c, d as i64, "reported depth matches the live stack");
                *c += 1;
            }
            Event::SpanExit { worker, .. } => {
                let c = depth.entry(worker).or_insert(0i64);
                *c -= 1;
                assert!(*c >= 0, "span stack went negative for {worker}");
            }
            _ => {}
        }
    }
    assert!(depth.values().all(|&c| c == 0));
    span::reset();
}

#[test]
fn snapshot_and_folded_empty_when_disabled() {
    let _g = global_lock();
    span::reset();
    set_spans_enabled(false);
    {
        let _a = span!("off.root");
        let _b = span!("off.leaf");
    }
    assert!(span::snapshot().iter().all(|s| !s.name.starts_with("off.")));
    assert!(!span::folded().contains("off."));
}
