//! The global metric registry: named atomic counters, gauges and
//! histograms, rendered as Prometheus text.
//!
//! Handles are resolved once (at worker/session setup, never per node
//! expansion) and are `&'static`: after resolution an update is a single
//! relaxed atomic op, safe to call from any thread with no further
//! registry involvement. The registry itself is process-global so every
//! layer — engines, caches, the service — contributes to one scrape.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram with atomic counts.
///
/// Units are the caller's choice (the solver records seconds); `bounds`
/// are the inclusive upper edges of the buckets, the final implicit
/// bucket is `+Inf`. Quantiles are linearly interpolated inside the
/// bucket that crosses the target rank, matching how Prometheus's
/// `histogram_quantile` reads the same buckets.
#[derive(Debug)]
pub struct HistogramMetric {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    /// Sum in micro-units so it fits an atomic integer.
    sum_micro: AtomicU64,
    count: AtomicU64,
}

impl HistogramMetric {
    /// A histogram over the given ascending bucket bounds.
    pub fn new(bounds: &[f64]) -> HistogramMetric {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        HistogramMetric {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_micro: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_micro
            .fetch_add((v * 1e6).max(0.0) as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum_micro.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// The bucket bounds (without the implicit `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Cumulative count up to and including bucket `i` (`i == bounds.len()`
    /// is the `+Inf` bucket, i.e. the total).
    pub fn cumulative(&self, i: usize) -> u64 {
        self.counts[..=i]
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Interpolated quantile (`0.0..=1.0`); 0 when empty. The `+Inf`
    /// bucket reports twice the last finite bound — a histogram cannot
    /// say more about its tail.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        let mut lo = 0.0;
        for (i, c) in self.counts.iter().enumerate() {
            let n = c.load(Ordering::Relaxed);
            let hi = self
                .bounds
                .get(i)
                .copied()
                .unwrap_or(2.0 * self.bounds[self.bounds.len() - 1]);
            if seen + n >= target && n > 0 {
                let into = (target - seen) as f64 / n as f64;
                return lo + (hi - lo) * into;
            }
            seen += n;
            lo = hi;
        }
        lo
    }
}

enum Slot {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static HistogramMetric),
}

/// A named collection of metrics. One process-global instance exists
/// behind [`registry`]; private registries are constructible for tests.
#[derive(Default)]
pub struct Registry {
    slots: Mutex<BTreeMap<String, Slot>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry {
            slots: Mutex::new(BTreeMap::new()),
        }
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric type.
    pub fn counter(&self, name: &str) -> &'static Counter {
        let mut slots = self.slots.lock().unwrap();
        match slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Counter(Box::leak(Box::default())))
        {
            Slot::Counter(c) => c,
            _ => panic!("metric '{name}' is not a counter"),
        }
    }

    /// The counter `name{label="value"}`, created on first use.
    pub fn labeled_counter(&self, name: &str, label: &str, value: &str) -> &'static Counter {
        self.counter(&format!("{name}{{{label}=\"{value}\"}}"))
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        let mut slots = self.slots.lock().unwrap();
        match slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Gauge(Box::leak(Box::default())))
        {
            Slot::Gauge(g) => g,
            _ => panic!("metric '{name}' is not a gauge"),
        }
    }

    /// The histogram named `name`, created on first use with `bounds`
    /// (later calls may pass any bounds; the first registration wins).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> &'static HistogramMetric {
        let mut slots = self.slots.lock().unwrap();
        match slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Histogram(Box::leak(Box::new(HistogramMetric::new(bounds)))))
        {
            Slot::Histogram(h) => h,
            _ => panic!("metric '{name}' is not a histogram"),
        }
    }

    /// Value of a counter if it exists (exact key, including any label).
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.slots.lock().unwrap().get(name) {
            Some(Slot::Counter(c)) => Some(c.get()),
            _ => None,
        }
    }

    /// Renders every metric in Prometheus text exposition format,
    /// sorted by name so scrapes are deterministic.
    pub fn render_prometheus(&self, out: &mut String) {
        let slots = self.slots.lock().unwrap();
        let mut last_base = String::new();
        for (name, slot) in slots.iter() {
            let base = name.split('{').next().unwrap_or(name);
            if base != last_base {
                let kind = match slot {
                    Slot::Counter(_) => "counter",
                    Slot::Gauge(_) => "gauge",
                    Slot::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# TYPE {base} {kind}");
                last_base = base.to_string();
            }
            match slot {
                Slot::Counter(c) => {
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Slot::Gauge(g) => {
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Slot::Histogram(h) => {
                    // a labeled name like `m{span="x"}` must render as
                    // `m_bucket{span="x",le="..."}`: the series suffix goes
                    // on the metric name, extra labels merge with `le`
                    let (bucket, sum, count) = match name.split_once('{') {
                        Some((base, labels)) => {
                            let labels = labels.trim_end_matches('}');
                            (
                                format!("{base}_bucket{{{labels},"),
                                format!("{base}_sum{{{labels}}}"),
                                format!("{base}_count{{{labels}}}"),
                            )
                        }
                        None => (
                            format!("{name}_bucket{{"),
                            format!("{name}_sum"),
                            format!("{name}_count"),
                        ),
                    };
                    for (i, b) in h.bounds().iter().enumerate() {
                        let _ = writeln!(out, "{bucket}le=\"{b}\"}} {}", h.cumulative(i));
                    }
                    let _ = writeln!(
                        out,
                        "{bucket}le=\"+Inf\"}} {}",
                        h.cumulative(h.bounds().len())
                    );
                    let _ = writeln!(out, "{sum} {}", h.sum());
                    let _ = writeln!(out, "{count} {}", h.count());
                }
            }
        }
    }
}

/// The process-global registry.
pub fn registry() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let r = Registry::new();
        let c = r.counter("ops_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(r.counter_value("ops_total"), Some(5));
        // same name returns the same handle
        r.counter("ops_total").inc();
        assert_eq!(c.get(), 6);
        let g = r.gauge("depth");
        g.set(3);
        g.add(-1);
        assert_eq!(g.get(), 2);
    }

    #[test]
    fn labeled_counters_are_distinct_series() {
        let r = Registry::new();
        r.labeled_counter("wins_total", "engine", "astar").add(2);
        r.labeled_counter("wins_total", "engine", "genetic").inc();
        assert_eq!(r.counter_value("wins_total{engine=\"astar\"}"), Some(2));
        assert_eq!(r.counter_value("wins_total{engine=\"genetic\"}"), Some(1));
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn type_mismatch_panics() {
        let r = Registry::new();
        r.gauge("x");
        r.counter("x");
    }

    #[test]
    fn histogram_percentiles_interpolate() {
        let h = HistogramMetric::new(&[1.0, 2.0, 5.0, 10.0]);
        // 50 observations in (1, 2], 50 in (5, 10]
        for _ in 0..50 {
            h.observe(1.5);
            h.observe(7.0);
        }
        assert_eq!(h.count(), 100);
        assert!((h.sum() - (50.0 * 1.5 + 50.0 * 7.0)).abs() < 1e-3);
        // p25 lands mid-way through the first occupied bucket
        let p25 = h.quantile(0.25);
        assert!(p25 > 1.0 && p25 <= 2.0, "{p25}");
        // p50 is the upper edge of the first occupied bucket
        assert!((h.quantile(0.5) - 2.0).abs() < 1e-9);
        // p75 interpolates inside (5, 10]
        let p75 = h.quantile(0.75);
        assert!(p75 > 5.0 && p75 <= 10.0, "{p75}");
        // extremes
        assert!(h.quantile(0.0) > 1.0);
        assert!((h.quantile(1.0) - 10.0).abs() < 1e-9);
        // empty histogram reports 0
        assert_eq!(HistogramMetric::new(&[1.0]).quantile(0.9), 0.0);
    }

    #[test]
    fn histogram_quantile_edge_cases() {
        // empty: every quantile is 0, including the extremes
        let empty = HistogramMetric::new(&[1.0, 2.0]);
        assert_eq!(empty.quantile(0.0), 0.0);
        assert_eq!(empty.quantile(0.5), 0.0);
        assert_eq!(empty.quantile(1.0), 0.0);

        // all mass in the implicit +Inf bucket: quantiles interpolate
        // between the last finite bound and twice that bound — the
        // histogram can only say "past the end"
        let inf = HistogramMetric::new(&[1.0, 2.0, 5.0]);
        for _ in 0..10 {
            inf.observe(1e9);
        }
        for q in [0.0, 0.01, 0.5, 0.99] {
            let v = inf.quantile(q);
            assert!(v > 5.0 && v <= 10.0, "q={q} v={v}");
        }
        assert!((inf.quantile(1.0) - 10.0).abs() < 1e-9);

        // single-bucket histogram: quantiles interpolate 0..bound, and
        // out-of-range q is clamped rather than extrapolated
        let one = HistogramMetric::new(&[4.0]);
        for _ in 0..4 {
            one.observe(1.0);
        }
        assert!((one.quantile(0.25) - 1.0).abs() < 1e-9);
        assert!((one.quantile(0.5) - 2.0).abs() < 1e-9);
        assert!((one.quantile(1.0) - 4.0).abs() < 1e-9);
        assert!((one.quantile(2.0) - 4.0).abs() < 1e-9, "q clamps to 1");
        assert!(one.quantile(-1.0) > 0.0, "q clamps to 0, rank >= 1");
    }

    #[test]
    fn histogram_overflow_bucket() {
        let h = HistogramMetric::new(&[1.0, 2.0]);
        h.observe(100.0);
        assert_eq!(h.cumulative(2), 1);
        assert_eq!(h.cumulative(1), 0);
        // the +Inf bucket can only report "beyond the last bound"
        assert!((h.quantile(0.5) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn exact_bucket_edges_are_inclusive() {
        let h = HistogramMetric::new(&[1.0, 2.0]);
        h.observe(1.0);
        h.observe(2.0);
        assert_eq!(h.cumulative(0), 1);
        assert_eq!(h.cumulative(1), 2);
    }

    #[test]
    fn prometheus_rendering_is_sorted_and_typed() {
        let r = Registry::new();
        r.counter("b_total").add(2);
        r.gauge("a_gauge").set(7);
        let h = r.histogram("c_hist", &[0.5, 1.0]);
        h.observe(0.7);
        let mut out = String::new();
        r.render_prometheus(&mut out);
        let a = out.find("a_gauge 7").expect("gauge rendered");
        let b = out.find("b_total 2").expect("counter rendered");
        let c = out.find("c_hist_bucket{le=\"0.5\"} 0").expect("bucket 0");
        assert!(a < b && b < c, "sorted output:\n{out}");
        assert!(out.contains("# TYPE b_total counter"));
        assert!(out.contains("c_hist_bucket{le=\"1\"} 1"));
        assert!(out.contains("c_hist_bucket{le=\"+Inf\"} 1"));
        assert!(out.contains("c_hist_count 1"));
    }

    #[test]
    fn labeled_histogram_renders_well_formed_series() {
        // a labeled registration must merge its labels with `le` on the
        // bucket series, not append `_bucket` after the closing brace
        let r = Registry::new();
        let h = r.histogram("d_hist{span=\"x\"}", &[0.5]);
        h.observe(0.1);
        let mut out = String::new();
        r.render_prometheus(&mut out);
        assert!(out.contains("# TYPE d_hist histogram"), "{out}");
        assert!(
            out.contains("d_hist_bucket{span=\"x\",le=\"0.5\"} 1"),
            "{out}"
        );
        assert!(
            out.contains("d_hist_bucket{span=\"x\",le=\"+Inf\"} 1"),
            "{out}"
        );
        assert!(out.contains("d_hist_sum{span=\"x\"} 0.1"), "{out}");
        assert!(out.contains("d_hist_count{span=\"x\"} 1"), "{out}");
    }
}
