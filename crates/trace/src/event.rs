//! Typed trace events and their versioned JSONL wire form.
//!
//! Every record serializes to one JSON object per line:
//!
//! ```json
//! {"v":1,"seq":7,"t_us":15321,"kind":"incumbent_improved","worker":"astar","width":4}
//! ```
//!
//! `v` is [`SCHEMA_VERSION`], `seq` is a per-trace contiguous sequence
//! number, `t_us` microseconds since the tracer was created, clamped to
//! be non-decreasing across the stream. Consumers must ignore unknown
//! fields; unknown `kind`s are a schema violation.

/// Version stamped into every JSONL record as `"v"`. Schema history:
/// v1 = solver/worker/query events; v2 adds the `span_enter`/`span_exit`
/// pair from the span layer ([`crate::span`]).
pub const SCHEMA_VERSION: u32 = 2;

/// Every `kind` the current schema can emit, in no particular order.
pub const KNOWN_KINDS: &[&str] = &[
    "solve_started",
    "worker_started",
    "worker_finished",
    "worker_cancelled",
    "worker_panicked",
    "incumbent_improved",
    "bound_tightened",
    "node_expanded",
    "cache_stats",
    "restart_triggered",
    "engines_skipped",
    "solve_finished",
    "query_stage",
    "span_enter",
    "span_exit",
];

/// One solver event. Workers are identified by their engine name
/// (`"branch_bound"`, `"astar"`, ...); `""` means unattributed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A solve began on an instance of the given shape.
    SolveStarted {
        objective: &'static str,
        vertices: usize,
        edges: usize,
    },
    /// A portfolio worker thread started.
    WorkerStarted { worker: &'static str },
    /// A worker ran to its own completion (budget exhausted or proof found).
    WorkerFinished {
        worker: &'static str,
        lower: u32,
        upper: Option<u32>,
        exact: bool,
        expanded: u64,
        elapsed_us: u64,
    },
    /// A worker was cancelled (deadline watchdog or a sibling's proof).
    WorkerCancelled {
        worker: &'static str,
        lower: u32,
        upper: Option<u32>,
        expanded: u64,
        elapsed_us: u64,
    },
    /// A worker panicked and was quarantined; the portfolio continued on
    /// its siblings. `message` is the (truncated) panic payload.
    WorkerPanicked {
        worker: &'static str,
        message: String,
    },
    /// The shared incumbent's upper bound improved to `width`.
    IncumbentImproved { worker: &'static str, width: u32 },
    /// The shared lower bound rose to `lower`.
    BoundTightened { worker: &'static str, lower: u32 },
    /// A batch of `count` node expansions (batched; not one per node).
    NodeExpanded { worker: &'static str, count: u64 },
    /// Point-in-time cache statistics.
    CacheStats {
        cache: &'static str,
        hits: u64,
        misses: u64,
        entries: u64,
    },
    /// A stochastic worker began a fresh round/restart.
    RestartTriggered { worker: &'static str, round: u32 },
    /// The portfolio had fewer worker slots than lineup engines: the named
    /// engines (comma-joined, in claim order) were not launched this run.
    EnginesSkipped { engines: String, slots: u64 },
    /// The solve returned.
    SolveFinished {
        lower: u32,
        upper: Option<u32>,
        exact: bool,
        winner: Option<&'static str>,
        expanded: u64,
    },
    /// One stage of the query-answering pipeline completed
    /// (`"parse"`, `"decompose"`, `"semijoin"`, `"enumerate"`), with the
    /// tuples it processed and its wall-clock duration.
    QueryStage {
        stage: &'static str,
        tuples: u64,
        elapsed_us: u64,
    },
    /// A profiling span opened on some thread (`depth` = how many spans
    /// already enclose it there; 0 for a root).
    SpanEnter {
        span: &'static str,
        worker: &'static str,
        depth: u32,
    },
    /// The matching close of a [`Event::SpanEnter`] with the same
    /// worker and span name.
    SpanExit {
        span: &'static str,
        worker: &'static str,
        depth: u32,
        elapsed_us: u64,
    },
}

impl Event {
    /// The snake_case `kind` tag this event serializes under.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::SolveStarted { .. } => "solve_started",
            Event::WorkerStarted { .. } => "worker_started",
            Event::WorkerFinished { .. } => "worker_finished",
            Event::WorkerCancelled { .. } => "worker_cancelled",
            Event::WorkerPanicked { .. } => "worker_panicked",
            Event::IncumbentImproved { .. } => "incumbent_improved",
            Event::BoundTightened { .. } => "bound_tightened",
            Event::NodeExpanded { .. } => "node_expanded",
            Event::CacheStats { .. } => "cache_stats",
            Event::RestartTriggered { .. } => "restart_triggered",
            Event::EnginesSkipped { .. } => "engines_skipped",
            Event::SolveFinished { .. } => "solve_finished",
            Event::QueryStage { .. } => "query_stage",
            Event::SpanEnter { .. } => "span_enter",
            Event::SpanExit { .. } => "span_exit",
        }
    }

    /// The worker this event is attributed to, if any.
    pub fn worker(&self) -> Option<&'static str> {
        match self {
            Event::WorkerStarted { worker }
            | Event::WorkerFinished { worker, .. }
            | Event::WorkerCancelled { worker, .. }
            | Event::WorkerPanicked { worker, .. }
            | Event::IncumbentImproved { worker, .. }
            | Event::BoundTightened { worker, .. }
            | Event::NodeExpanded { worker, .. }
            | Event::RestartTriggered { worker, .. }
            | Event::SpanEnter { worker, .. }
            | Event::SpanExit { worker, .. } => Some(worker),
            _ => None,
        }
    }
}

/// A stamped event: what happened, when, and in what order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Contiguous from 0 within one trace.
    pub seq: u64,
    /// Microseconds since the tracer's epoch, non-decreasing.
    pub t_us: u64,
    pub event: Event,
}

impl Record {
    /// This record as one JSONL line (no trailing newline). All strings
    /// involved are engine/cache identifiers that never need escaping.
    pub fn to_json_line(&self) -> String {
        let mut s = format!(
            "{{\"v\":{SCHEMA_VERSION},\"seq\":{},\"t_us\":{},\"kind\":\"{}\"",
            self.seq,
            self.t_us,
            self.event.kind()
        );
        use std::fmt::Write as _;
        match &self.event {
            Event::SolveStarted {
                objective,
                vertices,
                edges,
            } => {
                let _ = write!(
                    s,
                    ",\"objective\":\"{objective}\",\"vertices\":{vertices},\"edges\":{edges}"
                );
            }
            Event::WorkerStarted { worker } => {
                let _ = write!(s, ",\"worker\":\"{worker}\"");
            }
            Event::WorkerFinished {
                worker,
                lower,
                upper,
                exact,
                expanded,
                elapsed_us,
            } => {
                let _ = write!(s, ",\"worker\":\"{worker}\",\"lower\":{lower}");
                if let Some(u) = upper {
                    let _ = write!(s, ",\"upper\":{u}");
                }
                let _ = write!(
                    s,
                    ",\"exact\":{exact},\"expanded\":{expanded},\"elapsed_us\":{elapsed_us}"
                );
            }
            Event::WorkerCancelled {
                worker,
                lower,
                upper,
                expanded,
                elapsed_us,
            } => {
                let _ = write!(s, ",\"worker\":\"{worker}\",\"lower\":{lower}");
                if let Some(u) = upper {
                    let _ = write!(s, ",\"upper\":{u}");
                }
                let _ = write!(s, ",\"expanded\":{expanded},\"elapsed_us\":{elapsed_us}");
            }
            Event::WorkerPanicked { worker, message } => {
                // the one free-form string in the schema: escape it
                let _ = write!(
                    s,
                    ",\"worker\":\"{worker}\",\"message\":\"{}\"",
                    escape_json(message)
                );
            }
            Event::IncumbentImproved { worker, width } => {
                let _ = write!(s, ",\"worker\":\"{worker}\",\"width\":{width}");
            }
            Event::BoundTightened { worker, lower } => {
                let _ = write!(s, ",\"worker\":\"{worker}\",\"lower\":{lower}");
            }
            Event::NodeExpanded { worker, count } => {
                let _ = write!(s, ",\"worker\":\"{worker}\",\"count\":{count}");
            }
            Event::CacheStats {
                cache,
                hits,
                misses,
                entries,
            } => {
                let _ = write!(
                    s,
                    ",\"cache\":\"{cache}\",\"hits\":{hits},\"misses\":{misses},\"entries\":{entries}"
                );
            }
            Event::RestartTriggered { worker, round } => {
                let _ = write!(s, ",\"worker\":\"{worker}\",\"round\":{round}");
            }
            Event::EnginesSkipped { engines, slots } => {
                // engine names are identifiers, but the list is assembled at
                // runtime from the open registry: escape it like a free form
                let _ = write!(
                    s,
                    ",\"engines\":\"{}\",\"slots\":{slots}",
                    escape_json(engines)
                );
            }
            Event::SolveFinished {
                lower,
                upper,
                exact,
                winner,
                expanded,
            } => {
                let _ = write!(s, ",\"lower\":{lower}");
                if let Some(u) = upper {
                    let _ = write!(s, ",\"upper\":{u}");
                }
                let _ = write!(s, ",\"exact\":{exact}");
                if let Some(w) = winner {
                    let _ = write!(s, ",\"winner\":\"{w}\"");
                }
                let _ = write!(s, ",\"expanded\":{expanded}");
            }
            Event::QueryStage {
                stage,
                tuples,
                elapsed_us,
            } => {
                let _ = write!(
                    s,
                    ",\"stage\":\"{stage}\",\"tuples\":{tuples},\"elapsed_us\":{elapsed_us}"
                );
            }
            Event::SpanEnter {
                span,
                worker,
                depth,
            } => {
                let _ = write!(
                    s,
                    ",\"span\":\"{span}\",\"worker\":\"{worker}\",\"depth\":{depth}"
                );
            }
            Event::SpanExit {
                span,
                worker,
                depth,
                elapsed_us,
            } => {
                let _ = write!(
                    s,
                    ",\"span\":\"{span}\",\"worker\":\"{worker}\",\"depth\":{depth},\"elapsed_us\":{elapsed_us}"
                );
            }
        }
        s.push('}');
        s
    }
}

/// Minimal JSON string escaping for the free-form panic message.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Checks an in-memory record stream for well-formedness: contiguous
/// `seq` from 0, non-decreasing `t_us`, every `WorkerStarted` matched
/// by exactly one `WorkerFinished`, `WorkerCancelled` or
/// `WorkerPanicked` (a quarantined panic is a terminal worker event),
/// and every `span_exit` closing a still-open `span_enter` of the same
/// worker and span name, with none left open at the end. Span pairing
/// is a per-(worker, span) multiset, not a strict stack: pool threads
/// sharing one worker label interleave their spans freely in the
/// totally-ordered stream.
pub fn validate_stream(records: &[Record]) -> Result<(), String> {
    let mut open: Vec<&'static str> = Vec::new();
    let mut open_spans: Vec<(&'static str, &'static str)> = Vec::new();
    let mut last_t = 0u64;
    for (i, r) in records.iter().enumerate() {
        if r.seq != i as u64 {
            return Err(format!("record {i}: seq {} is not contiguous", r.seq));
        }
        if r.t_us < last_t {
            return Err(format!(
                "record {i}: t_us {} went backwards (previous {last_t})",
                r.t_us
            ));
        }
        last_t = r.t_us;
        match &r.event {
            Event::WorkerStarted { worker } => {
                if open.contains(worker) {
                    return Err(format!("record {i}: worker '{worker}' started twice"));
                }
                open.push(worker);
            }
            Event::WorkerFinished { worker, .. }
            | Event::WorkerCancelled { worker, .. }
            | Event::WorkerPanicked { worker, .. } => match open.iter().position(|w| w == worker) {
                Some(p) => {
                    open.remove(p);
                }
                None => {
                    return Err(format!(
                        "record {i}: worker '{worker}' ended without starting"
                    ));
                }
            },
            Event::SpanEnter { span, worker, .. } => {
                open_spans.push((worker, span));
            }
            Event::SpanExit { span, worker, .. } => {
                match open_spans
                    .iter()
                    .position(|&(w, s)| w == *worker && s == *span)
                {
                    Some(p) => {
                        open_spans.remove(p);
                    }
                    None => {
                        return Err(format!(
                            "record {i}: span '{span}' (worker '{worker}') exited without entering"
                        ));
                    }
                }
            }
            _ => {}
        }
    }
    if let Some(w) = open.first() {
        return Err(format!("worker '{w}' started but never finished"));
    }
    if let Some((w, s)) = open_spans.first() {
        return Err(format!(
            "span '{s}' (worker '{w}') entered but never exited"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, t_us: u64, event: Event) -> Record {
        Record { seq, t_us, event }
    }

    #[test]
    fn json_lines_are_framed_and_versioned() {
        let r = rec(
            3,
            1500,
            Event::IncumbentImproved {
                worker: "astar",
                width: 4,
            },
        );
        assert_eq!(
            r.to_json_line(),
            "{\"v\":2,\"seq\":3,\"t_us\":1500,\"kind\":\"incumbent_improved\",\"worker\":\"astar\",\"width\":4}"
        );
    }

    #[test]
    fn optional_upper_is_omitted_when_absent() {
        let r = rec(
            0,
            0,
            Event::WorkerFinished {
                worker: "lower_bound",
                lower: 3,
                upper: None,
                exact: false,
                expanded: 12,
                elapsed_us: 900,
            },
        );
        let line = r.to_json_line();
        assert!(!line.contains("upper"), "{line}");
        assert!(line.contains("\"lower\":3"));
        assert!(line.contains("\"exact\":false"));
    }

    #[test]
    fn every_event_kind_is_known() {
        let events = [
            Event::SolveStarted {
                objective: "tw",
                vertices: 5,
                edges: 6,
            },
            Event::WorkerStarted { worker: "x" },
            Event::WorkerFinished {
                worker: "x",
                lower: 1,
                upper: Some(2),
                exact: true,
                expanded: 3,
                elapsed_us: 4,
            },
            Event::WorkerCancelled {
                worker: "x",
                lower: 1,
                upper: None,
                expanded: 3,
                elapsed_us: 4,
            },
            Event::WorkerPanicked {
                worker: "x",
                message: "boom".into(),
            },
            Event::IncumbentImproved {
                worker: "x",
                width: 2,
            },
            Event::BoundTightened {
                worker: "x",
                lower: 1,
            },
            Event::NodeExpanded {
                worker: "x",
                count: 100,
            },
            Event::CacheStats {
                cache: "cover",
                hits: 1,
                misses: 2,
                entries: 3,
            },
            Event::RestartTriggered {
                worker: "x",
                round: 2,
            },
            Event::EnginesSkipped {
                engines: "genetic,annealing".into(),
                slots: 4,
            },
            Event::SolveFinished {
                lower: 1,
                upper: Some(2),
                exact: false,
                winner: Some("x"),
                expanded: 10,
            },
            Event::QueryStage {
                stage: "semijoin",
                tuples: 42,
                elapsed_us: 17,
            },
            Event::SpanEnter {
                span: "astar.expand",
                worker: "astar",
                depth: 1,
            },
            Event::SpanExit {
                span: "astar.expand",
                worker: "astar",
                depth: 1,
                elapsed_us: 250,
            },
        ];
        for e in &events {
            assert!(KNOWN_KINDS.contains(&e.kind()), "unknown kind {}", e.kind());
        }
        assert_eq!(events.len(), KNOWN_KINDS.len());
    }

    #[test]
    fn panic_messages_are_escaped_and_terminal() {
        let r = rec(
            0,
            0,
            Event::WorkerPanicked {
                worker: "astar",
                message: "index 3 \"out\\of\" range\n".into(),
            },
        );
        assert_eq!(
            r.to_json_line(),
            "{\"v\":2,\"seq\":0,\"t_us\":0,\"kind\":\"worker_panicked\",\
             \"worker\":\"astar\",\"message\":\"index 3 \\\"out\\\\of\\\" range\\n\"}"
        );
        // a panicked worker counts as ended
        let s = vec![
            rec(0, 0, Event::WorkerStarted { worker: "astar" }),
            rec(
                1,
                5,
                Event::WorkerPanicked {
                    worker: "astar",
                    message: "boom".into(),
                },
            ),
        ];
        validate_stream(&s).unwrap();
        // ...but cannot end a worker that never started
        let s = vec![rec(
            0,
            0,
            Event::WorkerPanicked {
                worker: "astar",
                message: "boom".into(),
            },
        )];
        assert!(validate_stream(&s)
            .unwrap_err()
            .contains("without starting"));
    }

    #[test]
    fn validate_accepts_a_good_stream() {
        let stream = vec![
            rec(
                0,
                0,
                Event::SolveStarted {
                    objective: "tw",
                    vertices: 4,
                    edges: 3,
                },
            ),
            rec(1, 5, Event::WorkerStarted { worker: "a" }),
            rec(2, 5, Event::WorkerStarted { worker: "b" }),
            rec(
                3,
                9,
                Event::IncumbentImproved {
                    worker: "a",
                    width: 3,
                },
            ),
            rec(
                4,
                12,
                Event::WorkerCancelled {
                    worker: "b",
                    lower: 1,
                    upper: None,
                    expanded: 7,
                    elapsed_us: 7,
                },
            ),
            rec(
                5,
                14,
                Event::WorkerFinished {
                    worker: "a",
                    lower: 3,
                    upper: Some(3),
                    exact: true,
                    expanded: 20,
                    elapsed_us: 9,
                },
            ),
            rec(
                6,
                15,
                Event::SolveFinished {
                    lower: 3,
                    upper: Some(3),
                    exact: true,
                    winner: Some("a"),
                    expanded: 27,
                },
            ),
        ];
        validate_stream(&stream).unwrap();
    }

    #[test]
    fn validate_rejects_violations() {
        // backwards time
        let s = vec![
            rec(0, 10, Event::WorkerStarted { worker: "a" }),
            rec(
                1,
                4,
                Event::WorkerFinished {
                    worker: "a",
                    lower: 0,
                    upper: None,
                    exact: false,
                    expanded: 0,
                    elapsed_us: 0,
                },
            ),
        ];
        assert!(validate_stream(&s).unwrap_err().contains("backwards"));
        // seq gap
        let s = vec![rec(1, 0, Event::WorkerStarted { worker: "a" })];
        assert!(validate_stream(&s).unwrap_err().contains("contiguous"));
        // unmatched start
        let s = vec![rec(0, 0, Event::WorkerStarted { worker: "a" })];
        assert!(validate_stream(&s).unwrap_err().contains("never finished"));
        // finish without start
        let s = vec![rec(
            0,
            0,
            Event::WorkerCancelled {
                worker: "a",
                lower: 0,
                upper: None,
                expanded: 0,
                elapsed_us: 0,
            },
        )];
        assert!(validate_stream(&s)
            .unwrap_err()
            .contains("without starting"));
    }

    #[test]
    fn span_events_serialize_and_balance() {
        let enter = rec(
            0,
            10,
            Event::SpanEnter {
                span: "balsep.level",
                worker: "balsep",
                depth: 0,
            },
        );
        assert_eq!(
            enter.to_json_line(),
            "{\"v\":2,\"seq\":0,\"t_us\":10,\"kind\":\"span_enter\",\
             \"span\":\"balsep.level\",\"worker\":\"balsep\",\"depth\":0}"
        );
        // interleaved same-worker spans balance as a multiset
        let s = vec![
            rec(
                0,
                0,
                Event::SpanEnter {
                    span: "a",
                    worker: "w",
                    depth: 0,
                },
            ),
            rec(
                1,
                1,
                Event::SpanEnter {
                    span: "b",
                    worker: "w",
                    depth: 1,
                },
            ),
            rec(
                2,
                2,
                Event::SpanExit {
                    span: "a",
                    worker: "w",
                    depth: 0,
                    elapsed_us: 2,
                },
            ),
            rec(
                3,
                3,
                Event::SpanExit {
                    span: "b",
                    worker: "w",
                    depth: 1,
                    elapsed_us: 2,
                },
            ),
        ];
        validate_stream(&s).unwrap();
    }

    #[test]
    fn validate_rejects_unbalanced_spans() {
        // exit with no matching enter (wrong worker)
        let s = vec![
            rec(
                0,
                0,
                Event::SpanEnter {
                    span: "a",
                    worker: "w1",
                    depth: 0,
                },
            ),
            rec(
                1,
                1,
                Event::SpanExit {
                    span: "a",
                    worker: "w2",
                    depth: 0,
                    elapsed_us: 1,
                },
            ),
        ];
        assert!(validate_stream(&s)
            .unwrap_err()
            .contains("exited without entering"));
        // enter never exited
        let s = vec![rec(
            0,
            0,
            Event::SpanEnter {
                span: "a",
                worker: "w",
                depth: 0,
            },
        )];
        assert!(validate_stream(&s).unwrap_err().contains("never exited"));
    }
}
