//! Where stamped records go: nowhere, a JSONL stream, or an in-memory
//! ring buffer for tests and post-hoc analysis.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::event::Record;

/// A destination for trace records. `record` is called under the
/// tracer's stamp lock, so implementations need no internal ordering.
pub trait Sink: Send {
    /// Accepts one stamped record.
    fn record(&mut self, r: &Record);
    /// Pushes any buffered output to its destination.
    fn flush(&mut self) {}
}

/// Discards everything.
#[derive(Debug, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&mut self, _r: &Record) {}
}

/// Writes one JSON object per line to any `Write`.
pub struct JsonlSink<W: Write + Send> {
    out: W,
}

impl JsonlSink<BufWriter<File>> {
    /// A sink writing to a freshly created (truncated) file.
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        Ok(JsonlSink {
            out: BufWriter::new(File::create(path)?),
        })
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// A sink writing to `out`.
    pub fn new(out: W) -> Self {
        JsonlSink { out }
    }

    /// Consumes the sink, returning the writer (flushed).
    pub fn into_inner(mut self) -> W {
        let _ = self.out.flush();
        self.out
    }
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn record(&mut self, r: &Record) {
        // A failed write cannot be surfaced from the hot path; drop the
        // line rather than poison the solve.
        let _ = writeln!(self.out, "{}", r.to_json_line());
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// Keeps the last `capacity` records in memory. Clone the `Arc` and keep
/// one end while the tracer owns the other, then read `records()` after
/// the solve.
#[derive(Debug)]
pub struct RingBuffer {
    inner: Mutex<RingState>,
}

#[derive(Debug)]
struct RingState {
    buf: VecDeque<Record>,
    capacity: usize,
    dropped: u64,
}

impl RingBuffer {
    /// A shared ring holding at most `capacity` records.
    pub fn new(capacity: usize) -> Arc<RingBuffer> {
        Arc::new(RingBuffer {
            inner: Mutex::new(RingState {
                buf: VecDeque::with_capacity(capacity.min(4096)),
                capacity: capacity.max(1),
                dropped: 0,
            }),
        })
    }

    /// A snapshot of the retained records, oldest first.
    pub fn records(&self) -> Vec<Record> {
        self.inner.lock().unwrap().buf.iter().cloned().collect()
    }

    /// How many records were evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }
}

impl Sink for Arc<RingBuffer> {
    fn record(&mut self, r: &Record) {
        let mut st = self.inner.lock().unwrap();
        if st.buf.len() == st.capacity {
            st.buf.pop_front();
            st.dropped += 1;
        }
        st.buf.push_back(r.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn rec(seq: u64) -> Record {
        Record {
            seq,
            t_us: seq * 10,
            event: Event::NodeExpanded {
                worker: "w",
                count: seq,
            },
        }
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_record() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&rec(0));
        sink.record(&rec(1));
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"v\":2,\"seq\":0,"));
        assert!(lines[1].starts_with("{\"v\":2,\"seq\":1,"));
        assert!(text.ends_with('\n'), "stream must end with a newline");
        // every line is a self-contained object
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let ring = RingBuffer::new(3);
        let mut sink = Arc::clone(&ring);
        for i in 0..5 {
            sink.record(&rec(i));
        }
        let got = ring.records();
        assert_eq!(got.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(ring.dropped(), 2);
    }
}
