//! `htd-trace`: zero-dependency solver instrumentation.
//!
//! Three layers, from always-on to opt-in:
//!
//! - **Metrics** ([`metrics`]): named atomic counters/gauges/histograms
//!   in a process-global [`registry`]. Handles are `&'static`; updates
//!   are single relaxed atomic ops, so hot paths keep them on even in
//!   production. Rendered as Prometheus text for `/metrics`.
//! - **Events** ([`event`]): a typed stream of solver happenings —
//!   incumbent improvements, bound tightenings, worker lifecycle,
//!   batched node expansions — stamped with contiguous sequence numbers
//!   and monotonic microsecond timestamps.
//! - **Sinks** ([`sink`]): where events go. [`NullSink`] (discard),
//!   [`JsonlSink`] (the versioned `--trace file.jsonl` format), or a
//!   [`RingBuffer`] for tests and in-process analysis.
//! - **Spans** ([`span`]): hierarchical RAII profiling regions
//!   (`span!("astar.expand")`) aggregating per-path wall/CPU/self time
//!   and call counts, exported as a profile snapshot, folded stacks
//!   for flamegraphs, per-span histograms, and (for coarse spans fed a
//!   tracer) `span_enter`/`span_exit` events.
//!
//! The [`Tracer`] ties events to a sink. Everything defaults to
//! [`Tracer::disabled`], whose emit path is a single branch — solver
//! code is instrumented unconditionally and pays ~nothing unless a
//! trace was requested.
//!
//! The crate is deliberately std-only (no deps, not even the vendored
//! stand-ins): every solver crate links it, so it must stay
//! feather-weight and can never create a dependency cycle.

pub mod event;
pub mod metrics;
pub mod sink;
pub mod span;
pub mod tracer;

pub use event::{validate_stream, Event, Record, KNOWN_KINDS, SCHEMA_VERSION};
pub use metrics::{registry, Counter, Gauge, HistogramMetric, Registry};
pub use sink::{JsonlSink, NullSink, RingBuffer, Sink};
pub use span::{set_spans_enabled, set_worker, spans_enabled, SpanGuard, SpanStat};
pub use tracer::Tracer;
