//! The tracer: stamps events with sequence numbers and monotonic
//! microsecond timestamps and hands them to a sink.
//!
//! Cost model: the disabled tracer is one relaxed-ish bool load —
//! callers guard any argument construction behind [`Tracer::enabled`]
//! or use [`Tracer::emit_with`], whose closure never runs when
//! disabled. The enabled path takes one mutex; events are rare
//! (incumbent improvements, worker lifecycle, batched expansion
//! summaries), so the lock is uncontended in practice and guarantees
//! the seq/timestamp stream is totally ordered.

use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::event::{Event, Record};
use crate::sink::{NullSink, Sink};

/// Stamps and routes [`Event`]s. Cheap to share via `Arc`; a disabled
/// tracer (the default everywhere) costs one branch per call site.
pub struct Tracer {
    enabled: bool,
    epoch: Instant,
    state: Mutex<State>,
}

struct State {
    sink: Box<dyn Sink>,
    seq: u64,
    last_t_us: u64,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled)
            .finish_non_exhaustive()
    }
}

impl Tracer {
    /// An enabled tracer feeding `sink`. Timestamps count from now.
    pub fn new(sink: Box<dyn Sink>) -> Arc<Tracer> {
        Arc::new(Tracer {
            enabled: true,
            epoch: Instant::now(),
            state: Mutex::new(State {
                sink,
                seq: 0,
                last_t_us: 0,
            }),
        })
    }

    /// The shared disabled tracer: every emit is a single branch.
    pub fn disabled() -> Arc<Tracer> {
        static OFF: OnceLock<Arc<Tracer>> = OnceLock::new();
        Arc::clone(OFF.get_or_init(|| {
            Arc::new(Tracer {
                enabled: false,
                epoch: Instant::now(),
                state: Mutex::new(State {
                    sink: Box::new(NullSink),
                    seq: 0,
                    last_t_us: 0,
                }),
            })
        }))
    }

    /// Whether events are being recorded. Guard any non-trivial
    /// argument construction on this.
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records `event` if enabled.
    #[inline]
    pub fn emit(&self, event: Event) {
        if self.enabled {
            self.stamp(event);
        }
    }

    /// Records the event produced by `f`, which only runs when the
    /// tracer is enabled — use for events whose construction does work.
    #[inline]
    pub fn emit_with<F: FnOnce() -> Event>(&self, f: F) {
        if self.enabled {
            self.stamp(f());
        }
    }

    #[cold]
    fn stamp(&self, event: Event) {
        // Stamp inside the lock: the clock read and the seq assignment
        // happen atomically, so seq order == timestamp order, and the
        // clamp makes t_us non-decreasing even if Instant resolution
        // hiccups.
        // poison-tolerant: a quarantined worker panic must not wedge the
        // tracer for the surviving workers (State is written atomically
        // under the lock, so a recovered guard is always coherent)
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let t_us = (self.epoch.elapsed().as_micros() as u64).max(st.last_t_us);
        st.last_t_us = t_us;
        let seq = st.seq;
        st.seq += 1;
        let record = Record { seq, t_us, event };
        st.sink.record(&record);
    }

    /// Flushes the sink (e.g. the JSONL buffer) to its destination.
    pub fn flush(&self) {
        if self.enabled {
            self.state
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .sink
                .flush();
        }
    }

    /// Microseconds since this tracer was created.
    pub fn elapsed_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::validate_stream;
    use crate::sink::RingBuffer;
    use std::time::Duration;

    #[test]
    fn stamps_are_sequential_and_monotonic_across_threads() {
        let ring = RingBuffer::new(10_000);
        let tracer = Tracer::new(Box::new(Arc::clone(&ring)));
        std::thread::scope(|s| {
            for w in ["a", "b", "c", "d"] {
                let t = Arc::clone(&tracer);
                s.spawn(move || {
                    for i in 0..200 {
                        t.emit(Event::NodeExpanded {
                            worker: w,
                            count: i,
                        });
                    }
                });
            }
        });
        let records = ring.records();
        assert_eq!(records.len(), 800);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
        assert!(records.windows(2).all(|w| w[0].t_us <= w[1].t_us));
    }

    #[test]
    fn disabled_tracer_drops_everything_and_skips_closures() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        t.emit(Event::WorkerStarted { worker: "x" });
        let mut ran = false;
        t.emit_with(|| {
            ran = true;
            Event::WorkerStarted { worker: "x" }
        });
        assert!(!ran, "closure must not run when disabled");
        t.flush();
    }

    #[test]
    fn disabled_emit_is_cheap() {
        // Not a benchmark — a guard against accidentally putting work on
        // the disabled path. 10M no-op emits should take well under a
        // second on anything; budget generously for CI noise.
        let t = Tracer::disabled();
        let start = Instant::now();
        for i in 0..10_000_000u64 {
            t.emit_with(|| Event::NodeExpanded {
                worker: "w",
                count: i,
            });
        }
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "disabled emit path too slow: {:?} for 10M calls",
            start.elapsed()
        );
    }

    #[test]
    fn a_full_solve_shaped_stream_validates() {
        let ring = RingBuffer::new(100);
        let t = Tracer::new(Box::new(Arc::clone(&ring)));
        t.emit(Event::SolveStarted {
            objective: "tw",
            vertices: 9,
            edges: 12,
        });
        t.emit(Event::WorkerStarted { worker: "astar" });
        t.emit(Event::IncumbentImproved {
            worker: "astar",
            width: 3,
        });
        t.emit(Event::WorkerFinished {
            worker: "astar",
            lower: 3,
            upper: Some(3),
            exact: true,
            expanded: 40,
            elapsed_us: t.elapsed_us(),
        });
        t.emit(Event::SolveFinished {
            lower: 3,
            upper: Some(3),
            exact: true,
            winner: Some("astar"),
            expanded: 40,
        });
        validate_stream(&ring.records()).unwrap();
    }
}
