//! Hierarchical RAII spans: where does the time go *inside* a solve?
//!
//! A [`SpanGuard`] marks one timed region on the current thread; guards
//! nest lexically, so the collector learns the call tree
//! (`htd.decompose` → `balsep.level` → `balsep.widen`, ...). Each
//! distinct (worker, path) node aggregates call count, wall time,
//! thread-CPU time and *self* time (wall minus enclosed child wall)
//! into relaxed atomics — the steady-state cost of a span is two clock
//! reads, one thread-local cache hit and a handful of atomic adds, so
//! even per-expansion spans stay within the same overhead envelope as
//! the batched expansion counters.
//!
//! Spans are off by default ([`spans_enabled`] is a single atomic
//! load). They turn on two ways:
//!
//! - globally, via [`set_spans_enabled`] (the CLI `--profile` flag and
//!   the service do this) — aggregation only, no event traffic;
//! - per-site, by passing an enabled [`Tracer`] to coarse spans —
//!   those additionally emit `span_enter`/`span_exit` events into the
//!   schema-v2 JSONL stream. Hot per-node spans never take a tracer;
//!   the event stream stays phase-grained while the aggregate sees
//!   everything.
//!
//! Exports: [`snapshot`] for the `profile` JSON block and `/metrics`
//! feeding (each span also owns an `htd_span_seconds{span="..."}`
//! histogram), [`folded`] for flamegraph tools
//! (`worker;parent;child self_us` lines), [`reset`] between runs.

use std::cell::RefCell;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::event::Event;
use crate::metrics::{registry, HistogramMetric};
use crate::tracer::Tracer;

/// Bucket bounds (seconds) for the per-span `htd_span_seconds`
/// histograms: 10µs .. 10s, decade steps — spans range from a single
/// A* expansion to a whole service solve.
pub const SPAN_SECONDS_BUCKETS: &[f64] = &[1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0];

static SPANS_ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns global span aggregation on or off. Cheap to call; guards
/// created while disabled (and without an enabled tracer) are inert.
pub fn set_spans_enabled(on: bool) {
    SPANS_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether global span aggregation is on.
#[inline(always)]
pub fn spans_enabled() -> bool {
    SPANS_ENABLED.load(Ordering::Relaxed)
}

/// Per-node aggregate, updated lock-free on span exit.
struct NodeAgg {
    count: AtomicU64,
    wall_us: AtomicU64,
    cpu_us: AtomicU64,
    self_us: AtomicU64,
    hist: &'static HistogramMetric,
}

struct NodeInfo {
    name: &'static str,
    worker: &'static str,
    /// Interned id of the enclosing span node, if any.
    parent: Option<u32>,
    agg: Arc<NodeAgg>,
}

#[derive(Default)]
struct Inner {
    nodes: Vec<NodeInfo>,
    /// (parent id + 1, or 0 for roots; worker; name) → node id.
    index: HashMap<(u32, &'static str, &'static str), u32>,
}

/// The process-global span collector: interns (worker, call-path)
/// nodes and owns their aggregates.
pub struct SpanCollector {
    inner: Mutex<Inner>,
    /// Bumped by [`reset`]; thread caches self-invalidate on mismatch.
    epoch: AtomicU64,
}

fn collector() -> &'static SpanCollector {
    static GLOBAL: OnceLock<SpanCollector> = OnceLock::new();
    GLOBAL.get_or_init(|| SpanCollector {
        inner: Mutex::new(Inner::default()),
        epoch: AtomicU64::new(0),
    })
}

impl SpanCollector {
    /// Interns (parent, worker, name), creating the node (and its
    /// `htd_span_seconds` histogram series) on first sight. Called only
    /// on a thread-cache miss — once per distinct path per thread.
    fn intern(
        &self,
        parent_key: u32,
        worker: &'static str,
        name: &'static str,
    ) -> (u32, Arc<NodeAgg>) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(&id) = inner.index.get(&(parent_key, worker, name)) {
            return (id, Arc::clone(&inner.nodes[id as usize].agg));
        }
        let hist = registry().histogram(
            &format!("htd_span_seconds{{span=\"{name}\"}}"),
            SPAN_SECONDS_BUCKETS,
        );
        let id = inner.nodes.len() as u32;
        let agg = Arc::new(NodeAgg {
            count: AtomicU64::new(0),
            wall_us: AtomicU64::new(0),
            cpu_us: AtomicU64::new(0),
            self_us: AtomicU64::new(0),
            hist,
        });
        inner.nodes.push(NodeInfo {
            name,
            worker,
            parent: parent_key.checked_sub(1),
            agg: Arc::clone(&agg),
        });
        inner.index.insert((parent_key, worker, name), id);
        (id, agg)
    }
}

/// One aggregated span node in a [`snapshot`].
#[derive(Debug, Clone)]
pub struct SpanStat {
    pub name: &'static str,
    /// Worker attribution (`""` = the unattributed main thread).
    pub worker: &'static str,
    /// Index of the parent node within the same snapshot, if any.
    pub parent: Option<usize>,
    pub count: u64,
    pub wall_us: u64,
    pub cpu_us: u64,
    /// Wall time not covered by enclosed child spans.
    pub self_us: u64,
}

/// A consistent copy of every span node seen so far (count > 0 only).
/// Indices are stable across snapshots until [`reset`].
pub fn snapshot() -> Vec<SpanStat> {
    let inner = collector().inner.lock().unwrap_or_else(|p| p.into_inner());
    let n = inner.nodes.len();
    inner
        .nodes
        .iter()
        .map(|node| SpanStat {
            name: node.name,
            worker: node.worker,
            parent: node.parent.map(|p| p as usize).filter(|&p| p < n),
            count: node.agg.count.load(Ordering::Relaxed),
            wall_us: node.agg.wall_us.load(Ordering::Relaxed),
            cpu_us: node.agg.cpu_us.load(Ordering::Relaxed),
            self_us: node.agg.self_us.load(Ordering::Relaxed),
        })
        .collect()
}

/// Drops all aggregates and interned paths. Call between runs, with no
/// spans in flight (in-flight guards finish into orphaned aggregates —
/// safe, but their time is lost).
pub fn reset() {
    let mut inner = collector().inner.lock().unwrap_or_else(|p| p.into_inner());
    inner.nodes.clear();
    inner.index.clear();
    collector().epoch.fetch_add(1, Ordering::Relaxed);
}

/// Renders the aggregate as folded stacks — one
/// `worker;root;child;leaf self_us` line per node with calls, the
/// format `flamegraph.pl` / inferno consume directly. Sorted for
/// deterministic output.
pub fn folded() -> String {
    let stats = snapshot();
    let mut lines: Vec<String> = stats
        .iter()
        .filter(|s| s.count > 0)
        .map(|s| {
            let mut path = vec![s.name];
            let mut cur = s.parent;
            while let Some(p) = cur {
                path.push(stats[p].name);
                cur = stats[p].parent;
            }
            path.reverse();
            let worker = if s.worker.is_empty() {
                "main"
            } else {
                s.worker
            };
            format!("{};{} {}", worker, path.join(";"), s.self_us)
        })
        .collect();
    lines.sort();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

/// Thread CPU time in microseconds (Linux; 0 elsewhere). `std` already
/// links libc, so declaring `clock_gettime` adds no dependency.
#[cfg(target_os = "linux")]
fn thread_cpu_us() -> u64 {
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }
    extern "C" {
        fn clock_gettime(clk_id: i32, tp: *mut Timespec) -> i32;
    }
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
    let mut ts = Timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    if unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) } == 0 {
        ts.tv_sec as u64 * 1_000_000 + ts.tv_nsec as u64 / 1000
    } else {
        0
    }
}

#[cfg(not(target_os = "linux"))]
fn thread_cpu_us() -> u64 {
    0
}

struct Frame {
    node: u32,
    agg: Arc<NodeAgg>,
    name: &'static str,
    start: Instant,
    cpu_start: u64,
    /// Wall microseconds accumulated by direct children.
    child_us: u64,
}

#[derive(Default)]
struct ThreadSpans {
    worker: &'static str,
    stack: Vec<Frame>,
    /// (parent key, name address) → interned node. Name address is a
    /// fine key: distinct literals at worst duplicate an entry that
    /// interns to the same node.
    cache: HashMap<(u32, usize), (u32, Arc<NodeAgg>)>,
    epoch: u64,
}

thread_local! {
    static THREAD: RefCell<ThreadSpans> = RefCell::new(ThreadSpans::default());
}

/// Attributes all subsequent spans on this thread to `worker` (an
/// engine or service-worker label). Call at thread start, before any
/// span opens.
pub fn set_worker(worker: &'static str) {
    THREAD.with(|t| {
        let mut t = t.borrow_mut();
        t.worker = worker;
        t.cache.clear();
    });
}

/// An open span; closing (dropping) it records the elapsed time.
/// `!Send` by construction: a span lives and dies on one thread, which
/// is what makes the thread-local stack a faithful call stack.
pub struct SpanGuard {
    active: bool,
    name: &'static str,
    tracer: Option<Arc<Tracer>>,
    _single_thread: PhantomData<*const ()>,
}

impl SpanGuard {
    /// Opens a span. Inert (one atomic load) unless spans are enabled
    /// globally or `tracer` is enabled; pass a tracer only on coarse,
    /// phase-level spans — it routes `span_enter`/`span_exit` events
    /// into the JSONL stream in addition to the aggregate.
    pub fn enter(name: &'static str, tracer: Option<&Arc<Tracer>>) -> SpanGuard {
        let traced = tracer.is_some_and(|t| t.enabled());
        if !spans_enabled() && !traced {
            return SpanGuard {
                active: false,
                name,
                tracer: None,
                _single_thread: PhantomData,
            };
        }
        let depth = THREAD.with(|t| {
            let mut t = t.borrow_mut();
            let epoch = collector().epoch.load(Ordering::Relaxed);
            if t.epoch != epoch {
                t.cache.clear();
                t.epoch = epoch;
            }
            let parent_key = t.stack.last().map_or(0, |f| f.node + 1);
            let cache_key = (parent_key, name.as_ptr() as usize);
            let (node, agg) = match t.cache.get(&cache_key) {
                Some((id, agg)) => (*id, Arc::clone(agg)),
                None => {
                    let resolved = collector().intern(parent_key, t.worker, name);
                    t.cache
                        .insert(cache_key, (resolved.0, Arc::clone(&resolved.1)));
                    resolved
                }
            };
            let depth = t.stack.len() as u32;
            t.stack.push(Frame {
                node,
                agg,
                name,
                start: Instant::now(),
                cpu_start: thread_cpu_us(),
                child_us: 0,
            });
            depth
        });
        if traced {
            let tracer = tracer.unwrap();
            tracer.emit_with(|| Event::SpanEnter {
                span: name,
                worker: current_worker(),
                depth,
            });
            return SpanGuard {
                active: true,
                name,
                tracer: Some(Arc::clone(tracer)),
                _single_thread: PhantomData,
            };
        }
        SpanGuard {
            active: true,
            name,
            tracer: None,
            _single_thread: PhantomData,
        }
    }
}

/// The worker label spans on this thread are attributed to.
pub fn current_worker() -> &'static str {
    THREAD.with(|t| t.borrow().worker)
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let (depth, wall_us) = THREAD.with(|t| {
            let mut t = t.borrow_mut();
            // Guards are !Send and lexically scoped, so the top frame is
            // ours; a mismatch means an enter/exit imbalance upstream and
            // we prefer recording under the wrong name to unwinding.
            let frame = match t.stack.pop() {
                Some(f) => f,
                None => return (0, 0),
            };
            debug_assert_eq!(frame.name, self.name, "span stack imbalance");
            let wall_us = frame.start.elapsed().as_micros() as u64;
            let cpu_us = thread_cpu_us().saturating_sub(frame.cpu_start);
            let self_us = wall_us.saturating_sub(frame.child_us);
            frame.agg.count.fetch_add(1, Ordering::Relaxed);
            frame.agg.wall_us.fetch_add(wall_us, Ordering::Relaxed);
            frame.agg.cpu_us.fetch_add(cpu_us, Ordering::Relaxed);
            frame.agg.self_us.fetch_add(self_us, Ordering::Relaxed);
            frame.agg.hist.observe(wall_us as f64 / 1e6);
            if let Some(parent) = t.stack.last_mut() {
                parent.child_us += wall_us;
            }
            (t.stack.len() as u32, wall_us)
        });
        if let Some(tracer) = &self.tracer {
            tracer.emit_with(|| Event::SpanExit {
                span: self.name,
                worker: current_worker(),
                depth,
                elapsed_us: wall_us,
            });
        }
    }
}

/// Opens a [`SpanGuard`] named by a `&'static str`. One argument
/// aggregates only; a second (an `&Arc<Tracer>`) additionally emits
/// `span_enter`/`span_exit` events when that tracer is enabled.
///
/// ```
/// let _span = htd_trace::span!("astar.expand");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name, None)
    };
    ($name:expr, $tracer:expr) => {
        $crate::span::SpanGuard::enter($name, Some($tracer))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector and the enable flag are process-global; the span
    // integration tests live in tests/spans.rs where each test uses
    // unique span names. Here: only the inert path, which is safe to
    // probe regardless of global state.
    #[test]
    fn disabled_guard_is_inert() {
        let before = snapshot().len();
        {
            let _g = SpanGuard::enter("unit.inert", None);
        }
        let stats = snapshot();
        assert_eq!(stats.len(), before, "inert guard must not intern nodes");
        assert!(stats.iter().all(|s| s.name != "unit.inert"));
    }

    #[test]
    fn thread_cpu_clock_is_monotonic() {
        let a = thread_cpu_us();
        // burn a little CPU so the clock can only move forward
        let mut x = 0u64;
        for i in 0..100_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(x);
        let b = thread_cpu_us();
        assert!(b >= a, "thread CPU time went backwards: {a} -> {b}");
    }
}
