//! Offline stand-in for the one `crossbeam` API this workspace uses:
//! [`thread::scope`]. Since Rust 1.63 the standard library provides scoped
//! threads, so the shim forwards to `std::thread::scope` while keeping
//! crossbeam's call shape — the scope closure and each spawned closure
//! receive the scope handle, and `scope` returns a `Result` (always `Ok`
//! here; panics propagate out of `std::thread::scope` directly, which is
//! strictly earlier and louder than crossbeam's deferred error).

/// Scoped threads, crossbeam-style.
pub mod thread {
    /// A handle to the spawn scope, passed to every closure. Cheap to copy.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl Clone for Scope<'_, '_> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl Copy for Scope<'_, '_> {}

    /// Owned handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` on panic).
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the scope
        /// handle (crossbeam convention; usually ignored with `|_|`).
        pub fn spawn<F, T>(self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = self;
            ScopedJoinHandle(self.inner.spawn(move || f(handle)))
        }
    }

    /// Runs `f` with a scope in which threads borrowing from the enclosing
    /// environment may be spawned; joins them all before returning.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn spawn_and_join() {
        let counter = AtomicU32::new(0);
        let total: u32 = crate::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let counter = &counter;
                    scope.spawn(move |_| {
                        counter.fetch_add(1, Ordering::SeqCst);
                        i * 10
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 60);
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn nested_spawn_through_handle() {
        let r = crate::thread::scope(|scope| {
            let h = scope.spawn(|inner| inner.spawn(|_| 7).join().unwrap());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(r, 7);
    }
}
