//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses. The container building this repo has no access to crates.io, so
//! the workspace vendors a small, dependency-free implementation with the
//! same names and signatures: [`RngCore`], [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`], [`rngs::SmallRng`] and [`seq::SliceRandom`].
//!
//! The streams are *not* bit-compatible with the real `rand` crate (the
//! generator is xoshiro256++ seeded through SplitMix64); everything in the
//! workspace treats RNG output as an arbitrary deterministic stream keyed
//! by the seed, which this provides.

/// The core trait: a source of random `u32`/`u64` words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array in real `rand`).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed (SplitMix64-expanded).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Sealed-ish helper: types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    #[doc(hidden)]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    #[doc(hidden)]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + uniform_u128(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + uniform_u128(rng, span) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_signed_range!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Unbiased uniform draw from `[0, span)` (`span > 0`) by rejection.
#[inline]
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        let span = span as u64;
        if span.is_power_of_two() {
            return (rng.next_u64() & (span - 1)) as u128;
        }
        // Lemire-style rejection on the top zone
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return (v % span) as u128;
            }
        }
    } else {
        // span > 2^64 only for u128-wide ranges, which we never hit with
        // the integer types above except full-width u64 inclusive ranges
        let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        v % span
    }
}

/// Convenience methods on any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic standard generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];
        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
            }
            // xoshiro must not start from the all-zero state
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// Alias: the "small" generator is the same xoshiro256++ here.
    pub type SmallRng = StdRng;
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random choice on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// A uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = r.gen_range(0..=5);
            assert!(y <= 5);
            let f: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let z: i32 = r.gen_range(-5..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn uniformish() {
        let mut r = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[r.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut r).is_some());
    }

    #[test]
    fn gen_bool_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "p=0.3 gave {hits}/10000");
    }
}
