//! Offline stand-in for the subset of `parking_lot` this workspace uses:
//! [`Mutex`] and [`RwLock`] with panic-free (poison-transparent) guards.
//! Backed by `std::sync`; a poisoned std lock is simply re-entered, which
//! matches `parking_lot`'s no-poisoning semantics closely enough for the
//! incumbent-publishing use here (guards only wrap plain data writes).

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock whose `lock()` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A readers–writer lock whose guards never return `Result`s.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
