//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Provides [`Strategy`] (with `prop_map` / `prop_flat_map`), [`any`],
//! range and tuple strategies, [`collection::vec`], [`ProptestConfig`] and
//! the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//! Each `#[test]` body runs for `cases` deterministic seeded inputs; there
//! is **no shrinking** — a failure reports the case index so it can be
//! replayed (the generators are seeded by case index alone).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f`.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
use rand::RngCore;
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        rng.gen::<f64>()
    }
}

/// Strategy wrapper returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

/// Collection strategies.
pub mod collection {
    use super::Strategy;

    /// Sizes accepted by [`vec`]: a fixed length or a length range.
    pub trait SizeRange {
        #[doc(hidden)]
        fn pick(&self, rng: &mut rand::rngs::StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut rand::rngs::StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut rand::rngs::StdRng) -> usize {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut rand::rngs::StdRng) -> usize {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// A vector of values from `element` with length in `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut rand::rngs::StdRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runs `body` for each of `cfg.cases` deterministic cases. Used by the
/// [`proptest!`] macro expansion; not part of the public proptest API.
pub fn run_cases(cfg: &ProptestConfig, mut body: impl FnMut(&mut StdRng, u32)) {
    for case in 0..cfg.cases {
        // seed by case index only, so any failure replays in isolation
        let mut rng =
            StdRng::seed_from_u64(0xA11CE ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15));
        body(&mut rng, case);
    }
}

/// Everything a test module usually imports.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, ProptestConfig, Strategy};
}

/// Assert inside a property (plain `assert!` here — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over seeded random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                $crate::run_cases(&cfg, |rng, case| {
                    let ($($pat,)+) = ($( $crate::Strategy::generate(&($strat), rng), )+);
                    let run = || -> () { $body };
                    let caught = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                    if let Err(e) = caught {
                        eprintln!("proptest case {case} failed (replay: case index {case})");
                        ::std::panic::resume_unwind(e);
                    }
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        use rand::SeedableRng;
        let _ = &mut rng;
        crate::run_cases(&ProptestConfig::with_cases(32), |rng, _| {
            let v = crate::collection::vec(0u32..5, 2..7usize).generate(rng);
            assert!(v.len() >= 2 && v.len() < 7);
            assert!(v.iter().all(|&x| x < 5));
            let (a, b) = (1u32..=3, any::<bool>()).generate(rng);
            assert!((1..=3).contains(&a));
            let _: bool = b;
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_single_param(x in 0u32..10) {
            prop_assert!(x < 10);
        }

        #[test]
        fn macro_multi_param(a in 0u32..4, b in crate::collection::vec(any::<bool>(), 3)) {
            prop_assert!(a < 4);
            prop_assert_eq!(b.len(), 3);
        }

        #[test]
        fn macro_tuple_pattern((x, y) in (0u32..3, 5u64..8)) {
            prop_assert!(x < 3 && (5..8).contains(&y));
        }
    }

    proptest! {
        #[test]
        fn default_config_works(x in any::<u64>()) {
            let _ = x;
        }
    }
}
