//! Offline stand-in for the subset of `criterion` this workspace uses:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement model: each bench warms up briefly, then runs batches whose
//! iteration count is auto-tuned toward ~20 ms per batch; the reported
//! figure is the median per-iteration time over the batches, with min/max
//! spread. `--bench` / filter arguments are accepted (cargo passes
//! `--bench`); a bare positional argument filters benchmarks by substring.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Drives one benchmark's measurement loop.
pub struct Bencher {
    /// Nanoseconds per iteration for each measured batch.
    samples: Vec<f64>,
}

impl Bencher {
    /// Measures `f` repeatedly. The closure's return value is black-boxed.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // warm-up: run until 5 ms has passed, counting iterations to size
        // the first batch
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < Duration::from_millis(5) {
            black_box(f());
            warm_iters += 1;
        }
        let warm_ns = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        let mut batch = ((20_000_000.0 / warm_ns.max(1.0)) as u64).clamp(1, 1_000_000);

        let deadline = Instant::now() + Duration::from_millis(200);
        self.samples.clear();
        while Instant::now() < deadline || self.samples.len() < 3 {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64 / batch as f64;
            self.samples.push(ns);
            // retune toward ~20 ms batches
            batch = ((20_000_000.0 / ns.max(1.0)) as u64).clamp(1, 1_000_000);
            if self.samples.len() >= 64 {
                break;
            }
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// The benchmark harness handle.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench`; the first other positional argument
        // is a name filter (substring match), matching criterion's CLI
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            samples: Vec::new(),
        };
        f(&mut b);
        let mut s = b.samples;
        s.sort_by(|a, b| a.total_cmp(b));
        let median = s[s.len() / 2];
        let (lo, hi) = (s[0], s[s.len() - 1]);
        println!(
            "{name:<44} time: [{} {} {}]",
            fmt_ns(lo),
            fmt_ns(median),
            fmt_ns(hi)
        );
        self
    }

    /// Starts a named group; names are reported as `group/name`.
    pub fn benchmark_group(&mut self, group: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            group: group.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.group, name);
        self.c.bench_function(&full, f);
        self
    }

    /// Finishes the group (no-op; for API parity).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        b.iter(|| black_box(3u64.wrapping_mul(7)));
        assert!(b.samples.len() >= 3);
        assert!(b.samples.iter().all(|&ns| ns > 0.0));
    }

    #[test]
    fn formatting_scales() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2_000_000_000.0).ends_with('s'));
    }
}
